//! Telemetry configuration and end-of-run export for the engine.
//!
//! Collection itself is per-cell: each grid cell records into a private
//! [`MemoryRecorder`](voltctl_telemetry::MemoryRecorder) that rides back
//! on its `CellResult`, and the engine merges them in grid order (so the
//! aggregate is deterministic regardless of worker count). This module
//! owns what happens *around* that: which export mode is active
//! (`--telemetry` flag or the `VOLTCTL_TELEMETRY` environment variable),
//! where files go (`--telemetry-out`, default `results/telemetry/`), and
//! the export itself.

use std::path::{Path, PathBuf};
use std::sync::OnceLock;
use voltctl_telemetry::{export, MemoryRecorder};

/// Export format selected by `--telemetry` / `VOLTCTL_TELEMETRY`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Telemetry disabled (the default).
    Off,
    /// Human-readable digest on stderr + `<run>.summary.txt` file.
    Summary,
    /// JSONL snapshot file + stderr digest.
    Jsonl,
    /// CSV snapshot file + stderr digest.
    Csv,
}

/// Parses a telemetry mode value. Unknown values warn and disable
/// telemetry rather than abort an expensive run.
pub fn parse_mode(raw: &str) -> Mode {
    match raw.trim().to_ascii_lowercase().as_str() {
        "" | "off" | "0" | "none" => Mode::Off,
        "summary" => Mode::Summary,
        "jsonl" | "json" => Mode::Jsonl,
        "csv" => Mode::Csv,
        other => {
            voltctl_telemetry::warn(
                "telemetry.mode",
                &format!(
                    "unknown telemetry mode {other:?} \
                     (expected off|summary|jsonl|csv); telemetry disabled"
                ),
            );
            Mode::Off
        }
    }
}

/// The mode from `VOLTCTL_TELEMETRY`, read once per process.
pub fn env_mode() -> Mode {
    static MODE: OnceLock<Mode> = OnceLock::new();
    *MODE.get_or_init(|| {
        std::env::var("VOLTCTL_TELEMETRY")
            .map(|raw| parse_mode(&raw))
            .unwrap_or(Mode::Off)
    })
}

/// The default export directory.
pub fn default_out_dir() -> PathBuf {
    PathBuf::from(export::DEFAULT_OUT_DIR)
}

/// Extracts `--telemetry-out <dir>` / `--telemetry-out=<dir>` from an
/// argument list; falls back to the default directory. (Used by the
/// deprecated per-figure shim binaries; the `voltctl-exp` CLI parses
/// the flag itself.)
pub fn out_dir_from_args<I, S>(args: I) -> PathBuf
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        let arg = arg.as_ref();
        if let Some(dir) = arg.strip_prefix("--telemetry-out=") {
            return PathBuf::from(dir);
        }
        if arg == "--telemetry-out" {
            if let Some(dir) = args.next() {
                return PathBuf::from(dir.as_ref());
            }
        }
    }
    default_out_dir()
}

/// Exports a run's merged telemetry according to `mode`: a stderr
/// digest always, plus one snapshot file under `out_dir` per the mode
/// (summary text, JSONL, or CSV). Returns the paths written, so the
/// caller can fold them into the run's provenance manifest.
pub fn export_run(run: &str, rec: &MemoryRecorder, mode: Mode, out_dir: &Path) -> Vec<PathBuf> {
    if mode == Mode::Off {
        return Vec::new();
    }
    let snap = rec.snapshot();
    eprint!("{}", export::to_summary(run, &snap));
    let written = match mode {
        Mode::Off => unreachable!("handled above"),
        Mode::Summary => export::write_summary(out_dir, run, &snap),
        Mode::Jsonl => export::write_snapshot(out_dir, run, &snap, false),
        Mode::Csv => export::write_snapshot(out_dir, run, &snap, true),
    };
    match written {
        Ok(path) => {
            eprintln!("telemetry snapshot: {}", path.display());
            vec![path]
        }
        Err(e) => {
            voltctl_telemetry::warn("telemetry.export", &format!("write failed: {e}"));
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parses() {
        assert_eq!(parse_mode(""), Mode::Off);
        assert_eq!(parse_mode("off"), Mode::Off);
        assert_eq!(parse_mode("SUMMARY"), Mode::Summary);
        assert_eq!(parse_mode(" jsonl "), Mode::Jsonl);
        assert_eq!(parse_mode("json"), Mode::Jsonl);
        assert_eq!(parse_mode("csv"), Mode::Csv);
        assert_eq!(parse_mode("bogus"), Mode::Off, "unknown values disable");
    }

    #[test]
    fn out_dir_parses_args() {
        let none: [&str; 0] = [];
        assert_eq!(out_dir_from_args(none), default_out_dir());
        assert_eq!(
            out_dir_from_args(["--telemetry-out", "/tmp/t"]),
            PathBuf::from("/tmp/t")
        );
        assert_eq!(
            out_dir_from_args(["x", "--telemetry-out=/tmp/u", "y"]),
            PathBuf::from("/tmp/u")
        );
        assert_eq!(
            out_dir_from_args(["--telemetry-out"]),
            default_out_dir(),
            "dangling flag falls back"
        );
    }
}
