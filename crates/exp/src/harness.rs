//! The reference machine and the shared evaluation helpers every
//! scenario builds on (hoisted from the old `voltctl-bench` library so
//! there is exactly one copy):
//!
//! * the standard power model, machine configuration, and the calibrated
//!   supply network at any percent of target impedance (memoized —
//!   calibration is a bisection over steady-state simulations, and
//!   parallel grid cells would otherwise redo it per cell);
//! * workload construction (the tuned stressmark is memoized for the
//!   same reason; SPEC kernels build per cell via `spec::by_index`);
//! * threshold solving per actuation scope;
//! * controlled-vs-baseline evaluation, threading an optional
//!   [`MemoryRecorder`] instead of mutating process-global state — the
//!   engine's worker threads each own their cell's recorder.

use std::sync::{Mutex, OnceLock};
use voltctl_core::analysis::{build_eval_loops, evaluate_program_recorded, EvalSetup, Evaluation};
use voltctl_core::prelude::*;
use voltctl_cpu::CpuConfig;
use voltctl_pdn::PdnModel;
use voltctl_power::{PowerModel, PowerParams};
use voltctl_telemetry::MemoryRecorder;
use voltctl_workloads::{spec, stressmark, trace, Workload};

use crate::engine::{BatchLane, Ctx};

/// The standard power model (paper's 3 GHz / 1.0 V budget).
pub fn power_model() -> PowerModel {
    PowerModel::new(PowerParams::paper_3ghz())
}

/// The standard machine configuration (Table 1).
pub fn cpu_config() -> CpuConfig {
    CpuConfig::table1()
}

/// The machine's current swing (amps) under the standard power model.
pub fn delta_i() -> f64 {
    let p = power_model();
    p.achievable_peak_current() - p.min_current()
}

/// The supply network at `percent` of target impedance (1.0 = 100%).
///
/// Calibrations are memoized per process: the first request at a given
/// percent runs the bisection, subsequent requests (other grid cells,
/// other scenarios in a `run --all`) clone the cached model.
///
/// # Panics
///
/// Panics on calibration failure (cannot happen for the standard
/// parameters).
pub fn pdn_at(percent: f64) -> PdnModel {
    static CACHE: OnceLock<Mutex<Vec<(u64, PdnModel)>>> = OnceLock::new();
    let key = percent.to_bits();
    // Calibrate while holding the lock: concurrent first requests block
    // behind one bisection instead of redundantly re-solving — on a
    // saturated machine the redundant work costs more than the wait.
    let mut cache = CACHE
        .get_or_init(|| Mutex::new(Vec::new()))
        .lock()
        .expect("pdn cache poisoned");
    if let Some((_, pdn)) = cache.iter().find(|(k, _)| *k == key) {
        return pdn.clone();
    }
    // Only the cache-miss bisection is worth a profiler span: hits are
    // a vector scan.
    let span = crate::profile::global().map(crate::profile::Span::start);
    let power = power_model();
    let pdn = calibrated_pdn(
        &PdnModel::paper_default().expect("paper parameters are valid"),
        &power,
        percent,
    )
    .expect("calibration succeeds for the standard machine");
    if let (Some(span), Some(p)) = (span, crate::profile::global()) {
        span.stop(p, &["harness", "calibrate", &format!("p{percent}")]);
    }
    cache.push((key, pdn.clone()));
    pdn
}

/// The stressmark tuned to the standard package resonance (60 cycles),
/// memoized per process (tuning measures candidate loops on the
/// cycle-level simulator).
pub fn tuned_stressmark() -> Workload {
    static TUNED: OnceLock<Workload> = OnceLock::new();
    TUNED
        .get_or_init(|| {
            let span = crate::profile::global().map(crate::profile::Span::start);
            let config = cpu_config();
            let power = power_model();
            let period = pdn_at(2.0).resonant_period_cycles();
            let (_, wl) = stressmark::tune(period, &config, &power);
            if let (Some(span), Some(p)) = (span, crate::profile::global()) {
                span.stop(p, &["harness", "tune", "stressmark"]);
            }
            wl
        })
        .clone()
}

/// All 26 synthetic SPEC2000 kernels, in suite order.
pub fn spec_suite() -> Vec<Workload> {
    spec::all()
}

/// The paper's high-variation eight-benchmark subset.
pub fn variable_eight() -> Vec<Workload> {
    spec::variable_eight()
}

/// Solves thresholds for a scope/delay at a given impedance percent.
///
/// Solutions are memoized per process in a bounded
/// [`ShardedLru`](voltctl_pdn::ShardedLru), keyed by `(scope, delay,
/// percent)`: a controller sweep evaluates every workload at the same
/// handful of configurations, and without the cache each grid cell would
/// re-run the worst-case adversary search (hundreds of replay
/// simulations per solve). Unstable outcomes are cached too — re-proving
/// infeasibility is as expensive as solving. Bounding the memo matters
/// for the serve daemon: a long-running process fed arbitrary client
/// configurations must not grow the table without limit, and sharding
/// keeps concurrent workers solving *different* configurations from
/// convoying on one lock.
///
/// # Errors
///
/// Propagates solver errors ([`ControlError::Unstable`] in particular).
type SolveKey = (ActuationScope, u32, u64);
type SolveCache = voltctl_pdn::ShardedLru<SolveKey, Result<Thresholds, ControlError>>;

/// The process-wide threshold-solution memo (4 shards × 32 entries).
fn solve_cache() -> &'static SolveCache {
    static CACHE: OnceLock<SolveCache> = OnceLock::new();
    CACHE.get_or_init(|| SolveCache::new(4, 32))
}

pub fn solve_for(
    scope: ActuationScope,
    delay: u32,
    percent: f64,
) -> Result<Thresholds, ControlError> {
    let key = (scope, delay, percent.to_bits());
    // Solve while holding the shard lock: concurrent first requests for
    // the same configuration block behind one adversary search instead
    // of redundantly re-solving (same policy as the calibration cache);
    // requests for configurations on other shards proceed unblocked.
    solve_cache().get_or_insert_with(&key, || {
        let span = crate::profile::global().map(crate::profile::Span::start);
        let power = power_model();
        let pdn = pdn_at(percent);
        let setup = SolveSetup::new(
            &pdn,
            power.min_current(),
            power.achievable_peak_current(),
            scope.leverage(&power),
            delay,
        );
        let solved = solve_thresholds(&setup);
        if let (Some(span), Some(p)) = (span, crate::profile::global()) {
            span.stop(
                p,
                &[
                    "harness",
                    "solve",
                    &format!("{scope:?}.d{delay}.p{percent}"),
                ],
            );
        }
        solved
    })
}

/// Upper bound on memoized threshold solutions (diagnostics / tests).
pub fn solve_cache_capacity() -> usize {
    solve_cache().capacity()
}

/// Live hit/miss/eviction/residency stats for the threshold-solution
/// memo (the serve daemon surfaces these at `/metrics` alongside the
/// kernel cache's).
pub fn solve_cache_stats() -> voltctl_pdn::CacheStats {
    solve_cache().stats()
}

/// Evaluates one workload under control vs. baseline.
///
/// With `telem: Some(rec)`, the controlled run's counters, timers, and
/// histograms are merged into `rec` (the caller's cell recorder);
/// with `None` the loop runs on the zero-cost
/// [`voltctl_telemetry::NullRecorder`].
///
/// # Errors
///
/// Propagates construction/solver errors.
#[allow(clippy::too_many_arguments)]
pub fn evaluate(
    workload: &Workload,
    scope: ActuationScope,
    thresholds: Thresholds,
    sensor: SensorConfig,
    percent: f64,
    warmup: u64,
    cycles: u64,
    telem: Option<&mut MemoryRecorder>,
) -> Result<Evaluation, ControlError> {
    let setup = EvalSetup {
        cpu_config: cpu_config(),
        power: power_model(),
        pdn: pdn_at(percent),
        thresholds,
        sensor,
        scope,
    };
    match telem {
        Some(out) => {
            let rec = MemoryRecorder::new().echo_warnings(true);
            let (evaluation, rec) =
                evaluate_program_recorded(&workload.program, &setup, warmup, cycles, rec)?;
            out.merge(&rec);
            Ok(evaluation)
        }
        None => {
            let (evaluation, _) = evaluate_program_recorded(
                &workload.program,
                &setup,
                warmup,
                cycles,
                voltctl_telemetry::NullRecorder,
            )?;
            Ok(evaluation)
        }
    }
}

/// Records a workload's uncontrolled current trace at the standard
/// configuration.
pub fn current_trace(workload: &Workload, cycles: usize) -> Vec<f64> {
    trace::record_current(workload, &cpu_config(), &power_model(), cycles)
}

/// One point of a controller sweep (used by Figures 14–18).
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Workload (or aggregate) label.
    pub label: String,
    /// Actuation scope.
    pub scope: ActuationScope,
    /// Sensor delay in cycles.
    pub delay: u32,
    /// Sensor error in millivolts.
    pub error_mv: f64,
    /// Fractional IPC loss vs. the uncontrolled baseline.
    pub perf_loss: f64,
    /// Fractional per-instruction energy increase vs. baseline.
    pub energy_increase: f64,
    /// Emergency cycles remaining under control.
    pub controlled_emergencies: u64,
    /// Emergency cycles in the baseline.
    pub baseline_emergencies: u64,
    /// Whether the threshold solver declared this point unstable.
    pub unstable: bool,
}

/// The solved configuration for one sweep point: deployed thresholds
/// plus the sensor model. `None` means the threshold solver declared the
/// point unstable (no safe thresholds exist for the scope's leverage).
///
/// Per the paper's methodology, the deployed thresholds come from the
/// Table 3 analysis (ideal actuation); the scope-specific solve is used
/// to *flag* configurations whose actuation leverage cannot guarantee
/// safety (FU-only at delay >= 3).
pub fn sweep_config(
    scope: ActuationScope,
    delay: u32,
    error_mv: f64,
    percent: f64,
) -> Option<(Thresholds, SensorConfig)> {
    let thresholds = solve_for(scope, delay, percent)
        .and_then(|_| solve_for(ActuationScope::Ideal, delay, percent))
        .ok()?;
    let sensor = SensorConfig {
        delay_cycles: delay,
        noise_mv: error_mv,
        seed: 0xd1d7,
    };
    Some((thresholds, sensor))
}

/// A row constructor bound to one sweep point's coordinates.
fn sweep_row_maker(
    scope: ActuationScope,
    delay: u32,
    error_mv: f64,
) -> impl Fn(&str, f64, f64, u64, u64, bool) -> SweepRow {
    move |label: &str, perf: f64, energy: f64, ce: u64, be: u64, unstable: bool| SweepRow {
        label: label.to_string(),
        scope,
        delay,
        error_mv,
        perf_loss: perf,
        energy_increase: energy,
        controlled_emergencies: ce,
        baseline_emergencies: be,
        unstable,
    }
}

/// The rows for an unstable sweep point: NaN metrics, flagged, one per
/// workload plus the `"SPEC mean"` aggregate and the stressmark.
fn sweep_rows_unstable(
    workloads: &[Workload],
    stress: &Workload,
    scope: ActuationScope,
    delay: u32,
    error_mv: f64,
) -> Vec<SweepRow> {
    let make_row = sweep_row_maker(scope, delay, error_mv);
    let mut rows: Vec<SweepRow> = workloads
        .iter()
        .map(|w| make_row(&w.name, f64::NAN, f64::NAN, 0, 0, true))
        .collect();
    rows.push(make_row("SPEC mean", f64::NAN, f64::NAN, 0, 0, true));
    rows.push(make_row(&stress.name, f64::NAN, f64::NAN, 0, 0, true));
    rows
}

/// Assembles sweep rows from per-workload evaluations (`evals` holds one
/// [`Evaluation`] per workload, then the stressmark's, in order). Shared
/// by the scalar and lane-batched paths so the aggregate arithmetic —
/// and therefore every reported digit — is identical on both.
fn sweep_rows(
    workloads: &[Workload],
    stress: &Workload,
    scope: ActuationScope,
    delay: u32,
    error_mv: f64,
    evals: &[Evaluation],
) -> Vec<SweepRow> {
    assert_eq!(
        evals.len(),
        workloads.len() + 1,
        "one evaluation per workload plus the stressmark"
    );
    let make_row = sweep_row_maker(scope, delay, error_mv);
    let mut rows = Vec::new();
    let mut sum_perf = 0.0;
    let mut sum_energy = 0.0;
    for (w, e) in workloads.iter().zip(evals) {
        sum_perf += e.perf_loss();
        sum_energy += e.energy_increase();
        rows.push(make_row(
            &w.name,
            e.perf_loss(),
            e.energy_increase(),
            e.controlled.emergencies.emergency_cycles,
            e.baseline.emergencies.emergency_cycles,
            false,
        ));
    }
    let n = workloads.len().max(1) as f64;
    rows.push(make_row(
        "SPEC mean",
        sum_perf / n,
        sum_energy / n,
        0,
        0,
        false,
    ));
    let e = &evals[workloads.len()];
    rows.push(make_row(
        &stress.name,
        e.perf_loss(),
        e.energy_increase(),
        e.controlled.emergencies.emergency_cycles,
        e.baseline.emergencies.emergency_cycles,
        false,
    ));
    rows
}

/// Evaluates `workloads` (plus the stressmark) at one controller
/// configuration, returning one row per workload plus a `"SPEC mean"`
/// aggregate over `workloads`.
///
/// Unstable points (no safe thresholds) produce rows flagged `unstable`
/// with NaN metrics.
#[allow(clippy::too_many_arguments)]
pub fn sweep_point(
    ctx: &Ctx,
    workloads: &[Workload],
    stress: &Workload,
    scope: ActuationScope,
    delay: u32,
    error_mv: f64,
    percent: f64,
    cycles: u64,
    mut telem: Option<&mut MemoryRecorder>,
) -> Vec<SweepRow> {
    let Some((thresholds, sensor)) = sweep_config(scope, delay, error_mv, percent) else {
        return sweep_rows_unstable(workloads, stress, scope, delay, error_mv);
    };

    let mut evals = Vec::new();
    for w in workloads {
        evals.push(
            evaluate(
                w,
                scope,
                thresholds,
                sensor,
                percent,
                ctx.warmup(w.warmup_cycles),
                cycles,
                telem.as_deref_mut(),
            )
            .expect("evaluation constructs for solved thresholds"),
        );
    }
    evals.push(
        evaluate(
            stress,
            scope,
            thresholds,
            sensor,
            percent,
            ctx.warmup(stress.warmup_cycles),
            cycles,
            telem,
        )
        .expect("stressmark evaluation constructs"),
    );
    sweep_rows(workloads, stress, scope, delay, error_mv, &evals)
}

/// Builds the lane list for one sweep point — a baseline/controlled loop
/// pair per workload (workloads in order, stressmark last), each with the
/// budget its scalar run would get. Returns `None` for unstable points,
/// which fall back to the scalar path (no simulation happens there — the
/// rows are immediate).
///
/// Adjacent lanes of the same workload start with byte-identical CPU
/// state, so the lane executor shares one CPU step across them until the
/// controlled lane's first intervention.
#[allow(clippy::too_many_arguments)]
pub fn sweep_batch(
    ctx: &Ctx,
    workloads: &[Workload],
    stress: &Workload,
    scope: ActuationScope,
    delay: u32,
    error_mv: f64,
    percent: f64,
    cycles: u64,
) -> Option<Vec<BatchLane>> {
    let (thresholds, sensor) = sweep_config(scope, delay, error_mv, percent)?;
    let setup = EvalSetup {
        cpu_config: cpu_config(),
        power: power_model(),
        pdn: pdn_at(percent),
        thresholds,
        sensor,
        scope,
    };
    let mut lanes = Vec::new();
    for w in workloads.iter().chain(std::iter::once(stress)) {
        let budget = ctx.warmup(w.warmup_cycles) + cycles;
        let (baseline, controlled) = build_eval_loops(&w.program, &setup)
            .expect("evaluation constructs for solved thresholds");
        lanes.push(BatchLane {
            sim: baseline,
            budget,
        });
        lanes.push(BatchLane {
            sim: controlled,
            budget,
        });
    }
    Some(lanes)
}

/// Pairs the finished lane outcomes from [`sweep_batch`] back into
/// evaluations and assembles the same rows [`sweep_point`] produces.
pub fn sweep_finish(
    workloads: &[Workload],
    stress: &Workload,
    scope: ActuationScope,
    delay: u32,
    error_mv: f64,
    outcomes: &[voltctl_core::LaneOutcome],
) -> Vec<SweepRow> {
    assert_eq!(
        outcomes.len(),
        2 * (workloads.len() + 1),
        "a baseline/controlled outcome pair per workload plus the stressmark"
    );
    let evals: Vec<Evaluation> = outcomes
        .chunks(2)
        .map(|pair| Evaluation {
            baseline: pair[0].report.clone(),
            controlled: pair[1].report.clone(),
        })
        .collect();
    sweep_rows(workloads, stress, scope, delay, error_mv, &evals)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_constructs() {
        let pdn = pdn_at(2.0);
        assert!(pdn.peak_impedance() > 0.0);
        assert!(delta_i() > 30.0);
        assert_eq!(spec_suite().len(), 26);
    }

    #[test]
    fn pdn_cache_returns_identical_models() {
        let a = pdn_at(3.0);
        let b = pdn_at(3.0);
        assert_eq!(a.peak_impedance(), b.peak_impedance());
        assert_eq!(a.resonant_period_cycles(), b.resonant_period_cycles());
    }

    #[test]
    fn solve_cache_replays_solutions_and_failures() {
        let a = solve_for(ActuationScope::Ideal, 2, 2.0).expect("ideal at delay 2 is solvable");
        let b = solve_for(ActuationScope::Ideal, 2, 2.0).unwrap();
        assert_eq!(a, b, "cached solve must replay the original solution");
        // FU-only at long delay is unstable; the failure is cached too.
        let e1 = solve_for(ActuationScope::Fu, 6, 3.0);
        let e2 = solve_for(ActuationScope::Fu, 6, 3.0);
        assert_eq!(e1, e2);
    }

    #[test]
    fn stressmark_is_memoized_and_stable() {
        let a = tuned_stressmark();
        let b = tuned_stressmark();
        assert_eq!(a.name, b.name);
        assert_eq!(a.program.len(), b.program.len());
    }
}
