//! The experiment engine: a [`Scenario`] declares a parameter grid and a
//! per-cell run function; [`run_scenario`] fans the grid out across
//! worker threads and reassembles a deterministic report.
//!
//! # Determinism contract
//!
//! Cells are independent and each cell's computation is fully seeded, so
//! the engine guarantees that **the report and the merged telemetry
//! structure are identical for any `--jobs` value**:
//!
//! * cells are identified by their grid index, and results are stored by
//!   index — workers race only for *which* cell to run next, never for
//!   where a result lands;
//! * per-cell [`MemoryRecorder`]s are merged in grid order after the
//!   join, not in completion order (wall-clock timer *values* still vary
//!   run to run — they are wall clock — but every counter, value
//!   statistic, histogram bin, and the event sequence are reproducible);
//! * rendering happens once, on the caller's thread, over the
//!   index-ordered results.
//!
//! This is verified by `tests/determinism.rs` (byte-identical reports at
//! `--jobs 1` vs `--jobs 8`).

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use voltctl_core::{ControlLoop, LaneLoop, LaneOutcome};
use voltctl_telemetry::{MemoryRecorder, Recorder as _};
use voltctl_trace::{Cause, FlightRecorder, MergedTrace};

use crate::profile::{NullProfiler, Profiler, Span};
use crate::scale::scaled_budget;

/// Trace configuration for a run: when present in [`Ctx`], scenarios
/// that support tracing attach a [`FlightRecorder`] with this window to
/// their controlled loops and hand it back on the [`CellResult`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSpec {
    /// Flight-recorder window: cycles kept before and after each
    /// emergency crossing.
    pub window: usize,
}

impl Default for TraceSpec {
    fn default() -> TraceSpec {
        TraceSpec {
            window: voltctl_trace::DEFAULT_WINDOW,
        }
    }
}

/// Cycle budget used for every cell in `--smoke` mode: just enough for
/// the plumbing to be exercised end to end.
pub const SMOKE_CYCLES: u64 = 1_500;
/// Warm-up cap in `--smoke` mode (full warm-ups run to 40k cycles and
/// would dominate a smoke pass).
pub const SMOKE_WARMUP: u64 = 2_000;

/// Per-run context handed to every cell: budget scaling, smoke mode,
/// and whether telemetry should be collected.
#[derive(Debug, Clone)]
pub struct Ctx {
    /// Cycle-budget scale factor (1.0 = the documented defaults).
    pub scale: f64,
    /// Smoke mode: tiny budgets, capped warm-ups, narrative shape
    /// assertions disabled. For CI plumbing checks, not for numbers.
    pub smoke: bool,
    /// Whether cells should collect telemetry into their recorders.
    pub telemetry: bool,
    /// Directory for telemetry artifacts cells export directly (per-cycle
    /// trace CSVs and the like). Unused when `telemetry` is off.
    pub telemetry_out: PathBuf,
    /// Event tracing: `Some` makes trace-aware scenarios attach a
    /// flight recorder per cell; `None` (the default) costs nothing —
    /// untraced loops run with `NullTracer`, which compiles away.
    pub trace: Option<TraceSpec>,
    /// Whether batchable scenarios may use the lane executor (the
    /// default). `false` pins every cell to the scalar path — results
    /// are bitwise identical either way, so this only trades speed for
    /// per-cell backtraces and apples-to-apples scalar timing.
    pub lanes: bool,
}

impl Default for Ctx {
    fn default() -> Ctx {
        Ctx {
            scale: 1.0,
            smoke: false,
            telemetry: false,
            telemetry_out: crate::telemetry::default_out_dir(),
            trace: None,
            lanes: true,
        }
    }
}

impl Ctx {
    /// A context at a given scale, telemetry off.
    pub fn new(scale: f64) -> Ctx {
        Ctx {
            scale,
            ..Ctx::default()
        }
    }

    /// Scales a default cycle budget (smoke mode overrides to
    /// [`SMOKE_CYCLES`]).
    pub fn budget(&self, default_cycles: u64) -> u64 {
        if self.smoke {
            SMOKE_CYCLES
        } else {
            scaled_budget(default_cycles, self.scale)
        }
    }

    /// The warm-up cycles to use for a workload (smoke mode caps at
    /// [`SMOKE_WARMUP`]).
    pub fn warmup(&self, workload_warmup: u64) -> u64 {
        if self.smoke {
            workload_warmup.min(SMOKE_WARMUP)
        } else {
            workload_warmup
        }
    }

    /// A narrative shape check: panics with `msg` when `cond` fails —
    /// except in smoke mode, where budgets are far too small for the
    /// paper's shape claims to hold.
    ///
    /// # Panics
    ///
    /// Panics when `cond` is false outside smoke mode.
    pub fn check(&self, cond: bool, msg: &str) {
        if !self.smoke {
            assert!(cond, "narrative check failed: {msg}");
        }
    }
}

/// The structured result of one grid cell.
#[derive(Debug, Default)]
pub struct CellResult {
    /// The cell's label (usually echoes the grid label).
    pub label: String,
    /// Pre-formatted table cells, consumed by table-building renderers.
    pub row: Vec<String>,
    /// Free-form report text (charts, narratives); renderers that use
    /// `row` typically leave this empty.
    pub text: String,
    /// Named metrics for cross-cell aggregation in `render` (means,
    /// baselines, comparisons) and structured inspection.
    pub values: Vec<(&'static str, f64)>,
    /// Telemetry collected while running the cell; merged into the
    /// run-wide aggregate in grid order.
    pub recorder: MemoryRecorder,
    /// Flight recorder for trace-aware scenarios (left at its default,
    /// empty state otherwise); snapshotted into the run-wide
    /// [`MergedTrace`] in grid order.
    pub tracer: FlightRecorder,
}

impl CellResult {
    /// An empty result with a label.
    pub fn new(label: impl Into<String>) -> CellResult {
        CellResult {
            label: label.into(),
            ..CellResult::default()
        }
    }

    /// Records a named metric.
    pub fn value(&mut self, name: &'static str, value: f64) -> &mut Self {
        self.values.push((name, value));
        self
    }

    /// Looks up a named metric.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.values
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a named metric, panicking with a clear message when the
    /// cell didn't record it (a scenario bug, not an input condition).
    ///
    /// # Panics
    ///
    /// Panics when the metric is absent.
    pub fn require(&self, name: &str) -> f64 {
        self.get(name)
            .unwrap_or_else(|| panic!("cell {:?} recorded no metric {name:?}", self.label))
    }
}

/// One lane a batchable scenario contributes to the engine's lane
/// executor: a fully built closed loop plus the cycle budget it should
/// run for (warm-up included, exactly what `sim.run(budget)` would get
/// on the scalar path).
#[derive(Debug)]
pub struct BatchLane {
    /// The closed loop to step.
    pub sim: ControlLoop,
    /// Total cycles to run (the lane exits earlier if its program
    /// terminates, matching `ControlLoop::run`).
    pub budget: u64,
}

/// Rough wall-clock class, shown by `voltctl-exp list`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Runtime {
    /// Analytic; finishes in well under a second.
    Instant,
    /// A few seconds of simulation.
    Seconds,
    /// A minute-class full-stack sweep — the parallel payoff lives here.
    Minutes,
}

impl Runtime {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Runtime::Instant => "instant",
            Runtime::Seconds => "seconds",
            Runtime::Minutes => "minutes",
        }
    }
}

/// One reproducible experiment: a named parameter grid plus a per-cell
/// run function and a renderer that turns ordered cell results into the
/// report text.
///
/// Implementations must be `Sync`: `run_cell` is called from worker
/// threads with only `&self`. All mutable state belongs in the
/// [`CellResult`].
pub trait Scenario: Sync {
    /// Stable identifier (`table2_emergencies`, `fig14_sensor_delay_perf`, …).
    fn id(&self) -> &'static str;
    /// One-line description for `voltctl-exp list`.
    fn title(&self) -> &'static str;
    /// Rough runtime class at scale 1.0.
    fn runtime(&self) -> Runtime {
        Runtime::Seconds
    }
    /// The parameter grid: one label per cell, in **report order**. The
    /// engine may run cells in any order on any thread, but results are
    /// always handed to [`render`](Scenario::render) in this order.
    fn cells(&self, ctx: &Ctx) -> Vec<String>;
    /// Runs one cell of the grid. Must be deterministic given
    /// `(ctx, cell)` and free of global mutable state.
    fn run_cell(&self, ctx: &Ctx, cell: usize) -> CellResult;
    /// Assembles the report from index-ordered cell results.
    fn render(&self, ctx: &Ctx, cells: &[CellResult]) -> String;
    /// Whether cells attach a flight recorder when `ctx.trace` is set.
    /// `voltctl-exp list` marks these; `trace` on anything else fails.
    fn trace_aware(&self) -> bool {
        false
    }
    /// Whether this scenario opts into the lane executor: cells that can
    /// express themselves as a flat list of [`BatchLane`]s are stepped
    /// in lockstep by a shared [`LaneLoop`], amortizing CPU and power
    /// work across lanes that share identical state. The engine only
    /// uses the lane path when telemetry and tracing are off — lane
    /// results are bitwise identical to the scalar path, so reports
    /// don't change, but per-cycle telemetry streams are scalar-only.
    fn batchable(&self) -> bool {
        false
    }
    /// Produces this cell's lanes for the lane executor, or `None` to
    /// run the cell on the scalar path ([`run_cell`](Scenario::run_cell))
    /// instead — the escape hatch for cells with nothing to simulate
    /// (e.g. configurations the threshold solver rejects).
    fn batch_cell(&self, _ctx: &Ctx, _cell: usize) -> Option<Vec<BatchLane>> {
        None
    }
    /// Assembles the cell's [`CellResult`] from the finished lanes'
    /// outcomes, in the order [`batch_cell`](Scenario::batch_cell)
    /// produced them. Must yield a result byte-identical to
    /// [`run_cell`](Scenario::run_cell) (lane outcomes are bitwise equal
    /// to scalar runs, so this is a pure reshaping).
    fn finish_batch_cell(
        &self,
        _ctx: &Ctx,
        _cell: usize,
        _outcomes: Vec<LaneOutcome>,
    ) -> CellResult {
        unreachable!("scenarios that produce batch lanes must implement finish_batch_cell")
    }
}

/// The output of one engine run.
#[derive(Debug)]
pub struct RunOutput {
    /// The rendered report.
    pub report: String,
    /// All cells' telemetry, merged in grid order.
    pub telemetry: MemoryRecorder,
    /// All cells' trace captures, merged in grid order. Empty unless
    /// `ctx.trace` was set and the scenario is trace-aware.
    pub trace: MergedTrace,
    /// Number of grid cells executed.
    pub cells: usize,
    /// Worker threads actually used.
    pub jobs: usize,
    /// Wall-clock for grid execution + merge + render.
    pub elapsed: Duration,
}

/// Runs a scenario's grid on up to `jobs` worker threads and renders
/// its report. `jobs` is clamped to `[1, #cells]`; the cell order of
/// the output is the grid order regardless of scheduling.
pub fn run_scenario(scenario: &dyn Scenario, ctx: &Ctx, jobs: usize) -> RunOutput {
    run_scenario_profiled(scenario, ctx, jobs, &NullProfiler)
}

/// [`run_scenario`] with self-profiling: each grid cell, the merge, and
/// the render record wall-clock spans into `profiler` under folded
/// stacks (`exp;<id>;grid;job<j>;<cell>`, `exp;<id>;merge`,
/// `exp;<id>;render`). With [`NullProfiler`] the spans compile away and
/// this *is* `run_scenario`.
pub fn run_scenario_profiled<P: Profiler>(
    scenario: &dyn Scenario,
    ctx: &Ctx,
    jobs: usize,
    profiler: &P,
) -> RunOutput {
    let started = Instant::now();
    let n = scenario.cells(ctx).len();
    let jobs = jobs.max(1).min(n.max(1));
    let results = run_cells_profiled(scenario, ctx, jobs, 0..n, profiler);
    let mut out = assemble_run_profiled(scenario, ctx, results, jobs, profiler);
    out.elapsed = started.elapsed();
    out
}

/// Runs a contiguous sub-range of a scenario's grid on up to `jobs`
/// worker threads and returns the cell results **in grid order**.
///
/// This is the resumable primitive under [`run_scenario`]: a sharded run
/// calls it once per shard (checkpointing each returned slice) and then
/// feeds the concatenation to [`assemble_run`], which performs exactly
/// the merge+render a single-shot run would — so shard-then-merge output
/// is byte-identical to single-shot at any `jobs` value.
///
/// # Panics
///
/// Panics when `range` exceeds the scenario's grid.
pub fn run_cells(
    scenario: &dyn Scenario,
    ctx: &Ctx,
    jobs: usize,
    range: std::ops::Range<usize>,
) -> Vec<CellResult> {
    run_cells_profiled(scenario, ctx, jobs, range, &NullProfiler)
}

/// [`run_cells`] with self-profiling (same span layout as
/// [`run_scenario_profiled`]'s grid stage).
pub fn run_cells_profiled<P: Profiler>(
    scenario: &dyn Scenario,
    ctx: &Ctx,
    jobs: usize,
    range: std::ops::Range<usize>,
    profiler: &P,
) -> Vec<CellResult> {
    let id = scenario.id();
    let labels = scenario.cells(ctx);
    assert!(
        range.start <= range.end && range.end <= labels.len(),
        "cell range {range:?} exceeds the {}-cell grid of {id}",
        labels.len()
    );
    let n = range.len();
    let jobs = jobs.max(1).min(n.max(1));

    // Lane-batched execution when the scenario opts in and nothing
    // forces the scalar path. Lane results are bitwise identical to
    // scalar runs, so the choice is invisible in every report.
    if ctx.lanes && scenario.batchable() && !ctx.telemetry && ctx.trace.is_none() {
        return run_cells_batched(scenario, ctx, jobs, range, &labels, profiler);
    }

    let slots: Vec<Mutex<Option<CellResult>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let base = range.start;

    if jobs == 1 {
        // Run inline: identical semantics, no thread overhead, and
        // backtraces from narrative checks stay on the caller's stack.
        for (k, slot) in slots.iter().enumerate() {
            let span = Span::start(profiler);
            let result = scenario.run_cell(ctx, base + k);
            span.stop(profiler, &["exp", id, "grid", "job0", &labels[base + k]]);
            *slot.lock().expect("unshared slot") = Some(result);
        }
    } else {
        std::thread::scope(|s| {
            for j in 0..jobs {
                let (slots, next, labels) = (&slots, &next, &labels);
                s.spawn(move || {
                    let job = format!("job{j}");
                    loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        if k >= n {
                            break;
                        }
                        let span = Span::start(profiler);
                        let result = scenario.run_cell(ctx, base + k);
                        span.stop(profiler, &["exp", id, "grid", &job, &labels[base + k]]);
                        *slots[k].lock().expect("cell slot poisoned") = Some(result);
                    }
                });
            }
        });
    }

    slots
        .into_iter()
        .enumerate()
        .map(|(k, slot)| {
            slot.into_inner()
                .expect("cell slot poisoned")
                .unwrap_or_else(|| {
                    panic!(
                        "cell {} ({:?}) produced no result",
                        base + k,
                        labels[base + k]
                    )
                })
        })
        .collect()
}

/// The lane-batched back end of [`run_cells_profiled`]: cells are handed
/// out to workers in contiguous chunks; each chunk's lanes (from
/// [`Scenario::batch_cell`]) are gathered into one [`LaneLoop`] and
/// stepped in lockstep, then scattered back through
/// [`Scenario::finish_batch_cell`]. Cells that decline batching run on
/// the scalar path inside the same work queue.
///
/// Chunking multiple cells into one `LaneLoop` is where the speedup
/// comes from, twice over:
///
/// * lanes that are **entirely identical** — same snapshot bytes, same
///   budget — are simulated once and their outcome copied (sweep grids
///   re-run the same uncontrolled baseline in every cell; determinism
///   makes the copy exact, and the lane/scalar oracle tests prove it);
/// * the surviving lanes with byte-identical CPU state (a cell's
///   baseline/controlled pair before the first intervention) share one
///   CPU step per cycle inside the `LaneLoop`.
///
/// Chunk boundaries affect only scheduling, never results — every
/// lane's arithmetic is independent of its neighbours.
fn run_cells_batched<P: Profiler>(
    scenario: &dyn Scenario,
    ctx: &Ctx,
    jobs: usize,
    range: std::ops::Range<usize>,
    labels: &[String],
    profiler: &P,
) -> Vec<CellResult> {
    let id = scenario.id();
    let n = range.len();
    let base = range.start;
    // Wider chunks dedupe and share across more cells, but every live
    // CPU in a chunk is stepped each cycle, so too many lanes turns the
    // lockstep walk cache-hostile. Eight cells per chunk balances the
    // two (and keeps multi-worker runs schedulable).
    let chunk = if jobs <= 1 {
        n.clamp(1, 8)
    } else {
        n.div_ceil(jobs * 2).clamp(1, 8)
    };
    let n_chunks = n.div_ceil(chunk);

    let slots: Vec<Mutex<Option<CellResult>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    let worker = |j: usize| {
        let job = format!("job{j}");
        loop {
            let c = next.fetch_add(1, Ordering::Relaxed);
            if c >= n_chunks {
                break;
            }
            let lo = c * chunk;
            let hi = (lo + chunk).min(n);
            let chunk_label = format!("chunk{c}");

            // Gather: build every batchable cell's lanes, dedupe exact
            // replicas, and transpose the survivors into one SoA lane
            // loop. `origin[i]` maps logical lane `i` to its simulated
            // representative.
            let span = Span::start(profiler);
            let mut sims = Vec::new();
            let mut budgets = Vec::new();
            let mut origin = Vec::new();
            let mut seen: Vec<(u64, Vec<u8>, usize)> = Vec::new(); // (budget-key, bytes, lane)
            let mut cell_spans = Vec::new(); // (slot, first lane, lane count)
            let mut scalar_cells = Vec::new();
            for k in lo..hi {
                match scenario.batch_cell(ctx, base + k) {
                    Some(lanes) => {
                        let start = origin.len();
                        for lane in lanes {
                            let bytes = lane.sim.save();
                            match seen
                                .iter()
                                .find(|(b, s, _)| *b == lane.budget && *s == bytes)
                            {
                                Some(&(_, _, dup)) => origin.push(dup),
                                None => {
                                    seen.push((lane.budget, bytes, sims.len()));
                                    origin.push(sims.len());
                                    sims.push(lane.sim);
                                    budgets.push(lane.budget);
                                }
                            }
                        }
                        cell_spans.push((k, start, origin.len() - start));
                    }
                    None => scalar_cells.push(k),
                }
            }
            let mut lanes = (!sims.is_empty()).then(|| LaneLoop::gather(sims, &budgets));
            span.stop(profiler, &["exp", id, "lanes", "gather", &chunk_label]);

            // Step: run every lane in the chunk to completion.
            if let Some(lanes) = lanes.as_mut() {
                let span = Span::start(profiler);
                lanes.run();
                span.stop(profiler, &["exp", id, "lanes", "step", &chunk_label]);
            }

            // Scatter: reshape each cell's lane outcomes into its result.
            if let Some(lanes) = lanes.as_ref() {
                let span = Span::start(profiler);
                for &(k, start, count) in &cell_spans {
                    let outcomes: Vec<LaneOutcome> = origin[start..start + count]
                        .iter()
                        .map(|&l| {
                            lanes
                                .outcome(l)
                                .expect("every lane has exited after run()")
                                .clone()
                        })
                        .collect();
                    let result = scenario.finish_batch_cell(ctx, base + k, outcomes);
                    *slots[k].lock().expect("cell slot poisoned") = Some(result);
                }
                span.stop(profiler, &["exp", id, "lanes", "scatter", &chunk_label]);
            }

            // Scalar fallback for cells that declined batching.
            for &k in &scalar_cells {
                let span = Span::start(profiler);
                let result = scenario.run_cell(ctx, base + k);
                span.stop(profiler, &["exp", id, "grid", &job, &labels[base + k]]);
                *slots[k].lock().expect("cell slot poisoned") = Some(result);
            }
        }
    };

    if jobs == 1 {
        worker(0);
    } else {
        std::thread::scope(|s| {
            let worker = &worker;
            for j in 0..jobs {
                s.spawn(move || worker(j));
            }
        });
    }

    slots
        .into_iter()
        .enumerate()
        .map(|(k, slot)| {
            slot.into_inner()
                .expect("cell slot poisoned")
                .unwrap_or_else(|| {
                    panic!(
                        "cell {} ({:?}) produced no result",
                        base + k,
                        labels[base + k]
                    )
                })
        })
        .collect()
}

/// Merges grid-ordered cell results and renders the report — the back
/// half of [`run_scenario`], exposed so sharded runs (which obtain
/// their results from [`run_cells`] calls and checkpoint restores) can
/// produce output byte-identical to a single-shot run.
///
/// `results` must cover the whole grid in grid order. `elapsed` on the
/// returned output covers only merge+render; callers tracking a longer
/// wall clock overwrite it.
pub fn assemble_run(
    scenario: &dyn Scenario,
    ctx: &Ctx,
    results: Vec<CellResult>,
    jobs: usize,
) -> RunOutput {
    assemble_run_profiled(scenario, ctx, results, jobs, &NullProfiler)
}

/// [`assemble_run`] with self-profiling (`exp;<id>;merge` and
/// `exp;<id>;render` spans).
pub fn assemble_run_profiled<P: Profiler>(
    scenario: &dyn Scenario,
    ctx: &Ctx,
    results: Vec<CellResult>,
    jobs: usize,
    profiler: &P,
) -> RunOutput {
    let started = Instant::now();
    let id = scenario.id();
    let n = results.len();

    // Grid-order merge: deterministic regardless of completion order.
    let span = Span::start(profiler);
    let mut telemetry = MemoryRecorder::new();
    let mut trace = MergedTrace::new();
    for r in &results {
        telemetry.merge(&r.recorder);
        if ctx.trace.is_some() && r.tracer.cycles() > 0 {
            trace.push(r.tracer.to_cell(r.label.clone()));
        }
    }
    // Traced runs fold their root-cause attribution into the telemetry
    // aggregate as `trace.cause.*` counters (all classes, so the counter
    // set is stable run to run). Attribution is deterministic over the
    // grid-order merge, so these are jobs-invariant like everything else.
    if !trace.is_empty() {
        let counts = crate::trace::forensics(&trace).counts;
        for cause in Cause::ALL {
            telemetry.counter(cause.counter_name(), counts.get(cause));
        }
        telemetry.counter("trace.captures", trace.total_captures() as u64);
    }
    span.stop(profiler, &["exp", id, "merge"]);

    let span = Span::start(profiler);
    let report = scenario.render(ctx, &results);
    span.stop(profiler, &["exp", id, "render"]);
    RunOutput {
        report,
        telemetry,
        trace,
        cells: n,
        jobs,
        elapsed: started.elapsed(),
    }
}

/// The default worker count: one per available hardware thread.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltctl_telemetry::Recorder;

    struct Counting;

    impl Scenario for Counting {
        fn id(&self) -> &'static str {
            "counting"
        }
        fn title(&self) -> &'static str {
            "test scenario"
        }
        fn cells(&self, _ctx: &Ctx) -> Vec<String> {
            (0..17).map(|k| format!("cell{k}")).collect()
        }
        fn run_cell(&self, _ctx: &Ctx, cell: usize) -> CellResult {
            let mut r = CellResult::new(format!("cell{cell}"));
            r.value("square", (cell * cell) as f64);
            r.recorder.counter("cells.run", 1);
            r.row = vec![cell.to_string(), (cell * cell).to_string()];
            r
        }
        fn render(&self, _ctx: &Ctx, cells: &[CellResult]) -> String {
            cells
                .iter()
                .map(|c| format!("{}={}", c.label, c.require("square")))
                .collect::<Vec<_>>()
                .join("\n")
        }
    }

    #[test]
    fn results_are_ordered_and_merged() {
        for jobs in [1, 3, 8, 64] {
            let out = run_scenario(&Counting, &Ctx::default(), jobs);
            assert_eq!(out.cells, 17);
            assert!(out.jobs <= 17);
            assert_eq!(out.telemetry.snapshot().counter("cells.run"), Some(17));
            assert!(out.report.starts_with("cell0=0"));
            assert!(out.report.ends_with("cell16=256"));
        }
    }

    #[test]
    fn profiled_run_records_stage_spans() {
        let p = crate::profile::SelfProfiler::new();
        let out = run_scenario_profiled(&Counting, &Ctx::default(), 3, &p);
        assert_eq!(out.cells, 17);
        let stacks = p.stacks();
        let has = |frag: &str| stacks.iter().any(|(s, _)| s.starts_with(frag));
        assert!(has("exp;counting;grid;job"), "cell spans: {stacks:?}");
        assert!(has("exp;counting;merge"), "merge span: {stacks:?}");
        assert!(has("exp;counting;render"), "render span: {stacks:?}");
        let cell_spans: u64 = stacks
            .iter()
            .filter(|(s, _)| s.starts_with("exp;counting;grid;"))
            .map(|(_, st)| st.count)
            .sum();
        assert_eq!(cell_spans, 17, "one span per grid cell");
        assert!(!Counting.trace_aware(), "trace-awareness defaults off");
    }

    #[test]
    fn smoke_overrides_budgets() {
        let full = Ctx::new(1.0);
        assert_eq!(full.budget(100_000), 100_000);
        assert_eq!(full.warmup(40_000), 40_000);
        let smoke = Ctx {
            smoke: true,
            ..Ctx::default()
        };
        assert_eq!(smoke.budget(100_000), SMOKE_CYCLES);
        assert_eq!(smoke.warmup(40_000), SMOKE_WARMUP);
        smoke.check(false, "shape claims are off in smoke mode");
    }

    #[test]
    #[should_panic(expected = "narrative check")]
    fn checks_fire_outside_smoke() {
        Ctx::default().check(false, "must fire");
    }

    #[test]
    fn scale_reaches_budgets() {
        let ctx = Ctx::new(0.5);
        assert_eq!(ctx.budget(100_000), 50_000);
    }
}
