//! Run provenance manifests: every artifact directory a command writes
//! into gains a `manifest.json` describing *how* the artifacts were
//! produced — command, scenario ids, seeds, scale, jobs, schema
//! versions, `git describe`, host, wall clock, and the artifact list
//! with sizes.
//!
//! The goal is that a `results/` directory found on a CI runner (or a
//! laptop three months from now) is self-describing: the manifest names
//! the exact inputs needed to regenerate its neighbors.
//!
//! Manifests go through the same never-overwrite writer as the
//! artifacts they describe
//! ([`write_file_fresh`](voltctl_telemetry::export::write_file_fresh)),
//! so a rerun into the same directory leaves `manifest.json` for the
//! first run intact and writes `manifest-1.json` next to it. The one
//! exception is the perf-baseline directory, whose artifacts are
//! regenerate-in-place; [`Manifest::write_over`] matches that.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use voltctl_telemetry::export::{self, json_escape};

/// Schema version of the manifest format itself. Version 2 added the
/// shard lineage fields: `shards` (0 = single-shot) and `resume_from`
/// (the checkpoint directory a resumed run loaded from, else `null`).
pub const MANIFEST_SCHEMA: u64 = 2;

/// The schema versions of every machine-readable artifact format this
/// workspace writes, recorded in each manifest so a reader knows which
/// parser vintage applies without opening the artifacts.
pub fn schema_versions() -> Vec<(&'static str, u64)> {
    vec![
        ("manifest", MANIFEST_SCHEMA),
        ("bench", crate::bench::BENCH_SCHEMA),
        ("telemetry_snapshot", 1),
        ("trace_event_json", 1),
        ("snapshot", voltctl_snap::CONTAINER_VERSION as u64),
    ]
}

/// The process-fixed seeds a run depends on: reproducing an artifact
/// needs these (plus the command line) and nothing else.
pub fn default_seeds() -> Vec<(&'static str, u64)> {
    vec![
        (
            "sensor.noise",
            voltctl_core::sensor::SensorConfig::default().seed,
        ),
        ("bench.trace", 0x9e3779b97f4a7c15),
    ]
}

/// A provenance record under construction. Build with the setters, add
/// artifacts as they land on disk, then [`write`](Manifest::write) it
/// into the directory it describes.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// The subcommand (plus salient flags) that produced the artifacts.
    pub command: String,
    /// Scenario ids involved, in execution order.
    pub scenarios: Vec<String>,
    /// Cycle-budget scale factor.
    pub scale: f64,
    /// Worker threads requested.
    pub jobs: usize,
    /// Whether smoke budgets were used.
    pub smoke: bool,
    /// Shard count of a sharded run; 0 means single-shot (no shard
    /// checkpoints were involved).
    pub shards: usize,
    /// Checkpoint directory a resumed run loaded shards from, if any.
    pub resume_from: Option<String>,
    /// Named RNG seeds the run depended on.
    pub seeds: Vec<(&'static str, u64)>,
    /// Artifact-format schema versions (see [`schema_versions`]).
    pub versions: Vec<(&'static str, u64)>,
    /// Wall clock spent producing the artifacts, in milliseconds.
    pub wall_ms: u64,
    artifacts: Vec<(String, u64)>,
}

impl Manifest {
    /// A manifest for `command` with the default seeds and schema
    /// versions, scale 1.0, one job, full budgets, and no artifacts.
    pub fn new(command: impl Into<String>) -> Manifest {
        Manifest {
            command: command.into(),
            scenarios: Vec::new(),
            scale: 1.0,
            jobs: 1,
            smoke: false,
            shards: 0,
            resume_from: None,
            seeds: default_seeds(),
            versions: schema_versions(),
            wall_ms: 0,
            artifacts: Vec::new(),
        }
    }

    /// Copies the run shape out of an engine [`Ctx`](crate::engine::Ctx).
    pub fn ctx(&mut self, ctx: &crate::engine::Ctx, jobs: usize) -> &mut Self {
        self.scale = ctx.scale;
        self.smoke = ctx.smoke;
        self.jobs = jobs;
        self
    }

    /// Appends a scenario id.
    pub fn scenario(&mut self, id: &str) -> &mut Self {
        self.scenarios.push(id.to_string());
        self
    }

    /// Records the elapsed wall clock.
    pub fn wall(&mut self, elapsed: Duration) -> &mut Self {
        self.wall_ms = elapsed.as_millis() as u64;
        self
    }

    /// Records shard lineage: the shard count and, for resumed runs,
    /// the checkpoint directory that supplied prior results.
    pub fn shard_lineage(&mut self, shards: usize, resume_from: Option<&Path>) -> &mut Self {
        self.shards = shards;
        self.resume_from = resume_from.map(|p| p.display().to_string());
        self
    }

    /// Registers an artifact, capturing its on-disk size now. Paths are
    /// stored relative to the manifest's directory when possible (the
    /// manifest travels with its directory).
    pub fn artifact(&mut self, path: &Path) -> &mut Self {
        let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        self.artifacts.push((path.display().to_string(), bytes));
        self
    }

    /// Number of registered artifacts.
    pub fn artifact_count(&self) -> usize {
        self.artifacts.len()
    }

    /// Renders the manifest as a JSON object (hand-rolled like every
    /// other exporter in this workspace; validated by
    /// `voltctl_check::Json` in tests).
    pub fn to_json(&self, dir: &Path) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"schema\": {MANIFEST_SCHEMA},");
        let _ = writeln!(s, "  \"command\": \"{}\",", json_escape(&self.command));
        let scenarios: Vec<String> = self
            .scenarios
            .iter()
            .map(|id| format!("\"{}\"", json_escape(id)))
            .collect();
        let _ = writeln!(s, "  \"scenarios\": [{}],", scenarios.join(", "));
        let _ = writeln!(s, "  \"scale\": {},", self.scale);
        let _ = writeln!(s, "  \"jobs\": {},", self.jobs);
        let _ = writeln!(s, "  \"smoke\": {},", self.smoke);
        let _ = writeln!(s, "  \"shards\": {},", self.shards);
        match &self.resume_from {
            Some(dir) => {
                let _ = writeln!(s, "  \"resume_from\": \"{}\",", json_escape(dir));
            }
            None => {
                let _ = writeln!(s, "  \"resume_from\": null,");
            }
        }
        let _ = writeln!(s, "  \"seeds\": {{");
        for (k, (name, seed)) in self.seeds.iter().enumerate() {
            let comma = if k + 1 < self.seeds.len() { "," } else { "" };
            let _ = writeln!(s, "    \"{name}\": {seed}{comma}");
        }
        let _ = writeln!(s, "  }},");
        let _ = writeln!(s, "  \"schema_versions\": {{");
        for (k, (name, v)) in self.versions.iter().enumerate() {
            let comma = if k + 1 < self.versions.len() { "," } else { "" };
            let _ = writeln!(s, "    \"{name}\": {v}{comma}");
        }
        let _ = writeln!(s, "  }},");
        let _ = writeln!(s, "  \"git\": \"{}\",", json_escape(&git_describe()));
        let _ = writeln!(s, "  \"host\": \"{}\",", json_escape(&hostname()));
        let _ = writeln!(s, "  \"unix_time_ms\": {},", unix_time_ms());
        let _ = writeln!(s, "  \"wall_ms\": {},", self.wall_ms);
        let _ = writeln!(s, "  \"artifacts\": [");
        for (k, (path, bytes)) in self.artifacts.iter().enumerate() {
            let shown = Path::new(path)
                .strip_prefix(dir)
                .map(|p| p.display().to_string())
                .unwrap_or_else(|_| path.clone());
            let comma = if k + 1 < self.artifacts.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(
                s,
                "    {{\"path\": \"{}\", \"bytes\": {bytes}}}{comma}",
                json_escape(&shown)
            );
        }
        let _ = writeln!(s, "  ]");
        let _ = write!(s, "}}");
        s
    }

    /// Writes `manifest.json` under `dir` through the never-overwrite
    /// writer (a rerun yields `manifest-1.json` and so on).
    ///
    /// # Errors
    ///
    /// Propagates the I/O error when the directory cannot be created or
    /// the file cannot be written.
    pub fn write(&self, dir: &Path) -> std::io::Result<PathBuf> {
        export::write_file_fresh(dir, "manifest.json", &self.to_json(dir))
    }

    /// Writes `manifest.json` under `dir`, overwriting any previous one
    /// — for regenerate-in-place directories (the perf baselines).
    ///
    /// # Errors
    ///
    /// Propagates the I/O error when the directory cannot be created or
    /// the file cannot be written.
    pub fn write_over(&self, dir: &Path) -> std::io::Result<PathBuf> {
        export::write_file(dir, "manifest.json", &self.to_json(dir))
    }
}

/// `git describe --always --dirty` in the workspace root, or
/// `"unknown"` when git (or the repository) is unavailable.
pub fn git_describe() -> String {
    let root = voltctl_check::persist::workspace_root();
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .current_dir(&root)
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Best-effort host identification: `$HOSTNAME`, then `/etc/hostname`,
/// then `"unknown"`.
pub fn hostname() -> String {
    std::env::var("HOSTNAME")
        .ok()
        .or_else(|| std::fs::read_to_string("/etc/hostname").ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn unix_time_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("voltctl-manifest-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn manifest_json_parses_and_carries_provenance() {
        let dir = temp_dir("parse");
        let artifact = dir.join("fig.trace.json");
        std::fs::write(&artifact, "{}").unwrap();

        let mut m = Manifest::new("trace stressmark");
        m.scenario("fig08_stressmark")
            .wall(Duration::from_millis(1234))
            .artifact(&artifact);
        m.scale = 0.5;
        m.jobs = 8;

        let json = m.to_json(&dir);
        let parsed = voltctl_check::Json::parse(&json).expect("manifest JSON parses");
        for key in [
            "schema",
            "git",
            "host",
            "seeds",
            "schema_versions",
            "artifacts",
            "shards",
            "resume_from",
        ] {
            assert!(parsed.get(key).is_some(), "manifest carries {key:?}");
        }
        assert!(json.contains("\"scenarios\": [\"fig08_stressmark\"]"));
        assert!(json.contains("\"wall_ms\": 1234"));
        // Single-shot lineage defaults: no shards, no resume source.
        assert!(json.contains("\"shards\": 0"));
        assert!(json.contains("\"resume_from\": null"));
        // Snapshot container version travels with every manifest.
        assert!(json.contains("\"snapshot\": 1"));
        // The artifact path is relativized and carries its true size.
        assert!(json.contains("\"path\": \"fig.trace.json\", \"bytes\": 2"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_never_overwrites_but_write_over_does() {
        let dir = temp_dir("fresh");
        let m = Manifest::new("bench");
        let first = m.write(&dir).unwrap();
        assert_eq!(first.file_name().unwrap(), "manifest.json");
        let second = m.write(&dir).unwrap();
        assert_eq!(second.file_name().unwrap(), "manifest-1.json");
        let over = m.write_over(&dir).unwrap();
        assert_eq!(over, first, "write_over targets the canonical name");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn describe_and_host_never_panic() {
        assert!(!git_describe().is_empty());
        assert!(!hostname().is_empty());
    }

    #[test]
    fn shard_lineage_is_rendered() {
        let dir = temp_dir("lineage");
        let mut m = Manifest::new("run --shards 3");
        m.shard_lineage(3, Some(Path::new("results/checkpoints/a")));
        let json = m.to_json(&dir);
        voltctl_check::Json::parse(&json).expect("manifest JSON parses");
        assert!(json.contains("\"shards\": 3"));
        assert!(json.contains("\"resume_from\": \"results/checkpoints/a\""));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn seeds_cover_the_sensor() {
        let seeds = default_seeds();
        assert!(seeds
            .iter()
            .any(|(n, s)| *n == "sensor.noise" && *s == 0x5eed));
    }
}
