//! §2 motivation figures: ITRS impedance trends, the second-order model's
//! responses, and the spike/notch/resonance waveform studies (Figures 1–6).

use std::fmt::Write as _;
use voltctl_pdn::itrs::{self, Segment};
use voltctl_pdn::{waveform, FrequencyResponse, StepResponse, VoltageMonitor};

use crate::engine::{CellResult, Ctx, Runtime, Scenario};
use crate::harness::{delta_i, pdn_at};
use crate::report::{ascii_chart, TextTable};

/// Replays a current trace on a fresh supply state and reports on it.
fn replay(percent: f64, trace: &[f64]) -> (Vec<f64>, voltctl_pdn::EmergencyReport) {
    let pdn = pdn_at(percent);
    let mut state = pdn.discretize();
    let volts = state.run(trace);
    let mut monitor = VoltageMonitor::new(pdn.v_nominal(), pdn.tolerance());
    monitor.observe_all(&volts);
    (volts, monitor.report())
}

/// Figure 1: relative power-supply impedance trends from ITRS-2001 data.
pub struct Fig01Itrs;

impl Scenario for Fig01Itrs {
    fn id(&self) -> &'static str {
        "fig01_itrs"
    }
    fn title(&self) -> &'static str {
        "ITRS-2001 relative impedance trends"
    }
    fn runtime(&self) -> Runtime {
        Runtime::Instant
    }
    fn cells(&self, _ctx: &Ctx) -> Vec<String> {
        vec!["itrs".into()]
    }
    fn run_cell(&self, _ctx: &Ctx, _cell: usize) -> CellResult {
        let mut out = CellResult::new("itrs");
        let cp = itrs::relative_impedance(Segment::CostPerformance);
        let hp = itrs::relative_impedance(Segment::HighPerformance);
        let gap = itrs::segment_gap();

        let mut t = TextTable::new(["year", "cost-perf (rel)", "high-perf (rel)", "cp/hp gap"]);
        for ((cp, hp), gap) in cp.iter().zip(&hp).zip(&gap) {
            assert_eq!(cp.0, hp.0);
            t.row([
                cp.0.to_string(),
                format!("{:.3}", cp.1),
                format!("{:.3}", hp.1),
                format!("{:.2}", gap.1),
            ]);
        }
        let s = &mut out.text;
        writeln!(s, "== Figure 1: relative impedance trends (ITRS 2001) ==\n").unwrap();
        writeln!(s, "{}", t.render()).unwrap();

        let half_cp = cp.iter().find(|(_, z)| *z < 0.5).map(|(y, _)| *y);
        let half_hp = hp.iter().find(|(_, z)| *z < 0.5).map(|(y, _)| *y);
        writeln!(
            s,
            "impedance halves by: cost-perf {} / high-perf {} (paper: ~2x every 3-5 years)",
            half_cp.map_or("n/a".into(), |y| y.to_string()),
            half_hp.map_or("n/a".into(), |y| y.to_string()),
        )
        .unwrap();
        writeln!(
            s,
            "segment gap: {:.2}x (2001) -> {:.2}x (2016)  — converging, as the paper observes",
            gap.first().expect("nonempty").1,
            gap.last().expect("nonempty").1
        )
        .unwrap();
        out
    }
    fn render(&self, _ctx: &Ctx, cells: &[CellResult]) -> String {
        cells[0].text.clone()
    }
}

/// Figure 2: frequency and transient response of the second-order model.
pub struct Fig02Response;

impl Scenario for Fig02Response {
    fn id(&self) -> &'static str {
        "fig02_response"
    }
    fn title(&self) -> &'static str {
        "second-order model frequency/step responses"
    }
    fn runtime(&self) -> Runtime {
        Runtime::Instant
    }
    fn cells(&self, _ctx: &Ctx) -> Vec<String> {
        vec!["response".into()]
    }
    fn run_cell(&self, _ctx: &Ctx, _cell: usize) -> CellResult {
        let mut out = CellResult::new("response");
        let pdn = pdn_at(2.0);
        let s = &mut out.text;
        writeln!(
            s,
            "== Figure 2: second-order model responses (200% of target impedance) ==\n"
        )
        .unwrap();
        writeln!(
            s,
            "model: R_dc {:.2} mOhm, f0 {:.0} MHz ({} cycles @ 3 GHz), Z_pk {:.3} mOhm, Q {:.2}, zeta {:.3}\n",
            pdn.r_dc() * 1e3,
            pdn.resonant_freq_hz() / 1e6,
            pdn.resonant_period_cycles(),
            pdn.peak_impedance() * 1e3,
            pdn.q_factor(),
            pdn.damping_ratio()
        )
        .unwrap();

        writeln!(s, "-- impedance vs frequency --").unwrap();
        let sweep = FrequencyResponse::sweep(&pdn, 1.0e6, 1.0e9, 240);
        let mags: Vec<f64> = sweep.points().iter().map(|(_, z)| z * 1e3).collect();
        writeln!(s, "{}", ascii_chart(&mags, 10, 72)).unwrap();
        writeln!(s, "           (log-frequency 1 MHz .. 1 GHz; y in mOhm)\n").unwrap();
        let (f_pk, z_pk) = sweep.peak();
        writeln!(
            s,
            "sampled peak: {:.3} mOhm at {:.1} MHz\n",
            z_pk * 1e3,
            f_pk / 1e6
        )
        .unwrap();

        let mut t = TextTable::new(["f (MHz)", "|Z| (mOhm)"]);
        for &f in &[1.0, 5.0, 10.0, 25.0, 50.0, 75.0, 100.0, 200.0, 500.0] {
            t.row([
                format!("{f:.0}"),
                format!("{:.4}", pdn.impedance_at(f * 1e6) * 1e3),
            ]);
        }
        writeln!(s, "{}", t.render()).unwrap();

        writeln!(
            s,
            "-- step response (current step = full machine swing {:.1} A) --",
            delta_i()
        )
        .unwrap();
        let sr = StepResponse::simulate(&pdn, delta_i(), 400);
        writeln!(s, "{}", ascii_chart(sr.volts(), 10, 72)).unwrap();
        let m = sr.metrics();
        writeln!(
            s,
            "peak deviation {:.1} mV at cycle {}, overshoot ratio {:.2}, settles by cycle {}, ringing period {} cycles",
            m.peak_deviation * 1e3,
            m.peak_cycle,
            m.overshoot_ratio,
            m.settling_cycle.map_or("n/a".into(), |c| c.to_string()),
            m.ringing_period.map_or("n/a".into(), |p| p.to_string()),
        )
        .unwrap();
        out
    }
    fn render(&self, _ctx: &Ctx, cells: &[CellResult]) -> String {
        cells[0].text.clone()
    }
}

/// Figure 3: the supply tolerates a narrow (5-cycle) current spike.
pub struct Fig03NarrowSpike;

impl Scenario for Fig03NarrowSpike {
    fn id(&self) -> &'static str {
        "fig03_narrow_spike"
    }
    fn title(&self) -> &'static str {
        "narrow current spike stays in spec"
    }
    fn runtime(&self) -> Runtime {
        Runtime::Instant
    }
    fn cells(&self, _ctx: &Ctx) -> Vec<String> {
        vec!["narrow".into()]
    }
    fn run_cell(&self, ctx: &Ctx, _cell: usize) -> CellResult {
        let mut out = CellResult::new("narrow");
        let pdn = pdn_at(3.0);
        let trace = waveform::spike(0.0, delta_i(), 20, 5, 360);
        let (volts, r) = replay(3.0, &trace);
        if ctx.telemetry {
            r.record_telemetry(&mut out.recorder);
        }
        let s = &mut out.text;
        writeln!(
            s,
            "== Figure 3: response to a narrow (5-cycle, {:.1} A) current spike ==",
            delta_i()
        )
        .unwrap();
        writeln!(s, "   (300% of target impedance)\n").unwrap();
        writeln!(s, "{}", ascii_chart(&volts, 10, 72)).unwrap();
        writeln!(
            s,
            "min voltage {:.1} mV below nominal; emergencies: {}",
            (pdn.v_nominal() - r.min_v) * 1e3,
            if r.any() { "YES" } else { "none" }
        )
        .unwrap();
        ctx.check(!r.any(), "narrow spike must stay in spec");
        out
    }
    fn render(&self, _ctx: &Ctx, cells: &[CellResult]) -> String {
        cells[0].text.clone()
    }
}

/// Figure 4: a wide (10-cycle) spike of the same height causes an
/// undervoltage emergency — duration, not just magnitude, matters.
pub struct Fig04WideSpike;

impl Scenario for Fig04WideSpike {
    fn id(&self) -> &'static str {
        "fig04_wide_spike"
    }
    fn title(&self) -> &'static str {
        "wide current spike crosses the 5% band"
    }
    fn runtime(&self) -> Runtime {
        Runtime::Instant
    }
    fn cells(&self, _ctx: &Ctx) -> Vec<String> {
        vec!["wide".into()]
    }
    fn run_cell(&self, ctx: &Ctx, _cell: usize) -> CellResult {
        let mut out = CellResult::new("wide");
        let pdn = pdn_at(3.0);
        let trace = waveform::spike(0.0, delta_i(), 20, 10, 360);
        let (volts, r) = replay(3.0, &trace);
        if ctx.telemetry {
            r.record_telemetry(&mut out.recorder);
        }
        let s = &mut out.text;
        writeln!(
            s,
            "== Figure 4: response to a wide (10-cycle, {:.1} A) current spike ==",
            delta_i()
        )
        .unwrap();
        writeln!(s, "   (300% of target impedance)\n").unwrap();
        writeln!(s, "{}", ascii_chart(&volts, 10, 72)).unwrap();
        writeln!(
            s,
            "min voltage {:.1} mV below nominal; emergency cycles: {}",
            (pdn.v_nominal() - r.min_v) * 1e3,
            r.emergency_cycles
        )
        .unwrap();
        ctx.check(r.any(), "wide spike must cross the 5% band");
        out
    }
    fn render(&self, _ctx: &Ctx, cells: &[CellResult]) -> String {
        cells[0].text.clone()
    }
}

/// Figure 5: notching a wide spike — momentarily throttling current
/// midway through a sustained burst — lets the network recover and
/// avoids the emergency. This is the waveform a dI/dt actuator carves.
pub struct Fig05NotchedSpike;

impl Scenario for Fig05NotchedSpike {
    fn id(&self) -> &'static str {
        "fig05_notched_spike"
    }
    fn title(&self) -> &'static str {
        "notched wide spike avoids the emergency"
    }
    fn runtime(&self) -> Runtime {
        Runtime::Instant
    }
    fn cells(&self, _ctx: &Ctx) -> Vec<String> {
        vec!["un-notched".into(), "notched".into()]
    }
    fn run_cell(&self, ctx: &Ctx, cell: usize) -> CellResult {
        let trace = if cell == 0 {
            waveform::spike(0.0, delta_i(), 20, 20, 360)
        } else {
            waveform::notched_spike(0.0, delta_i(), 20, 20, 7, 7, 360)
        };
        let (volts, r) = replay(3.0, &trace);
        let pdn = pdn_at(3.0);
        let mut out = CellResult::new(if cell == 0 { "un-notched" } else { "notched" });
        if ctx.telemetry {
            r.record_telemetry(&mut out.recorder);
        }
        out.value("droop_mv", (pdn.v_nominal() - r.min_v) * 1e3);
        out.value("emergency_cycles", r.emergency_cycles as f64);
        out.value("any", if r.any() { 1.0 } else { 0.0 });
        if cell == 1 {
            out.text = ascii_chart(&volts, 10, 72);
        }
        out
    }
    fn render(&self, ctx: &Ctx, cells: &[CellResult]) -> String {
        let (wide, notched) = (&cells[0], &cells[1]);
        let mut s = String::new();
        writeln!(
            s,
            "== Figure 5: notched wide spike (controller back-off mid-burst) =="
        )
        .unwrap();
        writeln!(s, "   (300% of target impedance)\n").unwrap();
        writeln!(s, "{}", notched.text).unwrap();
        writeln!(
            s,
            "un-notched 20-cycle spike: {:.1} mV droop, emergency cycles {}",
            wide.require("droop_mv"),
            wide.require("emergency_cycles") as u64
        )
        .unwrap();
        writeln!(
            s,
            "   notched 20-cycle spike: {:.1} mV droop, emergency cycles {}",
            notched.require("droop_mv"),
            notched.require("emergency_cycles") as u64
        )
        .unwrap();
        ctx.check(wide.require("any") > 0.5, "unnotched spike crosses spec");
        ctx.check(notched.require("any") < 0.5, "the notch saves it");
        s
    }
}

/// Figure 6: pulses at the package resonant frequency build up — each
/// successive pulse rides the echo of the last, producing the worst-case
/// voltage swing (the analytic target the dI/dt stressmark imitates).
pub struct Fig06ResonantTrain;

impl Scenario for Fig06ResonantTrain {
    fn id(&self) -> &'static str {
        "fig06_resonant_train"
    }
    fn title(&self) -> &'static str {
        "resonant pulse train builds worst-case swing"
    }
    fn runtime(&self) -> Runtime {
        Runtime::Instant
    }
    fn cells(&self, _ctx: &Ctx) -> Vec<String> {
        vec!["train".into()]
    }
    fn run_cell(&self, ctx: &Ctx, _cell: usize) -> CellResult {
        let mut out = CellResult::new("train");
        let pdn = pdn_at(3.0);
        let period = pdn.resonant_period_cycles();
        let trace = waveform::pulse_train(0.0, delta_i(), 10, period / 2, period, 6, 600);
        let (volts, r) = replay(3.0, &trace);
        if ctx.telemetry {
            r.record_telemetry(&mut out.recorder);
        }
        let s = &mut out.text;
        writeln!(s, "== Figure 6: pulse train at the resonant frequency ==").unwrap();
        writeln!(
            s,
            "   ({} pulses, {}-cycle period = {:.0} MHz at 3 GHz; 300% of target impedance)\n",
            6,
            period,
            3.0e9 / period as f64 / 1e6
        )
        .unwrap();
        writeln!(s, "{}", ascii_chart(&volts, 12, 72)).unwrap();

        // Per-pulse minimum: demonstrate resonance build-up.
        for pulse in 0..3 {
            let start = 10 + pulse * period;
            let end = (start + period).min(volts.len());
            let min = volts[start..end].iter().cloned().fold(f64::MAX, f64::min);
            writeln!(
                s,
                "pulse {}: min voltage {:.1} mV below nominal",
                pulse + 1,
                (pdn.v_nominal() - min) * 1e3
            )
            .unwrap();
        }
        writeln!(s, "emergency cycles: {}", r.emergency_cycles).unwrap();
        let first = volts[10..10 + period]
            .iter()
            .cloned()
            .fold(f64::MAX, f64::min);
        let second = volts[10 + period..10 + 2 * period]
            .iter()
            .cloned()
            .fold(f64::MAX, f64::min);
        ctx.check(second < first, "the second pulse digs deeper");
        ctx.check(r.any(), "resonance causes emergencies");
        out
    }
    fn render(&self, _ctx: &Ctx, cells: &[CellResult]) -> String {
        cells[0].text.clone()
    }
}
