//! The scenario registry: every table and figure of the paper plus the
//! §6 ablations, each as a [`Scenario`](crate::engine::Scenario)
//! implementation over the shared engine.
//!
//! Registry order follows the paper (figures, tables interleaved as in
//! `DESIGN.md` §4) and is the execution order of `voltctl-exp run --all`.

mod ablations;
mod stressmark;
mod suite;
mod sweeps;
mod waveforms;

use crate::engine::Scenario;

/// Every registered scenario, in paper order.
pub fn registry() -> &'static [&'static dyn Scenario] {
    static REGISTRY: &[&dyn Scenario] = &[
        &waveforms::Fig01Itrs,
        &waveforms::Fig02Response,
        &waveforms::Fig03NarrowSpike,
        &waveforms::Fig04WideSpike,
        &waveforms::Fig05NotchedSpike,
        &waveforms::Fig06ResonantTrain,
        &stressmark::Fig08Stressmark,
        &stressmark::Fig09StressmarkVsWorst,
        &suite::Fig10VoltageDistributions,
        &stressmark::Fig11ControllerTrace,
        &suite::Table2Emergencies,
        &sweeps::Table3Thresholds,
        &sweeps::Fig14SensorDelayPerf,
        &sweeps::Fig15SensorDelayEnergy,
        &sweeps::Fig16SensorError,
        &sweeps::Fig17ActuatorPerf,
        &sweeps::Fig18ActuatorEnergy,
        &ablations::AblationPid,
        &ablations::AblationGrid,
        &ablations::AblationAsymmetric,
        &ablations::AblationLadder,
    ];
    REGISTRY
}

/// Looks a scenario up by id.
pub fn find(id: &str) -> Option<&'static dyn Scenario> {
    registry().iter().copied().find(|s| s.id() == id)
}

/// The `voltctl-exp list` rows — `[id, runtime, cells, trace, title]` —
/// sorted by id for scanability. The `trace` column marks trace-aware
/// scenarios (`yes`: they accept `voltctl-exp trace` / `run --trace`).
/// The registry itself stays in paper order (the execution order of
/// `run --all`); only the listing is sorted.
pub fn listing(ctx: &crate::engine::Ctx) -> Vec<[String; 5]> {
    let mut rows: Vec<[String; 5]> = registry()
        .iter()
        .map(|s| {
            [
                s.id().to_string(),
                s.runtime().name().to_string(),
                s.cells(ctx).len().to_string(),
                if s.trace_aware() { "yes" } else { "-" }.to_string(),
                s.title().to_string(),
            ]
        })
        .collect();
    rows.sort_by(|a, b| a[0].cmp(&b[0]));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_findable() {
        let mut seen = std::collections::HashSet::new();
        for s in registry() {
            assert!(seen.insert(s.id()), "duplicate id {}", s.id());
            assert!(find(s.id()).is_some());
            assert!(!s.title().is_empty(), "{} needs a title", s.id());
        }
        assert_eq!(registry().len(), 21);
        assert!(find("not_a_scenario").is_none());
    }

    #[test]
    fn trace_aware_scenarios_are_marked() {
        let traced: Vec<&str> = registry()
            .iter()
            .filter(|s| s.trace_aware())
            .map(|s| s.id())
            .collect();
        assert_eq!(
            traced,
            [
                "fig08_stressmark",
                "fig10_voltage_distributions",
                "fig11_controller_trace"
            ]
        );
        let listing = listing(&crate::engine::Ctx::default());
        for row in &listing {
            let expected = if traced.contains(&row[0].as_str()) {
                "yes"
            } else {
                "-"
            };
            assert_eq!(row[3], expected, "{} trace column", row[0]);
        }
    }

    #[test]
    fn grids_are_nonempty() {
        let ctx = crate::engine::Ctx::default();
        for s in registry() {
            assert!(!s.cells(&ctx).is_empty(), "{} has an empty grid", s.id());
        }
    }
}
