//! Suite-wide uncontrolled characterizations (Table 2 and Figure 10):
//! one grid cell per SPEC2000 benchmark plus the stressmark, so the
//! expensive per-workload current traces fan out across workers.
//!
//! Benchmarks appear in the canonical suite order documented on
//! [`spec::names`] — the grid is built from [`spec::by_index`], so the
//! report order is stable by construction regardless of worker count.

use std::fmt::Write as _;
use voltctl_core::{replay_current_trace, replay_current_trace_traced};
use voltctl_pdn::VoltageHistogram;
use voltctl_trace::FlightRecorder;
use voltctl_workloads::{spec, Workload};

use crate::engine::{CellResult, Ctx, Runtime, Scenario};
use crate::harness::{current_trace, pdn_at, tuned_stressmark};
use crate::report::TextTable;

/// The grid shared by both suite scenarios: the 26 benchmarks in suite
/// order, then the stressmark.
fn suite_cells() -> Vec<String> {
    let mut labels: Vec<String> = spec::names().iter().map(|n| n.to_string()).collect();
    labels.push(tuned_stressmark().name);
    labels
}

/// The workload for a grid index (suite order, stressmark last).
fn suite_workload(cell: usize) -> Workload {
    if cell < spec::SUITE_LEN {
        spec::by_index(cell)
    } else {
        tuned_stressmark()
    }
}

/// Table 2: voltage emergencies across SPEC2000 at 100%–400% of target
/// impedance.
///
/// Each benchmark's uncontrolled current trace is recorded once on the
/// cycle-level simulator, then replayed through the supply network at
/// each impedance (the trace does not depend on the network). Shape
/// targets: zero emergencies at 100% (by calibration) and at 200%; a
/// marginal benchmark count at 300%; many benchmarks with rare
/// emergencies at 400%. The stressmark, by contrast, crosses already at
/// 200%.
pub struct Table2Emergencies;

const PERCENTS: [f64; 4] = [1.0, 2.0, 3.0, 4.0];

impl Scenario for Table2Emergencies {
    fn id(&self) -> &'static str {
        "table2_emergencies"
    }
    fn title(&self) -> &'static str {
        "SPEC2000 emergencies at 100%-400% impedance"
    }
    fn runtime(&self) -> Runtime {
        Runtime::Minutes
    }
    fn cells(&self, _ctx: &Ctx) -> Vec<String> {
        suite_cells()
    }
    fn run_cell(&self, ctx: &Ctx, cell: usize) -> CellResult {
        let wl = suite_workload(cell);
        let full = ctx.budget(300_000) as usize;
        // The stressmark's severity saturates quickly; the paper's prose
        // line needs far fewer cycles than the suite table.
        let cycles = if cell < spec::SUITE_LEN {
            full
        } else {
            full.min(ctx.budget(120_000) as usize)
        };
        let trace = current_trace(&wl, cycles);
        let mut out = CellResult::new(wl.name.clone());
        out.row.push(wl.name.clone());
        for (k, &percent) in PERCENTS.iter().enumerate() {
            let replay = replay_current_trace(&pdn_at(percent), &trace, false);
            let r = &replay.report;
            if ctx.telemetry {
                r.record_telemetry(&mut out.recorder);
            }
            out.value(FREQ_KEYS[k], r.frequency());
            out.row.push(format!("{:.5}%", r.frequency() * 100.0));
        }
        out
    }
    fn render(&self, ctx: &Ctx, cells: &[CellResult]) -> String {
        let cycles = ctx.budget(300_000) as usize;
        let suite = &cells[..spec::SUITE_LEN];
        let stress = &cells[spec::SUITE_LEN];

        let mut s = String::new();
        writeln!(s, "== Table 2: voltage emergencies on SPEC2000 ==").unwrap();
        writeln!(
            s,
            "   ({cycles} cycles per benchmark; emergencies = cycles beyond +/-5%)\n"
        )
        .unwrap();

        let mut with_emergencies = [0usize; 4];
        let mut freq_sum = [0.0f64; 4];
        let mut freq_max = [0.0f64; 4];
        let mut per_bench = TextTable::new(["benchmark", "100%", "200%", "300%", "400%"]);
        for c in suite {
            for (k, key) in FREQ_KEYS.iter().enumerate() {
                let freq = c.require(key);
                if freq > 0.0 {
                    with_emergencies[k] += 1;
                }
                freq_sum[k] += freq;
                freq_max[k] = freq_max[k].max(freq);
            }
            per_bench.row(c.row.clone());
        }

        let mut t = TextTable::new(["", "100%", "200%", "300%", "400%"]);
        t.row(
            std::iter::once("benchmarks w/ emergencies".to_string())
                .chain(with_emergencies.iter().map(|c| c.to_string())),
        );
        t.row(
            std::iter::once("emergency freq (average)".to_string()).chain(
                freq_sum
                    .iter()
                    .map(|x| format!("{:.5}%", x / suite.len() as f64 * 100.0)),
            ),
        );
        t.row(
            std::iter::once("emergency freq (maximum)".to_string())
                .chain(freq_max.iter().map(|m| format!("{:.5}%", m * 100.0))),
        );
        writeln!(s, "{}", t.render()).unwrap();

        // The stressmark row the paper notes in prose.
        s.push_str("stressmark emergency frequency:");
        for (k, key) in FREQ_KEYS.iter().enumerate() {
            write!(
                s,
                "  {}%: {:.3}%",
                (PERCENTS[k] * 100.0) as u32,
                stress.require(key) * 100.0
            )
            .unwrap();
        }
        writeln!(s, "\n\nper-benchmark emergency frequencies:").unwrap();
        writeln!(s, "{}", per_bench.render()).unwrap();
        s
    }
}

const FREQ_KEYS: [&str; 4] = ["freq_100", "freq_200", "freq_300", "freq_400"];

/// Figure 10: voltage distributions across SPEC2000 (plus the
/// stressmark) at 100% of target impedance.
///
/// At the target impedance no benchmark leaves specification (Table 2's
/// leftmost column), but the *width* of each distribution varies wildly:
/// ammp is famously stable, galgel and swim spread across the band.
pub struct Fig10VoltageDistributions;

impl Scenario for Fig10VoltageDistributions {
    fn id(&self) -> &'static str {
        "fig10_voltage_distributions"
    }
    fn title(&self) -> &'static str {
        "SPEC2000 voltage distributions at 100% impedance"
    }
    fn trace_aware(&self) -> bool {
        true
    }
    fn runtime(&self) -> Runtime {
        Runtime::Minutes
    }
    fn cells(&self, _ctx: &Ctx) -> Vec<String> {
        suite_cells()
    }
    fn run_cell(&self, ctx: &Ctx, cell: usize) -> CellResult {
        let wl = suite_workload(cell);
        let cycles = ctx.budget(200_000) as usize;
        let trace = current_trace(&wl, cycles);
        let mut out = CellResult::new(wl.name.clone());
        let replay = if let Some(spec) = ctx.trace {
            // Replays are trace-aware: at 100% impedance crossings are
            // rare (that's Table 2's point), so most cells contribute
            // cycle counts but no captures.
            let (replay, tracer) = replay_current_trace_traced(
                &pdn_at(1.0),
                &trace,
                true,
                FlightRecorder::new(spec.window),
            );
            out.tracer = tracer;
            replay
        } else {
            replay_current_trace(&pdn_at(1.0), &trace, true)
        };
        let r = &replay.report;
        let hist = replay.histogram.as_ref().expect("histogram requested");
        if ctx.telemetry {
            // Suite-wide aggregate: histograms merge bin-wise, reports sum.
            r.record_telemetry(&mut out.recorder);
            hist.record_telemetry(&mut out.recorder, "pdn.voltage_hist");
        }
        out.row = vec![
            wl.name.clone(),
            format!("{:.4}", r.min_v),
            format!("{:.4}", r.max_v),
            format!("{:.2}", hist.spread() * 1e3),
            r.emergency_cycles.to_string(),
            format!("[{}]", sparkline(hist)),
        ];
        out
    }
    fn render(&self, ctx: &Ctx, cells: &[CellResult]) -> String {
        let cycles = ctx.budget(200_000) as usize;
        let mut s = String::new();
        writeln!(
            s,
            "== Figure 10: voltage distributions at 100% of target impedance =="
        )
        .unwrap();
        writeln!(
            s,
            "   ({cycles} cycles per benchmark; sparkline spans 0.90 V .. 1.10 V)\n"
        )
        .unwrap();
        let mut t = TextTable::new([
            "benchmark",
            "min (V)",
            "max (V)",
            "spread (mV)",
            "emerg",
            "0.90V [distribution] 1.10V",
        ]);
        for c in cells {
            t.row(c.row.clone());
        }
        writeln!(s, "{}", t.render()).unwrap();
        writeln!(
            s,
            "(spread = standard deviation of the distribution; paper highlights"
        )
        .unwrap();
        writeln!(s, " ammp as exceptionally stable and galgel/swim as wide)").unwrap();
        s
    }
}

/// Collapses a 100-bin voltage histogram into a 25-character density
/// sparkline.
fn sparkline(hist: &VoltageHistogram) -> String {
    let counts = hist.counts();
    let glyphs = [' ', '.', ':', '+', '*', '#'];
    let bucket = counts.len() / 25;
    let maxc = counts.iter().copied().max().unwrap_or(1).max(1);
    (0..25)
        .map(|b| {
            let sum: u64 = counts[b * bucket..(b + 1) * bucket].iter().sum();
            let mean = sum / bucket as u64;
            let idx = ((mean as f64 / maxc as f64) * (glyphs.len() - 1) as f64).ceil() as usize;
            glyphs[idx.min(glyphs.len() - 1)]
        })
        .collect()
}
