//! §4 stressmark figures: the auto-tuned dI/dt loop (Figure 8), its
//! swing against the analytic worst case (Figure 9), and the threshold
//! controller acting on it (Figure 11).

use std::fmt::Write as _;
use voltctl_core::prelude::*;
use voltctl_pdn::waveform;
use voltctl_telemetry::{export, MemoryRecorder};
use voltctl_trace::FlightRecorder;
use voltctl_workloads::stressmark;

use crate::engine::{CellResult, Ctx, Runtime, Scenario};
use crate::harness::{
    cpu_config, current_trace, delta_i, pdn_at, power_model, solve_for, tuned_stressmark,
};
use crate::report::ascii_chart;

/// Figure 8: the generated dI/dt stressmark loop body.
///
/// Trace-aware: under `--trace` the grid gains two extra cells that run
/// the tuned stressmark closed-loop — uncontrolled and under the
/// FU/DL1/IL1 threshold controller — with the flight recorder attached.
/// The report only uses the listing cell, so the rendered output (and
/// its golden snapshot) is identical with or without tracing.
pub struct Fig08Stressmark;

impl Fig08Stressmark {
    /// Runs the tuned stressmark with a flight recorder attached;
    /// `controlled` adds the paper's FU/DL1/IL1 threshold controller.
    fn traced_cell(&self, ctx: &Ctx, controlled: bool) -> CellResult {
        let label = if controlled {
            "controlled"
        } else {
            "uncontrolled"
        };
        let mut out = CellResult::new(label);
        let window = ctx
            .trace
            .map(|t| t.window)
            .unwrap_or(voltctl_trace::DEFAULT_WINDOW);
        out.tracer = FlightRecorder::new(window);

        let stress = tuned_stressmark();
        // The stressmark's resonance needs ~7k cycles from cold start
        // before the supply first leaves the band; smoke budgets would
        // stop short of any capture, so trace cells keep a floor that
        // guarantees the uncontrolled run records at least one.
        let cycles = (ctx.warmup(stress.warmup_cycles) + ctx.budget(6_000)).max(9_000);
        let builder = ControlLoop::builder(stress.program.clone())
            .power(power_model())
            .pdn(pdn_at(2.0))
            .tracer(&mut out.tracer);
        let builder = if controlled {
            let scope = ActuationScope::FuDl1Il1;
            let delay = 2;
            builder
                .thresholds(solve_for(scope, delay, 2.0).expect("stable configuration"))
                .scope(scope)
                .sensor(SensorConfig {
                    delay_cycles: delay,
                    noise_mv: 0.0,
                    seed: 1,
                })
        } else {
            builder
        };
        let mut sim = builder.build().expect("loop builds");
        sim.run(cycles);
        out
    }
}

impl Scenario for Fig08Stressmark {
    fn id(&self) -> &'static str {
        "fig08_stressmark"
    }
    fn title(&self) -> &'static str {
        "auto-tuned dI/dt stressmark listing"
    }
    fn trace_aware(&self) -> bool {
        true
    }
    fn cells(&self, ctx: &Ctx) -> Vec<String> {
        let mut cells = vec!["listing".to_string()];
        if ctx.trace.is_some() {
            cells.push("uncontrolled".into());
            cells.push("controlled".into());
        }
        cells
    }
    fn run_cell(&self, ctx: &Ctx, cell: usize) -> CellResult {
        if cell > 0 {
            return self.traced_cell(ctx, cell == 2);
        }
        let mut out = CellResult::new("listing");
        let config = cpu_config();
        let power = power_model();
        let period = pdn_at(2.0).resonant_period_cycles();
        let (params, wl) = stressmark::tune(period, &config, &power);

        let s = &mut out.text;
        writeln!(s, "== Figure 8: dI/dt stressmark (auto-tuned) ==\n").unwrap();
        writeln!(
            s,
            "target period: {period} cycles ({:.0} MHz at 3 GHz)",
            3.0e9 / period as f64 / 1e6
        )
        .unwrap();
        writeln!(
            s,
            "tuned parameters: divide chain {}, burst ops {}\n",
            params.divide_chain, params.burst_ops
        )
        .unwrap();

        let listing = voltctl_isa::asm::disassemble(&wl.program);
        let lines: Vec<&str> = listing.lines().collect();
        // Head of the loop (through the cmov handoff) plus the closing ops.
        for line in lines.iter().take(14) {
            writeln!(s, "{line}").unwrap();
        }
        writeln!(
            s,
            "    ; ... {} burst instructions elided ...",
            params.burst_ops.saturating_sub(12)
        )
        .unwrap();
        for line in lines.iter().rev().take(4).collect::<Vec<_>>().iter().rev() {
            writeln!(s, "{line}").unwrap();
        }
        writeln!(s, "\ntotal loop body: {} instructions", wl.program.len()).unwrap();
        out
    }
    fn render(&self, _ctx: &Ctx, cells: &[CellResult]) -> String {
        cells[0].text.clone()
    }
}

/// Figure 9: the software stressmark vs the analytic worst case.
pub struct Fig09StressmarkVsWorst;

impl Scenario for Fig09StressmarkVsWorst {
    fn id(&self) -> &'static str {
        "fig09_stressmark_vs_worst"
    }
    fn title(&self) -> &'static str {
        "stressmark swing vs analytic worst case"
    }
    fn cells(&self, _ctx: &Ctx) -> Vec<String> {
        vec!["analytic worst case".into(), "stressmark".into()]
    }
    fn run_cell(&self, ctx: &Ctx, cell: usize) -> CellResult {
        let pdn = pdn_at(2.0);
        let cycles = ctx.budget(60_000) as usize;
        let max_dev = |volts: &[f64]| {
            volts
                .iter()
                .map(|v| (v - pdn.v_nominal()).abs())
                .fold(0.0f64, f64::max)
        };
        if cell == 0 {
            // Analytic worst case: full-swing square train at resonance.
            let period = pdn.resonant_period_cycles();
            let train = waveform::square_wave(0.0, delta_i(), period, cycles);
            let mut state = pdn.discretize();
            let volts = state.run(&train);
            let mut out = CellResult::new("analytic worst case");
            out.value("dev_v", max_dev(&volts));
            out
        } else {
            // The stressmark, measured on the real pipeline.
            let stress = tuned_stressmark();
            let trace = current_trace(&stress, cycles);
            let swing = waveform::stats(&trace).expect("nonempty trace");
            let mut state = pdn.discretize();
            state.set_reference_current(trace.iter().cloned().fold(f64::MAX, f64::min));
            let volts = state.run(&trace);
            let mut out = CellResult::new("stressmark");
            out.value("dev_v", max_dev(&volts));
            out.value("i_min", swing.min);
            out.value("i_max", swing.max);
            out
        }
    }
    fn render(&self, ctx: &Ctx, cells: &[CellResult]) -> String {
        let pdn = pdn_at(2.0);
        let cycles = ctx.budget(60_000) as usize;
        let ideal_dev = cells[0].require("dev_v");
        let stress_dev = cells[1].require("dev_v");
        let (i_min, i_max) = (cells[1].require("i_min"), cells[1].require("i_max"));

        let mut s = String::new();
        writeln!(
            s,
            "== Figure 9: stressmark vs maximum-height resonant pulse train =="
        )
        .unwrap();
        writeln!(
            s,
            "   (200% of target impedance, {cycles} measured cycles)\n"
        )
        .unwrap();
        writeln!(
            s,
            "analytic worst case: swing {:.1} A, max |dV| {:.1} mV",
            delta_i(),
            ideal_dev * 1e3
        )
        .unwrap();
        writeln!(
            s,
            "stressmark:          swing {:.1} A (min {:.1} / max {:.1}), max |dV| {:.1} mV",
            i_max - i_min,
            i_min,
            i_max,
            stress_dev * 1e3
        )
        .unwrap();
        writeln!(
            s,
            "\nstressmark achieves {:.0}% of the theoretical worst-case swing",
            100.0 * stress_dev / ideal_dev
        )
        .unwrap();
        ctx.check(
            stress_dev < ideal_dev,
            "software cannot beat the analytic bound",
        );
        ctx.check(
            stress_dev > 0.4 * ideal_dev,
            "but it must be severe enough to stress the controller",
        );
        let tol = pdn.tolerance_volts();
        writeln!(
            s,
            "emergency threshold is {:.0} mV: stressmark {} it at this impedance",
            tol * 1e3,
            if stress_dev > tol {
                "CROSSES"
            } else {
                "stays within"
            }
        )
        .unwrap();
        s
    }
}

/// Figure 11: a threshold controller in action on the stressmark.
pub struct Fig11ControllerTrace;

impl Scenario for Fig11ControllerTrace {
    fn id(&self) -> &'static str {
        "fig11_controller_trace"
    }
    fn title(&self) -> &'static str {
        "threshold controller trace on the stressmark"
    }
    fn trace_aware(&self) -> bool {
        true
    }
    fn runtime(&self) -> Runtime {
        Runtime::Seconds
    }
    fn cells(&self, _ctx: &Ctx) -> Vec<String> {
        vec!["trace".into()]
    }
    fn run_cell(&self, ctx: &Ctx, _cell: usize) -> CellResult {
        let mut out = CellResult::new("trace");
        let scope = ActuationScope::FuDl1Il1;
        let delay = 2;
        let thresholds = solve_for(scope, delay, 2.0).expect("stable configuration");
        let stress = tuned_stressmark();
        if let Some(spec) = ctx.trace {
            out.tracer = FlightRecorder::new(spec.window);
        }

        let mut sim = ControlLoop::builder(stress.program.clone())
            .power(power_model())
            .pdn(pdn_at(2.0))
            .thresholds(thresholds)
            .scope(scope)
            .sensor(SensorConfig {
                delay_cycles: delay,
                noise_mv: 0.0,
                seed: 1,
            })
            .record_trace(true)
            .recorder(MemoryRecorder::new())
            .tracer(&mut out.tracer)
            .build()
            .expect("loop builds");
        sim.run(ctx.warmup(stress.warmup_cycles) + ctx.budget(6_000));
        sim.finish_telemetry();
        let trace = sim.take_trace();
        let report = sim.report();
        if ctx.telemetry {
            out.recorder.merge(sim.recorder());
            // This figure is about the per-cycle trace, so export it whole.
            let rows = trace.iter().enumerate().map(|(k, s)| {
                vec![
                    k as f64,
                    s.voltage,
                    s.current,
                    if s.reducing { 1.0 } else { 0.0 },
                    if s.increasing { 1.0 } else { 0.0 },
                ]
            });
            match export::write_trace_csv(
                &ctx.telemetry_out,
                "fig11_controller_trace",
                "trace",
                &["cycle", "voltage_v", "current_a", "reducing", "increasing"],
                rows,
            ) {
                Ok(path) => eprintln!("telemetry trace: {}", path.display()),
                Err(e) => eprintln!("voltctl[warn] telemetry.export: trace write failed: {e}"),
            }
        }

        let s = &mut out.text;
        writeln!(s, "== Figure 11: threshold controller in action ==").unwrap();
        writeln!(
            s,
            "   (stressmark, 200% impedance, {} actuator, sensor delay {delay}, thresholds [{:.3}, {:.3}])\n",
            scope.name(),
            thresholds.v_low,
            thresholds.v_high
        )
        .unwrap();

        // Show a 300-cycle window that contains actuation.
        let start = trace
            .iter()
            .position(|st| st.reducing)
            .map(|p| p.saturating_sub(60))
            .unwrap_or(0);
        let window: Vec<_> = trace[start..(start + 300).min(trace.len())].to_vec();
        let volts: Vec<f64> = window.iter().map(|st| st.voltage).collect();
        let amps: Vec<f64> = window.iter().map(|st| st.current).collect();
        writeln!(s, "-- supply voltage (V), 300 cycles --").unwrap();
        writeln!(s, "{}", ascii_chart(&volts, 10, 75)).unwrap();
        writeln!(s, "-- load current (A), same window --").unwrap();
        writeln!(s, "{}", ascii_chart(&amps, 8, 75)).unwrap();
        let gate_marks: String = window
            .iter()
            .step_by(4)
            .map(|st| {
                if st.reducing {
                    'G'
                } else if st.increasing {
                    'F'
                } else {
                    '.'
                }
            })
            .collect();
        writeln!(
            s,
            "actuation (per 4 cycles, G=gated F=fired): {gate_marks}\n"
        )
        .unwrap();

        writeln!(
            s,
            "run summary: {} interventions, {} gated cycles, {} fired cycles, {} emergency cycles",
            report.interventions,
            report.reduce_cycles,
            report.increase_cycles,
            report.emergencies.emergency_cycles
        )
        .unwrap();
        ctx.check(
            report.interventions > 0,
            "controller must act on the stressmark",
        );
        out
    }
    fn render(&self, _ctx: &Ctx, cells: &[CellResult]) -> String {
        cells[0].text.clone()
    }
}
