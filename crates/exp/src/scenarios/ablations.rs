//! §6 ablations: PID vs threshold control, the 2x2-quadrant PDN grid,
//! asymmetric actuation, and the ladder-network cross-validation.

use std::collections::VecDeque;
use std::fmt::Write as _;
use voltctl_core::pid::PidController;
use voltctl_core::prelude::*;
use voltctl_cpu::Cpu;
use voltctl_pdn::grid::GridPdn;
use voltctl_pdn::ladder::LadderModel;
use voltctl_pdn::{waveform, VoltageMonitor};
use voltctl_power::EnergyAccumulator;

use crate::engine::{CellResult, Ctx, Runtime, Scenario};
use crate::harness::{
    cpu_config, delta_i, evaluate, pdn_at, power_model, solve_for, tuned_stressmark,
};
use crate::report::{pct, TextTable};

/// Ablation (paper §6): PID control vs threshold control.
///
/// The paper considered and rejected PID controllers for dI/dt: they
/// need magnitude voltage readings and a multiply-accumulate pipeline,
/// adding latency exactly where none is affordable. This ablation runs
/// a PID-actuated loop against the threshold controller on the
/// stressmark and reports emergencies and performance as the PID's
/// compute latency grows.
pub struct AblationPid;

const PID_DELAYS: [u32; 5] = [0, 1, 2, 3, 4];

/// A hand-rolled PID closed loop (the threshold loop lives in
/// `voltctl_core::loopsim`; PID needs magnitude readings, so it gets its
/// own wiring here).
fn run_pid(ctx: &Ctx, compute_delay: u32, cycles: u64) -> (f64, u64, f64) {
    let stress = tuned_stressmark();
    let power = power_model();
    let pdn = pdn_at(2.0);
    let scope = ActuationScope::FuDl1Il1;
    let mut cpu = Cpu::new(cpu_config(), &stress.program).expect("valid config");
    let mut state = pdn.discretize();
    state.set_reference_current(power.min_current());
    let mut pid = PidController::default_tuning(pdn.v_nominal(), compute_delay);
    let mut monitor = VoltageMonitor::new(pdn.v_nominal(), pdn.tolerance());
    let mut energy = EnergyAccumulator::new(pdn.clock_hz());
    // Sensor transport delay of 1 cycle on top of the PID compute delay.
    let mut transport: VecDeque<f64> = VecDeque::from(vec![pdn.v_nominal()]);

    for _ in 0..ctx.warmup(stress.warmup_cycles) + cycles {
        let gating = cpu.gating();
        let act = cpu.step();
        let watts = power.cycle_power(&act, &gating).total();
        let v = state.step(watts / power.params().vdd);
        monitor.observe(v);
        energy.add_cycle(watts);
        transport.push_back(v);
        let seen = transport.pop_front().expect("transport primed");
        let action = pid.decide(seen);
        scope.apply(action, cpu.gating_mut());
    }
    let ipc = cpu.stats().ipc();
    (ipc, monitor.report().emergency_cycles, energy.joules())
}

impl Scenario for AblationPid {
    fn id(&self) -> &'static str {
        "ablation_pid"
    }
    fn title(&self) -> &'static str {
        "PID vs threshold control on the stressmark"
    }
    fn runtime(&self) -> Runtime {
        Runtime::Seconds
    }
    fn cells(&self, _ctx: &Ctx) -> Vec<String> {
        let mut labels = vec!["threshold (delay 1)".to_string()];
        labels.extend(PID_DELAYS.iter().map(|d| format!("PID (+{d} MAC cycles)")));
        labels
    }
    fn run_cell(&self, ctx: &Ctx, cell: usize) -> CellResult {
        let cycles = ctx.budget(120_000);
        if cell == 0 {
            // Threshold baseline at sensor delay 1 (comparable transport).
            let thresholds = solve_for(ActuationScope::FuDl1Il1, 1, 2.0).expect("stable");
            let stress = tuned_stressmark();
            let mut out = CellResult::new("threshold (delay 1)");
            let mut telem = ctx.telemetry.then(voltctl_telemetry::MemoryRecorder::new);
            let eval = evaluate(
                &stress,
                ActuationScope::FuDl1Il1,
                thresholds,
                SensorConfig {
                    delay_cycles: 1,
                    noise_mv: 0.0,
                    seed: 1,
                },
                2.0,
                ctx.warmup(stress.warmup_cycles),
                cycles,
                telem.as_mut(),
            )
            .expect("threshold eval runs");
            out.recorder = telem.unwrap_or_default();
            out.value("base_ipc", eval.baseline.ipc);
            out.row = vec![
                "threshold (delay 1)".to_string(),
                eval.controlled.emergencies.emergency_cycles.to_string(),
                pct(eval.perf_loss()),
            ];
            out
        } else {
            let compute_delay = PID_DELAYS[cell - 1];
            let (ipc, emergencies, _) = run_pid(ctx, compute_delay, cycles);
            let mut out = CellResult::new(format!("PID (+{compute_delay} MAC cycles)"));
            out.value("ipc", ipc);
            out.value("emergencies", emergencies as f64);
            out
        }
    }
    fn render(&self, _ctx: &Ctx, cells: &[CellResult]) -> String {
        let mut s = String::new();
        writeln!(
            s,
            "== Ablation: PID vs threshold control (stressmark, 200% impedance) ==\n"
        )
        .unwrap();
        let mut t = TextTable::new([
            "controller",
            "emergency cycles",
            "perf loss vs uncontrolled",
        ]);
        t.row(cells[0].row.clone());
        let base_ipc = cells[0].require("base_ipc");
        for c in &cells[1..] {
            t.row([
                c.label.clone(),
                (c.require("emergencies") as u64).to_string(),
                pct(1.0 - c.require("ipc") / base_ipc),
            ]);
        }
        writeln!(s, "{}", t.render()).unwrap();
        writeln!(
            s,
            "(the paper's §6 argument: a PID needs magnitude voltage readings and a"
        )
        .unwrap();
        writeln!(
            s,
            " multiply-accumulate pipeline, and its output still has to be quantized"
        )
        .unwrap();
        writeln!(
            s,
            " into gate/none/fire — here it protects only at several times the"
        )
        .unwrap();
        writeln!(
            s,
            " threshold controller's performance cost, at every compute latency)"
        )
        .unwrap();
        s
    }
}

/// Ablation (paper §6 future work): localized, per-quadrant dI/dt.
///
/// A global (lumped) PDN model averages the chip's current over the
/// die; a quadrant whose local units burst can droop its own supply
/// harder than the chip-wide model predicts. This experiment drives the
/// 2x2 grid extension with a burst concentrated in one quadrant and
/// compares worst-quadrant droop against the global model.
pub struct AblationGrid;

const GRID_SHARES: [(&str, f64); 3] = [
    ("uniform across quadrants", 0.25),
    ("60% in one quadrant", 0.6),
    ("90% in one quadrant", 0.9),
];

impl Scenario for AblationGrid {
    fn id(&self) -> &'static str {
        "ablation_grid"
    }
    fn title(&self) -> &'static str {
        "localized 2x2-quadrant vs global PDN model"
    }
    fn runtime(&self) -> Runtime {
        Runtime::Instant
    }
    fn cells(&self, _ctx: &Ctx) -> Vec<String> {
        let mut labels = vec!["global lumped model".to_string()];
        labels.extend(GRID_SHARES.iter().map(|(l, _)| l.to_string()));
        labels
    }
    fn run_cell(&self, _ctx: &Ctx, cell: usize) -> CellResult {
        let pdn = pdn_at(2.0);
        let period = pdn.resonant_period_cycles();
        let train = waveform::square_wave(0.0, delta_i(), period, 20 * period);
        if cell == 0 {
            // Global model: the whole swing spread over the lumped network.
            let mut global = pdn.discretize();
            let mut min_v = f64::MAX;
            for &i in &train {
                min_v = min_v.min(global.step(i));
            }
            let mut out = CellResult::new("global lumped model");
            out.value("min_v", min_v);
            out
        } else {
            let (label, share) = GRID_SHARES[cell - 1];
            let mut grid = GridPdn::new(&pdn, 2.0e-3);
            let mut min_v = f64::MAX;
            for &i in &train {
                let rest = i * (1.0 - share) / 3.0;
                let v = grid.step([i * share, rest, rest, rest]);
                min_v = min_v.min(v.iter().cloned().fold(f64::MAX, f64::min));
            }
            let mut out = CellResult::new(label);
            out.value("min_v", min_v);
            out
        }
    }
    fn render(&self, _ctx: &Ctx, cells: &[CellResult]) -> String {
        let pdn = pdn_at(2.0);
        let global_min = cells[0].require("min_v");
        let mut s = String::new();
        writeln!(
            s,
            "== Ablation: localized (2x2-quadrant) vs global PDN model =="
        )
        .unwrap();
        writeln!(
            s,
            "   (resonant square train, total swing {:.1} A, 200% impedance)\n",
            delta_i()
        )
        .unwrap();
        let mut t = TextTable::new(["scenario", "worst local droop (mV)", "vs global (mV)"]);
        t.row([
            "global lumped model".to_string(),
            format!("{:.1}", (pdn.v_nominal() - global_min) * 1e3),
            "-".to_string(),
        ]);
        for c in &cells[1..] {
            let min_v = c.require("min_v");
            t.row([
                c.label.clone(),
                format!("{:.1}", (pdn.v_nominal() - min_v) * 1e3),
                format!("{:+.1}", (global_min - min_v) * 1e3),
            ]);
        }
        writeln!(s, "{}", t.render()).unwrap();
        writeln!(
            s,
            "(localized bursts droop the afflicted quadrant harder than any global"
        )
        .unwrap();
        writeln!(
            s,
            " model can see — the paper's motivation for future per-quadrant control)"
        )
        .unwrap();
        s
    }
}

/// Ablation (paper §6): asymmetric actuation.
///
/// The paper suggests exploiting the asymmetry between the two
/// responses: clock-gating is cheap on any unit, but phantom-firing a
/// cache burns real array energy for no work. This experiment compares
/// symmetric FU/DL1/IL1 actuation against an asymmetric actuator that
/// gates FU/DL1/IL1 on undershoot but fires only the functional units
/// on overshoot, on a workload with genuine overshoot events (the
/// stressmark at elevated impedance, where gating rebounds cross the
/// high threshold).
pub struct AblationAsymmetric;

fn asymmetric_candidates() -> [(&'static str, AsymmetricActuator); 3] {
    [
        (
            "symmetric FU/DL1/IL1",
            AsymmetricActuator::symmetric(ActuationScope::FuDl1Il1),
        ),
        (
            "gate FU/DL1/IL1, fire FU",
            AsymmetricActuator {
                reduce: ActuationScope::FuDl1Il1,
                increase: ActuationScope::Fu,
            },
        ),
        (
            "gate FU/DL1/IL1, fire FU/DL1",
            AsymmetricActuator {
                reduce: ActuationScope::FuDl1Il1,
                increase: ActuationScope::FuDl1,
            },
        ),
    ]
}

fn run_asymmetric(
    ctx: &Ctx,
    actuator: AsymmetricActuator,
    thresholds: Thresholds,
    cycles: u64,
) -> (LoopReport, LoopReport) {
    let stress = tuned_stressmark();
    let power = power_model();
    let pdn = pdn_at(3.0);
    let warmup = ctx.warmup(stress.warmup_cycles);
    let mut baseline = ControlLoop::builder(stress.program.clone())
        .power(power.clone())
        .pdn(pdn.clone())
        .build()
        .expect("baseline builds");
    baseline.run(warmup + cycles);

    let mut controlled = ControlLoop::builder(stress.program.clone())
        .power(power)
        .pdn(pdn)
        .thresholds(thresholds)
        .actuator(actuator)
        .sensor(SensorConfig {
            delay_cycles: 1,
            noise_mv: 0.0,
            seed: 5,
        })
        .build()
        .expect("controlled builds");
    controlled.run(warmup + cycles);
    (baseline.report(), controlled.report())
}

impl Scenario for AblationAsymmetric {
    fn id(&self) -> &'static str {
        "ablation_asymmetric"
    }
    fn title(&self) -> &'static str {
        "asymmetric gate/fire actuation scopes"
    }
    fn runtime(&self) -> Runtime {
        Runtime::Seconds
    }
    fn cells(&self, _ctx: &Ctx) -> Vec<String> {
        asymmetric_candidates()
            .iter()
            .map(|(l, _)| l.to_string())
            .collect()
    }
    fn run_cell(&self, ctx: &Ctx, cell: usize) -> CellResult {
        let cycles = ctx.budget(120_000);
        let (label, actuator) = asymmetric_candidates()[cell];
        let power = power_model();
        let pdn = pdn_at(3.0);
        let mut out = CellResult::new(label);
        // Solve thresholds against the weakest side of the candidate.
        let setup = SolveSetup::new(
            &pdn,
            power.min_current(),
            power.achievable_peak_current(),
            actuator.leverage(&power),
            1,
        );
        let Ok(solved) = solve_thresholds(&setup) else {
            out.row = vec![
                label.into(),
                "UNSTABLE".to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
            ];
            return out;
        };
        // The solved high threshold is unconstrained (1.05 V) in this
        // plant; deploy a symmetric window instead, as a designer guarding
        // high-side margins (oxide stress, aging) would — this is what
        // makes the overshoot response fire at all.
        let thresholds = Thresholds {
            v_low: solved.v_low,
            v_high: 2.0 - solved.v_low,
        };
        let (base, ctrl) = run_asymmetric(ctx, actuator, thresholds, cycles);
        if ctx.telemetry {
            ctrl.emergencies.record_telemetry(&mut out.recorder);
        }
        let perf = 1.0 - ctrl.ipc / base.ipc;
        let energy = (ctrl.energy_joules / ctrl.committed.max(1) as f64)
            / (base.energy_joules / base.committed.max(1) as f64)
            - 1.0;
        out.row = vec![
            label.to_string(),
            ctrl.emergencies.emergency_cycles.to_string(),
            pct(perf),
            pct(energy),
            ctrl.increase_cycles.to_string(),
        ];
        out
    }
    fn render(&self, _ctx: &Ctx, cells: &[CellResult]) -> String {
        let mut s = String::new();
        writeln!(
            s,
            "== Ablation: asymmetric actuation (stressmark, 300% impedance) ==\n"
        )
        .unwrap();
        let mut t = TextTable::new([
            "actuator",
            "emergencies",
            "perf loss",
            "energy increase",
            "fired cycles",
        ]);
        for c in cells {
            t.row(c.row.clone());
        }
        writeln!(s, "{}", t.render()).unwrap();
        writeln!(
            s,
            "(firing a smaller scope on overshoot spends less phantom energy while"
        )
        .unwrap();
        writeln!(
            s,
            " the coarse gating scope still guarantees the undershoot response)"
        )
        .unwrap();
        s
    }
}

/// Ablation (paper §6): validating the second-order abstraction against
/// a detailed multi-stage ladder network.
///
/// The paper models the supply with a second-order system and
/// acknowledges that packaging engineers use far more detailed circuit
/// models, calling cross-level validation "important long-term". This
/// experiment runs the paper's characteristic current inputs through
/// both a three-stage ladder (board bulk caps → package → die) and the
/// second-order model fitted to the ladder's mid-frequency peak, then
/// checks that thresholds solved on the *abstraction* still protect the
/// *detailed* plant.
pub struct AblationLadder;

impl Scenario for AblationLadder {
    fn id(&self) -> &'static str {
        "ablation_ladder"
    }
    fn title(&self) -> &'static str {
        "second-order abstraction vs 3-stage ladder"
    }
    fn runtime(&self) -> Runtime {
        Runtime::Instant
    }
    fn cells(&self, _ctx: &Ctx) -> Vec<String> {
        vec!["ladder".into()]
    }
    fn run_cell(&self, _ctx: &Ctx, _cell: usize) -> CellResult {
        let mut out = CellResult::new("ladder");
        let ladder = LadderModel::typical_three_stage();
        let fit = ladder
            .fit_second_order(10.0e6, 300.0e6)
            .expect("ladder peak exceeds DC resistance");
        let period = fit.resonant_period_cycles();

        let s = &mut out.text;
        writeln!(
            s,
            "== Ablation: second-order abstraction vs 3-stage ladder network ==\n"
        )
        .unwrap();
        writeln!(
            s,
            "ladder: R_dc {:.2} mOhm, die peak {:.2} mOhm at {:.0} MHz",
            ladder.r_dc() * 1e3,
            fit.peak_impedance() * 1e3,
            fit.resonant_freq_hz() / 1e6
        )
        .unwrap();
        writeln!(
            s,
            "fitted 2nd-order: Q {:.2}, resonant period {period} cycles\n",
            fit.q_factor()
        )
        .unwrap();

        // Characteristic inputs (Figs. 3-6 shapes) at a 40 A swing.
        let amp = 40.0;
        let len = 30 * period;
        let inputs: [(&str, Vec<f64>); 4] = [
            ("narrow spike (5 cy)", waveform::spike(0.0, amp, 20, 5, len)),
            ("wide spike (10 cy)", waveform::spike(0.0, amp, 20, 10, len)),
            (
                "notched spike",
                waveform::notched_spike(0.0, amp, 20, 20, 7, 7, len),
            ),
            (
                "resonant train",
                waveform::pulse_train(0.0, amp, 10, period / 2, period, 8, len),
            ),
        ];

        let mut t = TextTable::new([
            "input",
            "ladder max |dV| (mV)",
            "2nd-order max |dV| (mV)",
            "abstraction error",
        ]);
        for (label, trace) in &inputs {
            let mut ls = ladder.discretize();
            let mut fs = fit.discretize();
            let mut dl = 0.0f64;
            let mut df = 0.0f64;
            for &i in trace {
                dl = dl.max((ls.step(i) - ladder.v_nominal()).abs());
                df = df.max((fs.step(i) - fit.v_nominal()).abs());
            }
            t.row([
                label.to_string(),
                format!("{:.1}", dl * 1e3),
                format!("{:.1}", df * 1e3),
                format!("{:+.0}%", (df / dl - 1.0) * 100.0),
            ]);
        }
        writeln!(s, "{}", t.render()).unwrap();

        // The real test: thresholds designed on the abstraction must
        // protect the detailed plant. Solve on the fit, then run the
        // worst-case train against the LADDER with the solved controller
        // emulated.
        let power = power_model();
        let scope = ActuationScope::FuDl1Il1;
        let setup = SolveSetup::new(
            &fit,
            power.min_current(),
            power.achievable_peak_current(),
            scope.leverage(&power),
            2,
        );
        match solve_thresholds(&setup) {
            Err(e) => writeln!(s, "(solve failed on the fitted model: {e})").unwrap(),
            Ok(th) => {
                let i_min = power.min_current();
                let i_max = power.achievable_peak_current();
                let mut supply = ladder.discretize();
                supply.set_reference_current(i_min);
                let demand = waveform::square_wave(i_min, i_max, period, 20 * period);
                let result = voltctl_core::replay(
                    &mut supply,
                    demand,
                    &voltctl_core::ReplayConfig {
                        thresholds: Some(th),
                        leverage: scope.leverage(&power),
                        delay_cycles: 2,
                        slew_limit: None,
                        i_max,
                        i_min,
                    },
                );
                writeln!(
                    s,
                    "worst-case train on the LADDER with thresholds [{:.3}, {:.3}] solved on the fit:",
                    th.v_low, th.v_high
                )
                .unwrap();
                writeln!(
                    s,
                    "  min die voltage {:.4} V — {} the 0.95 V specification ({} clamped cycles)",
                    result.min_v,
                    if result.min_v >= 0.95 {
                        "WITHIN"
                    } else {
                        "VIOLATES"
                    },
                    result.reduce_cycles
                )
                .unwrap();
            }
        }
        writeln!(
            s,
            "\n(the paper's early-design-stage claim: the second-order model is a"
        )
        .unwrap();
        writeln!(
            s,
            " faithful stand-in for the detailed network at the frequencies that"
        )
        .unwrap();
        writeln!(s, " matter for microarchitectural dI/dt control)").unwrap();
        out
    }
    fn render(&self, _ctx: &Ctx, cells: &[CellResult]) -> String {
        cells[0].text.clone()
    }
}
