//! §5 controller sweeps: threshold solving under delay (Table 3) and the
//! sensor/actuator sensitivity studies (Figures 14–18). Each controller
//! configuration (delay, error, scope×delay) is one grid cell, so the
//! full-stack simulations fan out across workers.

use std::fmt::Write as _;
use voltctl_core::prelude::ActuationScope;
use voltctl_core::LaneOutcome;
use voltctl_telemetry::MemoryRecorder;
use voltctl_workloads::Workload;

use crate::engine::{BatchLane, CellResult, Ctx, Runtime, Scenario};
use crate::harness::{
    solve_for, sweep_batch, sweep_finish, sweep_point, tuned_stressmark, variable_eight, SweepRow,
};
use crate::report::{pct, TextTable};

/// Table 3: voltage thresholds under sensor delay at 200% impedance.
///
/// Solved with the worst-case plant and an ideal actuator, as in the
/// paper's Simulink flow. Shape targets: the low threshold rises with
/// delay, and the safe window shrinks monotonically (94 mV-class at
/// delay 0 down to the 40 mV class at delay 6).
pub struct Table3Thresholds;

impl Scenario for Table3Thresholds {
    fn id(&self) -> &'static str {
        "table3_thresholds"
    }
    fn title(&self) -> &'static str {
        "thresholds vs sensor delay (ideal actuator)"
    }
    fn runtime(&self) -> Runtime {
        Runtime::Instant
    }
    fn cells(&self, _ctx: &Ctx) -> Vec<String> {
        (0..=6u32).map(|d| format!("delay {d}")).collect()
    }
    fn run_cell(&self, _ctx: &Ctx, cell: usize) -> CellResult {
        let delay = cell as u32;
        let mut out = CellResult::new(format!("delay {delay}"));
        match solve_for(ActuationScope::Ideal, delay, 2.0) {
            Ok(th) => {
                out.value("window_mv", th.window_mv());
                out.row = vec![
                    delay.to_string(),
                    format!("{:.3}", th.v_low),
                    format!("{:.3}", th.v_high),
                    format!("{:.0}", th.window_mv()),
                ];
            }
            Err(e) => {
                out.row = vec![delay.to_string(), "-".into(), "-".into(), format!("{e}")];
            }
        }
        out
    }
    fn render(&self, ctx: &Ctx, cells: &[CellResult]) -> String {
        let mut s = String::new();
        writeln!(
            s,
            "== Table 3: voltage thresholds under sensor delay (200% impedance) ==\n"
        )
        .unwrap();
        let mut t = TextTable::new([
            "delay (cycles)",
            "low threshold (V)",
            "high threshold (V)",
            "safe window (mV)",
        ]);
        let mut prev_window = f64::INFINITY;
        for c in cells {
            if let Some(window) = c.get("window_mv") {
                ctx.check(
                    window <= prev_window + 1e-6,
                    "window must shrink with delay",
                );
                prev_window = window;
            }
            t.row(c.row.clone());
        }
        writeln!(s, "{}", t.render()).unwrap();
        writeln!(
            s,
            "(high side is unconstrained in our worst-case plant — the regulator"
        )
        .unwrap();
        writeln!(
            s,
            " reference sits at the minimum-power point, so overshoot never binds"
        )
        .unwrap();
        writeln!(
            s,
            " before the undershoot controller engages; see EXPERIMENTS.md)"
        )
        .unwrap();
        s
    }
}

/// Runs one sweep configuration inside a cell, returning the `SPEC mean`
/// and stressmark rows plus the cell's telemetry.
fn sweep_cell(
    ctx: &Ctx,
    workloads: &[Workload],
    stress: &Workload,
    scope: ActuationScope,
    delay: u32,
    error_mv: f64,
    cycles: u64,
) -> (SweepRow, SweepRow, MemoryRecorder) {
    let mut rec = ctx.telemetry.then(MemoryRecorder::new);
    let rows = sweep_point(
        ctx,
        workloads,
        stress,
        scope,
        delay,
        error_mv,
        2.0,
        cycles,
        rec.as_mut(),
    );
    let (spec, sm) = pick_summary_rows(&rows, &stress.name);
    (spec, sm, rec.unwrap_or_default())
}

/// Extracts the `SPEC mean` and stressmark rows from a sweep point's
/// row list.
fn pick_summary_rows(rows: &[SweepRow], stress_name: &str) -> (SweepRow, SweepRow) {
    let spec = rows
        .iter()
        .find(|r| r.label == "SPEC mean")
        .expect("aggregate present")
        .clone();
    let sm = rows
        .iter()
        .find(|r| r.label == stress_name)
        .expect("stressmark present")
        .clone();
    (spec, sm)
}

/// The lane-batched half of [`sweep_cell`]: reshapes finished lane
/// outcomes (from a [`sweep_batch`] lane list) into the same summary
/// rows. The recorder equivalent is [`MemoryRecorder::default`] — the
/// engine only takes the lane path with telemetry off, where the scalar
/// path's recorder is the default too.
fn sweep_cell_finish(
    workloads: &[Workload],
    stress: &Workload,
    scope: ActuationScope,
    delay: u32,
    error_mv: f64,
    outcomes: &[LaneOutcome],
) -> (SweepRow, SweepRow) {
    let rows = sweep_finish(workloads, stress, scope, delay, error_mv, outcomes);
    pick_summary_rows(&rows, &stress.name)
}

/// Figure 14: impact of sensor delay on performance (ideal actuator).
///
/// The paper's claim: SPEC barely notices the controller at any delay,
/// while the stressmark — contrived to live at the controller's worst
/// case — degrades visibly as delay grows.
pub struct Fig14SensorDelayPerf;

impl Scenario for Fig14SensorDelayPerf {
    fn id(&self) -> &'static str {
        "fig14_sensor_delay_perf"
    }
    fn title(&self) -> &'static str {
        "sensor delay vs performance (ideal actuator)"
    }
    fn runtime(&self) -> Runtime {
        Runtime::Minutes
    }
    fn cells(&self, _ctx: &Ctx) -> Vec<String> {
        (0..=6u32).map(|d| format!("delay {d}")).collect()
    }
    fn run_cell(&self, ctx: &Ctx, cell: usize) -> CellResult {
        let delay = cell as u32;
        let (spec, sm, rec) = sweep_cell(
            ctx,
            &variable_eight(),
            &tuned_stressmark(),
            ActuationScope::Ideal,
            delay,
            0.0,
            ctx.budget(100_000),
        );
        let mut out = fig14_result(delay, &spec, &sm);
        out.recorder = rec;
        out
    }
    fn batchable(&self) -> bool {
        true
    }
    fn batch_cell(&self, ctx: &Ctx, cell: usize) -> Option<Vec<BatchLane>> {
        sweep_batch(
            ctx,
            &variable_eight(),
            &tuned_stressmark(),
            ActuationScope::Ideal,
            cell as u32,
            0.0,
            2.0,
            ctx.budget(100_000),
        )
    }
    fn finish_batch_cell(&self, _ctx: &Ctx, cell: usize, outcomes: Vec<LaneOutcome>) -> CellResult {
        let delay = cell as u32;
        let (spec, sm) = sweep_cell_finish(
            &variable_eight(),
            &tuned_stressmark(),
            ActuationScope::Ideal,
            delay,
            0.0,
            &outcomes,
        );
        fig14_result(delay, &spec, &sm)
    }
    fn render(&self, ctx: &Ctx, cells: &[CellResult]) -> String {
        let cycles = ctx.budget(100_000);
        let mut s = String::new();
        writeln!(
            s,
            "== Figure 14: sensor delay vs performance (ideal actuator, 200% impedance) =="
        )
        .unwrap();
        writeln!(
            s,
            "   (SPEC subset: the paper's eight variable benchmarks; {cycles} cycles each)\n"
        )
        .unwrap();
        let mut t = TextTable::new(["delay", "SPEC-8 perf loss", "stressmark perf loss"]);
        for c in cells {
            t.row(c.row.clone());
        }
        writeln!(s, "{}", t.render()).unwrap();
        writeln!(
            s,
            "(expected shape: SPEC column ~0%, stressmark grows with delay)"
        )
        .unwrap();
        s
    }
}

/// Figure 14's cell shape, shared by the scalar and lane-batched paths.
fn fig14_result(delay: u32, spec: &SweepRow, sm: &SweepRow) -> CellResult {
    let mut out = CellResult::new(format!("delay {delay}"));
    out.row = vec![delay.to_string(), pct(spec.perf_loss), pct(sm.perf_loss)];
    out
}

/// Figure 15: impact of sensor delay on energy (ideal actuator).
///
/// Energy overhead comes from two sides: stall-induced longer execution
/// (undershoot gating) and phantom-firing power (overshoot response).
/// SPEC stays near zero; the stressmark pays more as delay grows.
pub struct Fig15SensorDelayEnergy;

impl Scenario for Fig15SensorDelayEnergy {
    fn id(&self) -> &'static str {
        "fig15_sensor_delay_energy"
    }
    fn title(&self) -> &'static str {
        "sensor delay vs energy (ideal actuator)"
    }
    fn runtime(&self) -> Runtime {
        Runtime::Minutes
    }
    fn cells(&self, _ctx: &Ctx) -> Vec<String> {
        (0..=6u32).map(|d| format!("delay {d}")).collect()
    }
    fn run_cell(&self, ctx: &Ctx, cell: usize) -> CellResult {
        let delay = cell as u32;
        let (spec, sm, rec) = sweep_cell(
            ctx,
            &variable_eight(),
            &tuned_stressmark(),
            ActuationScope::Ideal,
            delay,
            0.0,
            ctx.budget(100_000),
        );
        let mut out = fig15_result(delay, &spec, &sm);
        out.recorder = rec;
        out
    }
    fn batchable(&self) -> bool {
        true
    }
    fn batch_cell(&self, ctx: &Ctx, cell: usize) -> Option<Vec<BatchLane>> {
        sweep_batch(
            ctx,
            &variable_eight(),
            &tuned_stressmark(),
            ActuationScope::Ideal,
            cell as u32,
            0.0,
            2.0,
            ctx.budget(100_000),
        )
    }
    fn finish_batch_cell(&self, _ctx: &Ctx, cell: usize, outcomes: Vec<LaneOutcome>) -> CellResult {
        let delay = cell as u32;
        let (spec, sm) = sweep_cell_finish(
            &variable_eight(),
            &tuned_stressmark(),
            ActuationScope::Ideal,
            delay,
            0.0,
            &outcomes,
        );
        fig15_result(delay, &spec, &sm)
    }
    fn render(&self, _ctx: &Ctx, cells: &[CellResult]) -> String {
        let mut s = String::new();
        writeln!(
            s,
            "== Figure 15: sensor delay vs energy (ideal actuator, 200% impedance) ==\n"
        )
        .unwrap();
        let mut t = TextTable::new([
            "delay",
            "SPEC-8 energy increase",
            "stressmark energy increase",
        ]);
        for c in cells {
            t.row(c.row.clone());
        }
        writeln!(s, "{}", t.render()).unwrap();
        writeln!(
            s,
            "(expected shape: SPEC column <1%, stressmark grows with delay)"
        )
        .unwrap();
        s
    }
}

/// Figure 15's cell shape, shared by the scalar and lane-batched paths.
fn fig15_result(delay: u32, spec: &SweepRow, sm: &SweepRow) -> CellResult {
    let mut out = CellResult::new(format!("delay {delay}"));
    out.row = vec![
        delay.to_string(),
        pct(spec.energy_increase),
        pct(sm.energy_increase),
    ];
    out
}

/// Figure 16: impact of sensor error on performance and energy.
///
/// Error is compensated by tightening the thresholds (§4.5), shrinking
/// the operating window: small errors (<15 mV) are nearly free; larger
/// errors cost increasingly more performance and energy.
pub struct Fig16SensorError;

const ERRORS_MV: [f64; 5] = [0.0, 10.0, 15.0, 20.0, 25.0];

impl Scenario for Fig16SensorError {
    fn id(&self) -> &'static str {
        "fig16_sensor_error"
    }
    fn title(&self) -> &'static str {
        "sensor error vs performance and energy"
    }
    fn runtime(&self) -> Runtime {
        Runtime::Minutes
    }
    fn cells(&self, _ctx: &Ctx) -> Vec<String> {
        ERRORS_MV.iter().map(|e| format!("{e:.0} mV")).collect()
    }
    fn run_cell(&self, ctx: &Ctx, cell: usize) -> CellResult {
        let error_mv = ERRORS_MV[cell];
        let (spec, sm, rec) = sweep_cell(
            ctx,
            &variable_eight(),
            &tuned_stressmark(),
            ActuationScope::Ideal,
            1,
            error_mv,
            ctx.budget(100_000),
        );
        let mut out = fig16_result(error_mv, &spec, &sm);
        out.recorder = rec;
        out
    }
    fn batchable(&self) -> bool {
        true
    }
    fn batch_cell(&self, ctx: &Ctx, cell: usize) -> Option<Vec<BatchLane>> {
        sweep_batch(
            ctx,
            &variable_eight(),
            &tuned_stressmark(),
            ActuationScope::Ideal,
            1,
            ERRORS_MV[cell],
            2.0,
            ctx.budget(100_000),
        )
    }
    fn finish_batch_cell(&self, _ctx: &Ctx, cell: usize, outcomes: Vec<LaneOutcome>) -> CellResult {
        let error_mv = ERRORS_MV[cell];
        let (spec, sm) = sweep_cell_finish(
            &variable_eight(),
            &tuned_stressmark(),
            ActuationScope::Ideal,
            1,
            error_mv,
            &outcomes,
        );
        fig16_result(error_mv, &spec, &sm)
    }
    fn render(&self, _ctx: &Ctx, cells: &[CellResult]) -> String {
        let mut s = String::new();
        writeln!(s, "== Figure 16: sensor error vs performance and energy ==").unwrap();
        writeln!(s, "   (ideal actuator, sensor delay 1, 200% impedance)\n").unwrap();
        let mut t = TextTable::new([
            "error (mV)",
            "SPEC-8 perf loss",
            "SPEC-8 energy",
            "stressmark perf loss",
            "stressmark energy",
        ]);
        for c in cells {
            t.row(c.row.clone());
        }
        writeln!(s, "{}", t.render()).unwrap();
        writeln!(
            s,
            "(expected shape: negligible below ~15 mV, rising beyond)"
        )
        .unwrap();
        s
    }
}

/// Figure 16's cell shape, shared by the scalar and lane-batched paths.
fn fig16_result(error_mv: f64, spec: &SweepRow, sm: &SweepRow) -> CellResult {
    let mut out = CellResult::new(format!("{error_mv:.0} mV"));
    out.row = vec![
        format!("{error_mv:.0}"),
        pct(spec.perf_loss),
        pct(spec.energy_increase),
        pct(sm.perf_loss),
        pct(sm.energy_increase),
    ];
    out
}

/// The scope grid shared by Figures 17 and 18 (scope-major, delays
/// 0..=5 within each scope).
const SCOPES: [ActuationScope; 3] = [
    ActuationScope::Fu,
    ActuationScope::FuDl1,
    ActuationScope::FuDl1Il1,
];
const DELAYS_PER_SCOPE: usize = 6;

fn scope_grid_cells() -> Vec<String> {
    SCOPES
        .iter()
        .flat_map(|s| (0..DELAYS_PER_SCOPE as u32).map(move |d| format!("{} delay {d}", s.name())))
        .collect()
}

fn scope_grid_point(cell: usize) -> (ActuationScope, u32) {
    (
        SCOPES[cell / DELAYS_PER_SCOPE],
        (cell % DELAYS_PER_SCOPE) as u32,
    )
}

/// Figure 17: actuation granularity vs performance under controller
/// delay.
///
/// FU-only control lacks the leverage to reshape the current quickly:
/// the threshold solver proves it unstable for delays >= 3 (matching
/// §5.2). FU/DL1 and FU/DL1/IL1 hold SPEC losses under ~2% through
/// delay 4-5; the stressmark pays ~6% at delay 0 growing to the ~25%
/// class at 5.
pub struct Fig17ActuatorPerf;

impl Scenario for Fig17ActuatorPerf {
    fn id(&self) -> &'static str {
        "fig17_actuator_perf"
    }
    fn title(&self) -> &'static str {
        "actuator granularity vs performance"
    }
    fn runtime(&self) -> Runtime {
        Runtime::Minutes
    }
    fn cells(&self, _ctx: &Ctx) -> Vec<String> {
        scope_grid_cells()
    }
    fn run_cell(&self, ctx: &Ctx, cell: usize) -> CellResult {
        let (scope, delay) = scope_grid_point(cell);
        let (spec, sm, rec) = sweep_cell(
            ctx,
            &variable_eight(),
            &tuned_stressmark(),
            scope,
            delay,
            0.0,
            ctx.budget(100_000),
        );
        let mut out = fig17_result(scope, delay, &spec, &sm);
        out.recorder = rec;
        out
    }
    fn batchable(&self) -> bool {
        true
    }
    fn batch_cell(&self, ctx: &Ctx, cell: usize) -> Option<Vec<BatchLane>> {
        let (scope, delay) = scope_grid_point(cell);
        sweep_batch(
            ctx,
            &variable_eight(),
            &tuned_stressmark(),
            scope,
            delay,
            0.0,
            2.0,
            ctx.budget(100_000),
        )
    }
    fn finish_batch_cell(&self, _ctx: &Ctx, cell: usize, outcomes: Vec<LaneOutcome>) -> CellResult {
        let (scope, delay) = scope_grid_point(cell);
        let (spec, sm) = sweep_cell_finish(
            &variable_eight(),
            &tuned_stressmark(),
            scope,
            delay,
            0.0,
            &outcomes,
        );
        fig17_result(scope, delay, &spec, &sm)
    }
    fn render(&self, _ctx: &Ctx, cells: &[CellResult]) -> String {
        let mut s = String::new();
        writeln!(
            s,
            "== Figure 17: actuator granularity vs performance (200% impedance) ==\n"
        )
        .unwrap();
        for (k, scope) in SCOPES.iter().enumerate() {
            writeln!(s, "-- actuator: {} --", scope.name()).unwrap();
            let mut t = TextTable::new([
                "delay",
                "SPEC-8 perf loss",
                "stressmark perf loss",
                "emergencies left (stressmark)",
            ]);
            for c in &cells[k * DELAYS_PER_SCOPE..(k + 1) * DELAYS_PER_SCOPE] {
                t.row(c.row.clone());
            }
            writeln!(s, "{}", t.render()).unwrap();
        }
        writeln!(
            s,
            "(expected shape: FU unstable at delay >= 3; FU/DL1 and FU/DL1/IL1"
        )
        .unwrap();
        writeln!(
            s,
            " keep SPEC under ~2% while eliminating the stressmark's emergencies)"
        )
        .unwrap();
        s
    }
}

/// Figure 17's cell shape, shared by the scalar and lane-batched paths
/// (unstable points always arrive via the scalar path — the lane path
/// declines them — but the shape lives in one place).
fn fig17_result(scope: ActuationScope, delay: u32, spec: &SweepRow, sm: &SweepRow) -> CellResult {
    let mut out = CellResult::new(format!("{} delay {delay}", scope.name()));
    out.row = if spec.unstable {
        vec![
            delay.to_string(),
            "UNSTABLE".into(),
            "UNSTABLE".into(),
            "-".into(),
        ]
    } else {
        vec![
            delay.to_string(),
            pct(spec.perf_loss),
            pct(sm.perf_loss),
            sm.controlled_emergencies.to_string(),
        ]
    };
    out
}

/// Figure 18: actuation granularity vs energy under controller delay.
///
/// SPEC energy overhead stays under ~1%; the stressmark's grows from
/// the ~5% class at delay 0 toward ~20%+ at delay 5 (paper's §5.3).
pub struct Fig18ActuatorEnergy;

impl Scenario for Fig18ActuatorEnergy {
    fn id(&self) -> &'static str {
        "fig18_actuator_energy"
    }
    fn title(&self) -> &'static str {
        "actuator granularity vs energy"
    }
    fn runtime(&self) -> Runtime {
        Runtime::Minutes
    }
    fn cells(&self, _ctx: &Ctx) -> Vec<String> {
        scope_grid_cells()
    }
    fn run_cell(&self, ctx: &Ctx, cell: usize) -> CellResult {
        let (scope, delay) = scope_grid_point(cell);
        let (spec, sm, rec) = sweep_cell(
            ctx,
            &variable_eight(),
            &tuned_stressmark(),
            scope,
            delay,
            0.0,
            ctx.budget(100_000),
        );
        let mut out = fig18_result(scope, delay, &spec, &sm);
        out.recorder = rec;
        out
    }
    fn batchable(&self) -> bool {
        true
    }
    fn batch_cell(&self, ctx: &Ctx, cell: usize) -> Option<Vec<BatchLane>> {
        let (scope, delay) = scope_grid_point(cell);
        sweep_batch(
            ctx,
            &variable_eight(),
            &tuned_stressmark(),
            scope,
            delay,
            0.0,
            2.0,
            ctx.budget(100_000),
        )
    }
    fn finish_batch_cell(&self, _ctx: &Ctx, cell: usize, outcomes: Vec<LaneOutcome>) -> CellResult {
        let (scope, delay) = scope_grid_point(cell);
        let (spec, sm) = sweep_cell_finish(
            &variable_eight(),
            &tuned_stressmark(),
            scope,
            delay,
            0.0,
            &outcomes,
        );
        fig18_result(scope, delay, &spec, &sm)
    }
    fn render(&self, _ctx: &Ctx, cells: &[CellResult]) -> String {
        let mut s = String::new();
        writeln!(
            s,
            "== Figure 18: actuator granularity vs energy (200% impedance) ==\n"
        )
        .unwrap();
        for (k, scope) in SCOPES.iter().enumerate() {
            writeln!(s, "-- actuator: {} --", scope.name()).unwrap();
            let mut t = TextTable::new([
                "delay",
                "SPEC-8 energy increase",
                "stressmark energy increase",
            ]);
            for c in &cells[k * DELAYS_PER_SCOPE..(k + 1) * DELAYS_PER_SCOPE] {
                t.row(c.row.clone());
            }
            writeln!(s, "{}", t.render()).unwrap();
        }
        s
    }
}

/// Figure 18's cell shape, shared by the scalar and lane-batched paths.
fn fig18_result(scope: ActuationScope, delay: u32, spec: &SweepRow, sm: &SweepRow) -> CellResult {
    let mut out = CellResult::new(format!("{} delay {delay}", scope.name()));
    out.row = if spec.unstable {
        vec![delay.to_string(), "UNSTABLE".into(), "UNSTABLE".into()]
    } else {
        vec![
            delay.to_string(),
            pct(spec.energy_increase),
            pct(sm.energy_increase),
        ]
    };
    out
}
