//! The `voltctl-exp` CLI: list and run the reproduction's experiments.
//!
//! ```text
//! voltctl-exp list
//! voltctl-exp run <id>... [--jobs N] [--scale X] [--smoke] [--trace]
//!                         [--telemetry MODE] [--telemetry-out DIR]
//! voltctl-exp run --all [same flags]
//! voltctl-exp trace <id>... [--window W] [--out DIR] [--jobs N]
//!                           [--scale X] [--smoke] [--min-captures N]
//! voltctl-exp bench [--smoke] [--out DIR] [--suite pdn|loop]
//! voltctl-exp golden [--bless] [--jobs N] [--dir DIR] [id...]
//! ```

use std::path::PathBuf;
use std::time::Instant;
use voltctl_exp::engine::{default_jobs, run_scenario, Ctx, Scenario, TraceSpec};
use voltctl_exp::scenarios::{find, registry};
use voltctl_exp::telemetry::{default_out_dir, env_mode, export_run, parse_mode, Mode};
use voltctl_exp::{parse_scale, TextTable};

const USAGE: &str = "\
voltctl-exp — unified experiment runner

USAGE:
    voltctl-exp list
    voltctl-exp run <id>... [OPTIONS]
    voltctl-exp run --all [OPTIONS]
    voltctl-exp trace <id>... [TRACE OPTIONS]
    voltctl-exp bench [--smoke] [--out <DIR>] [--suite <pdn|loop>]
    voltctl-exp golden [--bless] [--jobs <N>] [--dir <DIR>] [<id>...]

OPTIONS:
    --jobs <N>            worker threads per scenario grid
                          (default: all hardware threads)
    --scale <X>           cycle-budget scale factor (default: 1.0,
                          or VOLTCTL_SCALE)
    --smoke               tiny budgets, narrative checks off (CI plumbing)
    --trace               attach the emergency flight recorder and export
                          trace artifacts after each scenario
    --telemetry <MODE>    off | summary | jsonl | csv
                          (default: VOLTCTL_TELEMETRY or off)
    --telemetry-out <DIR> snapshot directory (default: results/telemetry)

TRACE OPTIONS:
    --window <W>          flight-recorder window in cycles kept either
                          side of each emergency crossing (default: 96)
    --out <DIR>           artifact directory (default: results/trace);
                          writes <id>.trace.json (Perfetto-loadable) and
                          <id>.forensics.txt, never overwriting
    --jobs/--scale/--smoke as for run
    --min-captures <N>    fail unless at least N emergencies captured
                          ('stressmark' is an alias for fig08_stressmark)

BENCH OPTIONS:
    --smoke               tiny iteration budgets (CI plumbing check)
    --out <DIR>           artifact directory (default: results/perf);
                          writes BENCH_pdn.json and BENCH_loop.json
    --suite <pdn|loop>    run only one suite (regenerate one baseline
                          without paying for the other)

GOLDEN OPTIONS:
    --bless               rewrite the snapshots instead of comparing
    --jobs <N>            worker threads per scenario grid
    --dir <DIR>           snapshot directory (default: results/golden)
    <id>...               scenarios to check (default: all)

Run `voltctl-exp list` for the available scenario ids.
";

struct RunArgs {
    ids: Vec<String>,
    all: bool,
    jobs: usize,
    ctx: Ctx,
    mode: Mode,
}

fn fail(msg: &str) -> ! {
    eprintln!("voltctl-exp: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

fn parse_run_args(args: &[String]) -> RunArgs {
    let mut out = RunArgs {
        ids: Vec::new(),
        all: false,
        jobs: default_jobs(),
        ctx: Ctx::new(voltctl_exp::env_scale()),
        mode: env_mode(),
    };
    out.ctx.telemetry_out = default_out_dir();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut flag_value = |name: &str| -> String {
            if let Some(v) = arg.strip_prefix(&format!("{name}=")) {
                return v.to_string();
            }
            it.next()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
                .clone()
        };
        match arg.split('=').next().unwrap_or(arg.as_str()) {
            "--all" => out.all = true,
            "--smoke" => out.ctx.smoke = true,
            "--trace" => out.ctx.trace = Some(TraceSpec::default()),
            "--jobs" => {
                let raw = flag_value("--jobs");
                out.jobs = raw
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| fail(&format!("--jobs {raw:?} is not a positive integer")));
            }
            "--scale" => {
                let raw = flag_value("--scale");
                out.ctx.scale =
                    parse_scale(&raw).unwrap_or_else(|e| fail(&format!("--scale {raw:?}: {e}")));
            }
            "--telemetry" => out.mode = parse_mode(&flag_value("--telemetry")),
            "--telemetry-out" => {
                out.ctx.telemetry_out = PathBuf::from(flag_value("--telemetry-out"))
            }
            _ if arg.starts_with("--") => fail(&format!("unknown flag {arg:?}")),
            _ => out.ids.push(arg.clone()),
        }
    }
    out.ctx.telemetry = out.mode != Mode::Off;

    if out.all && !out.ids.is_empty() {
        fail("--all cannot be combined with explicit scenario ids");
    }
    if !out.all && out.ids.is_empty() {
        fail("run needs at least one scenario id (or --all)");
    }
    out
}

fn cmd_list() {
    let mut t = TextTable::new(["id", "runtime", "cells", "description"]);
    for row in voltctl_exp::listing(&Ctx::default()) {
        t.row(row);
    }
    print!("{}", t.render());
    println!("\nrun one with: voltctl-exp run <id> [--jobs N] [--scale X]");
}

fn cmd_golden(args: &[String]) {
    let mut opts = voltctl_exp::GoldenOpts::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut flag_value = |name: &str| -> String {
            if let Some(v) = arg.strip_prefix(&format!("{name}=")) {
                return v.to_string();
            }
            it.next()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
                .clone()
        };
        match arg.split('=').next().unwrap_or(arg.as_str()) {
            "--bless" => opts.bless = true,
            "--jobs" => {
                let raw = flag_value("--jobs");
                opts.jobs = raw
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| fail(&format!("--jobs {raw:?} is not a positive integer")));
            }
            "--dir" => opts.dir = PathBuf::from(flag_value("--dir")),
            _ if arg.starts_with("--") => fail(&format!("unknown golden flag {arg:?}")),
            _ => opts.ids.push(arg.clone()),
        }
    }
    match voltctl_exp::golden::run(&opts) {
        Ok(outcome) => {
            print!("{}", outcome.render());
            if !outcome.is_clean() {
                std::process::exit(1);
            }
        }
        Err(msg) => fail(&msg),
    }
}

fn cmd_run(args: &[String]) {
    let run = parse_run_args(args);
    let scenarios: Vec<&'static dyn Scenario> = if run.all {
        registry().to_vec()
    } else {
        run.ids
            .iter()
            .map(|id| {
                find(id).unwrap_or_else(|| {
                    fail(&format!("unknown scenario {id:?} (see `voltctl-exp list`)"))
                })
            })
            .collect()
    };

    let started = Instant::now();
    for (k, scenario) in scenarios.iter().enumerate() {
        if k > 0 {
            println!();
        }
        let out = run_scenario(*scenario, &run.ctx, run.jobs);
        print!("{}", out.report);
        eprintln!(
            "[voltctl-exp] {}: {} cells on {} worker(s) in {:.2?}",
            scenario.id(),
            out.cells,
            out.jobs,
            out.elapsed
        );
        export_run(
            scenario.id(),
            &out.telemetry,
            run.mode,
            &run.ctx.telemetry_out,
        );
        if run.ctx.trace.is_some() && !out.trace.is_empty() {
            match voltctl_exp::trace::export(
                &voltctl_exp::trace::default_out_dir(),
                scenario.id(),
                &out.trace,
            ) {
                Ok(a) => eprintln!(
                    "[voltctl-exp] trace {}: {} capture(s); wrote {} and {}",
                    scenario.id(),
                    out.trace.total_captures(),
                    a.json.display(),
                    a.forensics.display()
                ),
                Err(msg) => {
                    eprintln!("voltctl-exp: trace export failed: {msg}");
                    std::process::exit(1);
                }
            }
        }
    }
    if scenarios.len() > 1 {
        eprintln!(
            "[voltctl-exp] {} scenario(s) in {:.2?}",
            scenarios.len(),
            started.elapsed()
        );
    }
}

fn cmd_trace(args: &[String]) {
    let mut opts = voltctl_exp::trace::TraceOpts::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut flag_value = |name: &str| -> String {
            if let Some(v) = arg.strip_prefix(&format!("{name}=")) {
                return v.to_string();
            }
            it.next()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
                .clone()
        };
        match arg.split('=').next().unwrap_or(arg.as_str()) {
            "--smoke" => opts.smoke = true,
            "--window" => {
                let raw = flag_value("--window");
                opts.window = raw
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| {
                        fail(&format!("--window {raw:?} is not a positive integer"))
                    });
            }
            "--jobs" => {
                let raw = flag_value("--jobs");
                opts.jobs = raw
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| fail(&format!("--jobs {raw:?} is not a positive integer")));
            }
            "--scale" => {
                let raw = flag_value("--scale");
                opts.scale =
                    parse_scale(&raw).unwrap_or_else(|e| fail(&format!("--scale {raw:?}: {e}")));
            }
            "--out" => opts.out = PathBuf::from(flag_value("--out")),
            "--min-captures" => {
                let raw = flag_value("--min-captures");
                opts.min_captures = raw
                    .parse::<usize>()
                    .unwrap_or_else(|_| fail(&format!("--min-captures {raw:?} is not an integer")));
            }
            _ if arg.starts_with("--") => fail(&format!("unknown trace flag {arg:?}")),
            _ => opts.ids.push(arg.clone()),
        }
    }
    if let Err(msg) = voltctl_exp::trace::run(&opts) {
        eprintln!("voltctl-exp: trace failed: {msg}");
        std::process::exit(1);
    }
}

fn cmd_bench(args: &[String]) {
    let mut opts = voltctl_exp::BenchOpts::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.split('=').next().unwrap_or(arg.as_str()) {
            "--smoke" => opts.smoke = true,
            "--out" => {
                let raw = arg
                    .strip_prefix("--out=")
                    .map(str::to_string)
                    .unwrap_or_else(|| {
                        it.next()
                            .unwrap_or_else(|| fail("--out needs a value"))
                            .clone()
                    });
                opts.out = PathBuf::from(raw);
            }
            "--suite" => {
                let raw = arg
                    .strip_prefix("--suite=")
                    .map(str::to_string)
                    .unwrap_or_else(|| {
                        it.next()
                            .unwrap_or_else(|| fail("--suite needs a value"))
                            .clone()
                    });
                if !["pdn", "loop"].contains(&raw.as_str()) {
                    fail(&format!("unknown bench suite {raw:?} (pdn, loop)"));
                }
                opts.suite = Some(raw);
            }
            _ => fail(&format!("unknown bench argument {arg:?}")),
        }
    }
    if let Err(msg) = voltctl_exp::bench::run(&opts) {
        eprintln!("voltctl-exp: bench failed: {msg}");
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            if args.len() > 1 {
                fail("list takes no arguments");
            }
            cmd_list();
        }
        Some("run") => cmd_run(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("golden") => cmd_golden(&args[1..]),
        Some("--help") | Some("-h") | Some("help") => print!("{USAGE}"),
        Some(other) => fail(&format!("unknown command {other:?}")),
        None => fail("missing command"),
    }
}
