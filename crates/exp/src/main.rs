//! The `voltctl-exp` CLI: list and run the reproduction's experiments.
//!
//! ```text
//! voltctl-exp list
//! voltctl-exp run <id>... [--jobs N] [--scale X] [--smoke] [--trace]
//!                         [--telemetry MODE] [--telemetry-out DIR]
//!                         [--shards K] [--resume DIR] [--checkpoint-dir DIR]
//! voltctl-exp run --all [same flags]
//! voltctl-exp trace <id>... [--window W] [--out DIR] [--jobs N]
//!                           [--scale X] [--smoke] [--min-captures N]
//! voltctl-exp bench [--smoke] [--out DIR] [--suite pdn|loop]
//!                   [--compare OLD] [--tolerance FRAC]
//! voltctl-exp golden [--bless] [--jobs N] [--dir DIR] [id...]
//! voltctl-exp snapshot inspect <file>...
//! ```

use std::path::PathBuf;
use std::time::Instant;
use voltctl_exp::engine::{
    default_jobs, run_scenario, run_scenario_profiled, Ctx, Scenario, TraceSpec,
};
use voltctl_exp::profile::{self, Profiler, SelfProfiler};
use voltctl_exp::scenarios::{find, registry};
use voltctl_exp::telemetry::{default_out_dir, env_mode, export_run, parse_mode, Mode};
use voltctl_exp::{parse_scale, run_sharded, Manifest, ShardOpts, TextTable};

const USAGE: &str = "\
voltctl-exp — unified experiment runner

USAGE:
    voltctl-exp list
    voltctl-exp run <id>... [OPTIONS]
    voltctl-exp run --all [OPTIONS]
    voltctl-exp trace <id>... [TRACE OPTIONS]
    voltctl-exp bench [--smoke] [--out <DIR>] [--suite <pdn|loop>]
                      [--compare <OLD>] [--tolerance <FRAC>]
    voltctl-exp golden [--bless] [--jobs <N>] [--dir <DIR>] [<id>...]
    voltctl-exp snapshot inspect <file>...

OPTIONS:
    --jobs <N>            worker threads per scenario grid
                          (default: all hardware threads)
    --scale <X>           cycle-budget scale factor (default: 1.0,
                          or VOLTCTL_SCALE)
    --smoke               tiny budgets, narrative checks off (CI plumbing)
    --no-lanes            pin every cell to the scalar path (results are
                          bitwise identical; for timing and backtraces)
    --trace               attach the emergency flight recorder and export
                          trace artifacts after each scenario
    --telemetry <MODE>    off | summary | jsonl | csv
                          (default: VOLTCTL_TELEMETRY or off)
    --telemetry-out <DIR> snapshot directory (default: results/telemetry)
    --profile             self-profile the engine: per-stage summary on
                          stderr + a speedscope/inferno-loadable
                          folded-stacks file
    --profile-out <DIR>   folded-stacks directory (default: results/profile)
    --shards <K>          split each scenario's grid into K resumable
                          shards, checkpointing each as a .snap file;
                          the merged output is byte-identical to an
                          unsharded run
    --resume <DIR>        load valid shard checkpoints from DIR instead
                          of recomputing them (invalid or missing shards
                          rerun and are re-checkpointed)
    --checkpoint-dir <DIR> where new checkpoints land (default: the
                          --resume directory, else results/checkpoints)

TRACE OPTIONS:
    --window <W>          flight-recorder window in cycles kept either
                          side of each emergency crossing (default: 96)
    --out <DIR>           artifact directory (default: results/trace);
                          writes <id>.trace.json (Perfetto-loadable) and
                          <id>.forensics.txt, never overwriting
    --jobs/--scale/--smoke as for run
    --min-captures <N>    fail unless at least N emergencies captured
                          ('stressmark' is an alias for fig08_stressmark)

BENCH OPTIONS:
    --smoke               tiny iteration budgets (CI plumbing check)
    --out <DIR>           artifact directory (default: results/perf);
                          writes BENCH_pdn.json and BENCH_loop.json
    --suite <pdn|loop>    run only one suite (regenerate one baseline
                          without paying for the other)
    --compare <OLD>       diff against a prior baseline: a BENCH_*.json
                          file or a directory holding one per suite;
                          prints per-point throughput deltas and exits
                          nonzero on any regression past the tolerance
    --tolerance <FRAC>    allowed fractional throughput drop under
                          --compare before failing (default: 0.25)

GOLDEN OPTIONS:
    --bless               rewrite the snapshots instead of comparing
    --jobs <N>            worker threads per scenario grid
    --dir <DIR>           snapshot directory (default: results/golden)
    <id>...               scenarios to check (default: all)

SNAPSHOT COMMANDS:
    inspect <file>...     validate a .snap container (loop save, shard
                          checkpoint, replay capture) and describe its
                          sections; exits nonzero on any invalid file

Run `voltctl-exp list` for the available scenario ids.
";

struct RunArgs {
    ids: Vec<String>,
    all: bool,
    jobs: usize,
    ctx: Ctx,
    mode: Mode,
    profile: bool,
    profile_out: PathBuf,
    shards: Option<usize>,
    resume: Option<PathBuf>,
    checkpoint_dir: Option<PathBuf>,
}

impl RunArgs {
    /// Whether this run goes through the shard planner at all.
    fn sharded(&self) -> bool {
        self.shards.is_some() || self.resume.is_some()
    }

    /// Where new checkpoints land: explicit `--checkpoint-dir`, else the
    /// resume directory (so a healed shard is found next time), else the
    /// default under the workspace root.
    fn checkpoint_dir(&self) -> PathBuf {
        self.checkpoint_dir
            .clone()
            .or_else(|| self.resume.clone())
            .unwrap_or_else(|| {
                voltctl_check::persist::workspace_root()
                    .join("results")
                    .join("checkpoints")
            })
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("voltctl-exp: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

fn parse_run_args(args: &[String]) -> RunArgs {
    let mut out = RunArgs {
        ids: Vec::new(),
        all: false,
        jobs: default_jobs(),
        ctx: Ctx::new(voltctl_exp::env_scale()),
        mode: env_mode(),
        profile: false,
        profile_out: voltctl_check::persist::workspace_root()
            .join("results")
            .join("profile"),
        shards: None,
        resume: None,
        checkpoint_dir: None,
    };
    out.ctx.telemetry_out = default_out_dir();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut flag_value = |name: &str| -> String {
            if let Some(v) = arg.strip_prefix(&format!("{name}=")) {
                return v.to_string();
            }
            it.next()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
                .clone()
        };
        match arg.split('=').next().unwrap_or(arg.as_str()) {
            "--all" => out.all = true,
            "--smoke" => out.ctx.smoke = true,
            "--no-lanes" => out.ctx.lanes = false,
            "--trace" => out.ctx.trace = Some(TraceSpec::default()),
            "--jobs" => {
                let raw = flag_value("--jobs");
                out.jobs = raw
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| fail(&format!("--jobs {raw:?} is not a positive integer")));
            }
            "--scale" => {
                let raw = flag_value("--scale");
                out.ctx.scale =
                    parse_scale(&raw).unwrap_or_else(|e| fail(&format!("--scale {raw:?}: {e}")));
            }
            "--telemetry" => out.mode = parse_mode(&flag_value("--telemetry")),
            "--telemetry-out" => {
                out.ctx.telemetry_out = PathBuf::from(flag_value("--telemetry-out"))
            }
            "--profile" => out.profile = true,
            "--profile-out" => out.profile_out = PathBuf::from(flag_value("--profile-out")),
            "--shards" => {
                let raw = flag_value("--shards");
                out.shards = Some(
                    raw.parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .unwrap_or_else(|| {
                            fail(&format!("--shards {raw:?} is not a positive integer"))
                        }),
                );
            }
            "--resume" => out.resume = Some(PathBuf::from(flag_value("--resume"))),
            "--checkpoint-dir" => {
                out.checkpoint_dir = Some(PathBuf::from(flag_value("--checkpoint-dir")))
            }
            _ if arg.starts_with("--") => fail(&format!("unknown flag {arg:?}")),
            _ => out.ids.push(arg.clone()),
        }
    }
    out.ctx.telemetry = out.mode != Mode::Off;

    if out.all && !out.ids.is_empty() {
        fail("--all cannot be combined with explicit scenario ids");
    }
    if !out.all && out.ids.is_empty() {
        fail("run needs at least one scenario id (or --all)");
    }
    out
}

fn cmd_list() {
    let mut t = TextTable::new(["id", "runtime", "cells", "trace", "description"]);
    for row in voltctl_exp::listing(&Ctx::default()) {
        t.row(row);
    }
    print!("{}", t.render());
    println!("\nrun one with: voltctl-exp run <id> [--jobs N] [--scale X]");
    println!("trace-aware scenarios (trace=yes) also accept: voltctl-exp trace <id>");
}

fn cmd_golden(args: &[String]) {
    let mut opts = voltctl_exp::GoldenOpts::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut flag_value = |name: &str| -> String {
            if let Some(v) = arg.strip_prefix(&format!("{name}=")) {
                return v.to_string();
            }
            it.next()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
                .clone()
        };
        match arg.split('=').next().unwrap_or(arg.as_str()) {
            "--bless" => opts.bless = true,
            "--jobs" => {
                let raw = flag_value("--jobs");
                opts.jobs = raw
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| fail(&format!("--jobs {raw:?} is not a positive integer")));
            }
            "--dir" => opts.dir = PathBuf::from(flag_value("--dir")),
            _ if arg.starts_with("--") => fail(&format!("unknown golden flag {arg:?}")),
            _ => opts.ids.push(arg.clone()),
        }
    }
    match voltctl_exp::golden::run(&opts) {
        Ok(outcome) => {
            print!("{}", outcome.render());
            if !outcome.is_clean() {
                std::process::exit(1);
            }
        }
        Err(msg) => fail(&msg),
    }
}

fn cmd_run(args: &[String]) {
    let run = parse_run_args(args);
    let scenarios: Vec<&'static dyn Scenario> = if run.all {
        registry().to_vec()
    } else {
        run.ids
            .iter()
            .map(|id| {
                find(id).unwrap_or_else(|| {
                    fail(&format!("unknown scenario {id:?} (see `voltctl-exp list`)"))
                })
            })
            .collect()
    };

    // --profile installs the process-global profiler so the harness's
    // memoized solve/calibrate slow paths record into the same place as
    // the engine's stage spans.
    let profiler: Option<&'static SelfProfiler> = run.profile.then(profile::install_global);

    let started = Instant::now();
    let trace_out = voltctl_exp::trace::default_out_dir();
    let mut telemetry_manifest = Manifest::new(format!("run --telemetry {:?}", run.mode));
    telemetry_manifest.ctx(&run.ctx, run.jobs);
    let mut trace_manifest = Manifest::new("run --trace");
    trace_manifest.ctx(&run.ctx, run.jobs);

    let shard_opts = ShardOpts {
        shards: run.shards,
        resume: run.resume.clone(),
        dir: run.checkpoint_dir(),
    };
    let mut checkpoint_manifest = Manifest::new(match (run.shards, &run.resume) {
        (Some(k), _) => format!("run --shards {k}"),
        (None, Some(dir)) => format!("run --resume {}", dir.display()),
        (None, None) => "run".to_string(),
    });
    checkpoint_manifest.ctx(&run.ctx, run.jobs);
    let mut max_shards = 0usize;

    for (k, scenario) in scenarios.iter().enumerate() {
        if k > 0 {
            println!();
        }
        let out = if run.sharded() {
            let sharded = match profiler {
                Some(p) => run_sharded(*scenario, &run.ctx, run.jobs, &shard_opts, p),
                None => run_sharded(
                    *scenario,
                    &run.ctx,
                    run.jobs,
                    &shard_opts,
                    &voltctl_exp::NullProfiler,
                ),
            }
            .unwrap_or_else(|msg| fail(&msg));
            eprintln!(
                "[voltctl-exp] {}: {} shard(s) — {} loaded from checkpoints, {} checkpoint(s) written under {}",
                scenario.id(),
                sharded.shards,
                sharded.loaded,
                sharded.written.len(),
                shard_opts.dir.display()
            );
            max_shards = max_shards.max(sharded.shards);
            checkpoint_manifest.scenario(scenario.id());
            for path in &sharded.written {
                checkpoint_manifest.artifact(path);
            }
            sharded.output
        } else {
            match profiler {
                Some(p) => run_scenario_profiled(*scenario, &run.ctx, run.jobs, p),
                None => run_scenario(*scenario, &run.ctx, run.jobs),
            }
        };
        print!("{}", out.report);
        eprintln!(
            "[voltctl-exp] {}: {} cells on {} worker(s) in {:.2?}",
            scenario.id(),
            out.cells,
            out.jobs,
            out.elapsed
        );
        let export_t0 = Instant::now();
        for path in export_run(
            scenario.id(),
            &out.telemetry,
            run.mode,
            &run.ctx.telemetry_out,
        ) {
            telemetry_manifest.scenario(scenario.id());
            telemetry_manifest.artifact(&path);
        }
        if run.ctx.trace.is_some() && !out.trace.is_empty() {
            match voltctl_exp::trace::export(&trace_out, scenario.id(), &out.trace) {
                Ok(a) => {
                    eprintln!(
                        "[voltctl-exp] trace {}: {} capture(s); wrote {} and {}",
                        scenario.id(),
                        out.trace.total_captures(),
                        a.json.display(),
                        a.forensics.display()
                    );
                    trace_manifest.scenario(scenario.id());
                    trace_manifest.artifact(&a.json).artifact(&a.forensics);
                }
                Err(msg) => {
                    eprintln!("voltctl-exp: trace export failed: {msg}");
                    std::process::exit(1);
                }
            }
        }
        if let Some(p) = profiler {
            p.record(
                &["exp", scenario.id(), "export"],
                export_t0.elapsed().as_nanos() as u64,
            );
        }
    }

    // Every directory that received artifacts gets a provenance
    // manifest describing this invocation. Sharded runs stamp their
    // lineage (shard count, resume source) on every manifest they
    // write, so artifacts remain traceable to the checkpoints that
    // fed them.
    telemetry_manifest.wall(started.elapsed());
    trace_manifest.wall(started.elapsed());
    checkpoint_manifest.wall(started.elapsed());
    if run.sharded() {
        for manifest in [
            &mut telemetry_manifest,
            &mut trace_manifest,
            &mut checkpoint_manifest,
        ] {
            manifest.shard_lineage(max_shards, run.resume.as_deref());
        }
    }
    for (manifest, dir) in [
        (&telemetry_manifest, &run.ctx.telemetry_out),
        (&trace_manifest, &trace_out),
        (&checkpoint_manifest, &shard_opts.dir),
    ] {
        if manifest.artifact_count() == 0 {
            continue;
        }
        match manifest.write(dir) {
            Ok(path) => eprintln!("[voltctl-exp] wrote {}", path.display()),
            Err(e) => eprintln!("voltctl-exp: manifest write failed: {e}"),
        }
    }

    if let Some(p) = profiler {
        write_profile(p, &run);
    }

    if scenarios.len() > 1 {
        eprintln!(
            "[voltctl-exp] {} scenario(s) in {:.2?}",
            scenarios.len(),
            started.elapsed()
        );
    }
}

/// Emits the self-profiler's two deliverables: the per-stage summary
/// table on stderr and the folded-stacks file (plus its manifest) under
/// `--profile-out`.
fn write_profile(p: &SelfProfiler, run: &RunArgs) {
    eprint!(
        "\n[voltctl-exp] self-profile (stages nest; totals overlap):\n{}",
        p.summary()
    );
    let stem = if run.all {
        "all".to_string()
    } else {
        run.ids.join("+")
    };
    match voltctl_telemetry::export::write_file_fresh(
        &run.profile_out,
        &format!("{stem}.folded"),
        &p.folded(),
    ) {
        Ok(path) => {
            eprintln!(
                "[voltctl-exp] wrote {} (speedscope/inferno-loadable)",
                path.display()
            );
            let mut manifest = Manifest::new("run --profile");
            manifest.ctx(&run.ctx, run.jobs);
            for id in &run.ids {
                manifest.scenario(id);
            }
            manifest.artifact(&path);
            match manifest.write(&run.profile_out) {
                Ok(m) => eprintln!("[voltctl-exp] wrote {}", m.display()),
                Err(e) => eprintln!("voltctl-exp: manifest write failed: {e}"),
            }
        }
        Err(e) => eprintln!("voltctl-exp: profile write failed: {e}"),
    }
}

fn cmd_trace(args: &[String]) {
    let mut opts = voltctl_exp::trace::TraceOpts::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut flag_value = |name: &str| -> String {
            if let Some(v) = arg.strip_prefix(&format!("{name}=")) {
                return v.to_string();
            }
            it.next()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
                .clone()
        };
        match arg.split('=').next().unwrap_or(arg.as_str()) {
            "--smoke" => opts.smoke = true,
            "--window" => {
                let raw = flag_value("--window");
                opts.window = raw
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| {
                        fail(&format!("--window {raw:?} is not a positive integer"))
                    });
            }
            "--jobs" => {
                let raw = flag_value("--jobs");
                opts.jobs = raw
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| fail(&format!("--jobs {raw:?} is not a positive integer")));
            }
            "--scale" => {
                let raw = flag_value("--scale");
                opts.scale =
                    parse_scale(&raw).unwrap_or_else(|e| fail(&format!("--scale {raw:?}: {e}")));
            }
            "--out" => opts.out = PathBuf::from(flag_value("--out")),
            "--min-captures" => {
                let raw = flag_value("--min-captures");
                opts.min_captures = raw
                    .parse::<usize>()
                    .unwrap_or_else(|_| fail(&format!("--min-captures {raw:?} is not an integer")));
            }
            _ if arg.starts_with("--") => fail(&format!("unknown trace flag {arg:?}")),
            _ => opts.ids.push(arg.clone()),
        }
    }
    if let Err(msg) = voltctl_exp::trace::run(&opts) {
        eprintln!("voltctl-exp: trace failed: {msg}");
        std::process::exit(1);
    }
}

fn cmd_bench(args: &[String]) {
    let mut opts = voltctl_exp::BenchOpts::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.split('=').next().unwrap_or(arg.as_str()) {
            "--smoke" => opts.smoke = true,
            "--out" => {
                let raw = arg
                    .strip_prefix("--out=")
                    .map(str::to_string)
                    .unwrap_or_else(|| {
                        it.next()
                            .unwrap_or_else(|| fail("--out needs a value"))
                            .clone()
                    });
                opts.out = PathBuf::from(raw);
            }
            "--suite" => {
                let raw = arg
                    .strip_prefix("--suite=")
                    .map(str::to_string)
                    .unwrap_or_else(|| {
                        it.next()
                            .unwrap_or_else(|| fail("--suite needs a value"))
                            .clone()
                    });
                if !["pdn", "loop"].contains(&raw.as_str()) {
                    fail(&format!("unknown bench suite {raw:?} (pdn, loop)"));
                }
                opts.suite = Some(raw);
            }
            "--compare" => {
                let raw = arg
                    .strip_prefix("--compare=")
                    .map(str::to_string)
                    .unwrap_or_else(|| {
                        it.next()
                            .unwrap_or_else(|| fail("--compare needs a value"))
                            .clone()
                    });
                opts.compare = Some(PathBuf::from(raw));
            }
            "--tolerance" => {
                let raw = arg
                    .strip_prefix("--tolerance=")
                    .map(str::to_string)
                    .unwrap_or_else(|| {
                        it.next()
                            .unwrap_or_else(|| fail("--tolerance needs a value"))
                            .clone()
                    });
                opts.tolerance = raw.parse().unwrap_or_else(|_| {
                    fail(&format!("--tolerance needs a fraction, got {raw:?}"))
                });
                if opts.tolerance.is_nan() || opts.tolerance < 0.0 {
                    fail("--tolerance must be >= 0");
                }
            }
            _ => fail(&format!("unknown bench argument {arg:?}")),
        }
    }
    if let Err(msg) = voltctl_exp::bench::run(&opts) {
        eprintln!("voltctl-exp: bench failed: {msg}");
        std::process::exit(1);
    }
}

fn cmd_snapshot(args: &[String]) {
    match args.first().map(String::as_str) {
        Some("inspect") if args.len() > 1 => {}
        Some("inspect") => fail("snapshot inspect needs at least one file"),
        Some(other) => fail(&format!("unknown snapshot command {other:?} (inspect)")),
        None => fail("snapshot needs a command (inspect <file>...)"),
    }
    let mut failed = false;
    for file in &args[1..] {
        match voltctl_exp::snapshot::inspect_file(std::path::Path::new(file)) {
            Ok(report) => print!("{report}"),
            Err(msg) => {
                eprintln!("voltctl-exp: {msg}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            if args.len() > 1 {
                fail("list takes no arguments");
            }
            cmd_list();
        }
        Some("run") => cmd_run(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("golden") => cmd_golden(&args[1..]),
        Some("snapshot") => cmd_snapshot(&args[1..]),
        Some("--help") | Some("-h") | Some("help") => print!("{USAGE}"),
        Some(other) => fail(&format!("unknown command {other:?}")),
        None => fail("missing command"),
    }
}
