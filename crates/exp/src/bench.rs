//! The `voltctl-exp bench` subcommand: the machine-readable performance
//! baseline for the simulation kernels.
//!
//! Two suites run on the in-tree micro-benchmark harness
//! ([`voltctl_telemetry::stopwatch::bench`]) and export JSON artifacts:
//!
//! * **`BENCH_pdn.json`** — voltage-computation throughput per kernel
//!   size: the direct O(N·K) convolution, the overlap-save FFT path
//!   (O(N log K)), the branch-free streaming convolver, and the O(1)/cycle
//!   state-space stepper, all over the same seeded trace; plus the
//!   derive-vs-cache-hit cost of [`voltctl_pdn::cached_kernel_for`].
//! * **`BENCH_loop.json`** — closed-loop simulator throughput:
//!   uncontrolled, threshold-controlled, telemetry-recorded, and
//!   flight-recorder-traced
//!   [`ControlLoop`](voltctl_core::prelude::ControlLoop) stepping.
//!
//! Every point carries wall-clock nanoseconds and derived cycles/second.
//! [`run`] fails (after writing the artifacts, so CI can still upload
//! them) when any point reports a NaN or non-positive throughput — the
//! perf-smoke CI gate. No absolute-time thresholds are enforced: the CI
//! runner is single-core and noisy; the artifacts exist to *track* the
//! trajectory, not to gate on machine speed.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

use voltctl_core::loopsim::ControlLoop;
use voltctl_core::prelude::*;
use voltctl_core::LaneLoop;
use voltctl_isa::builder::ProgramBuilder;
use voltctl_isa::reg::IntReg;
use voltctl_isa::Program;
use voltctl_pdn::state_space::pulse_response;
use voltctl_pdn::{cached_kernel_for, convolve, PdnModel};
use voltctl_telemetry::stopwatch::bench;
use voltctl_telemetry::{MemoryRecorder, Rng};
use voltctl_trace::FlightRecorder;

use crate::harness::{cpu_config, pdn_at, power_model};

/// Options for a bench run.
#[derive(Debug, Clone)]
pub struct BenchOpts {
    /// Tiny trace/cycle budgets for CI plumbing checks.
    pub smoke: bool,
    /// Directory the `BENCH_*.json` artifacts are written to.
    pub out: PathBuf,
    /// Run only the named suite (`pdn` or `loop`); `None` runs both.
    /// Useful for regenerating one baseline without paying for the other.
    pub suite: Option<String>,
    /// Prior baseline to diff against: a `BENCH_*.json` file, or a
    /// directory holding one per suite. Per-point throughput deltas are
    /// printed, and any drop past [`tolerance`](BenchOpts::tolerance)
    /// fails the run.
    pub compare: Option<PathBuf>,
    /// Allowed fractional throughput regression against the `compare`
    /// baseline before the run fails (0.25 = a point may be up to 25%
    /// slower). The runners are noisy single-core machines, so the
    /// default is generous; tighten it on quiet hardware.
    pub tolerance: f64,
}

impl Default for BenchOpts {
    fn default() -> BenchOpts {
        BenchOpts {
            smoke: false,
            out: PathBuf::from(DEFAULT_PERF_DIR),
            suite: None,
            compare: None,
            tolerance: DEFAULT_TOLERANCE,
        }
    }
}

/// Default `--tolerance`: allowed fractional slowdown vs. a `--compare`
/// baseline.
pub const DEFAULT_TOLERANCE: f64 = 0.25;

/// Default artifact directory for perf baselines.
pub const DEFAULT_PERF_DIR: &str = "results/perf";

/// Schema version of the `BENCH_*.json` artifacts. Version 2 added
/// `ns_per_cycle` per point and the `recorded_trace` loop path with its
/// `recording_overhead_frac` summary. Version 3 added the
/// `snapshot_save` / `snapshot_restore` loop points and the
/// `snapshot_bytes*` / `snapshot_*_mb_per_sec` summary entries.
/// Version 4 added the `lane_w4` / `lane_w8` batched-loop points (a
/// point's `cycles` is the *aggregate* simulated lane-cycles per
/// iteration) and the `lane_speedup_w*` summary ratios. Version 5 added
/// the `BENCH_serve.json` suite emitted by the `voltctl-serve` load
/// generator (a serve point's `cycles` counts grid cells completed, and
/// the summary carries latency percentiles plus the serve-vs-batch
/// wall-clock ratio over an identical request mix). Version 6 added
/// `latency_p999_ms` to the serve summary, completing the
/// p50/p90/p99/p999 set the live `/metrics` plane also exposes.
pub const BENCH_SCHEMA: u64 = 6;

/// Perf-smoke gate: the batched lane path must beat the scalar
/// controlled loop by at least this factor *within the same run*. A
/// ratio, not an absolute time, so machine speed cancels out and the
/// gate holds on slow shared runners.
pub const MIN_LANE_SPEEDUP: f64 = 1.5;

/// One measured point: a named code path at a kernel size (0 taps for
/// paths with no kernel, e.g. the state-space stepper or the loop suite).
#[derive(Debug, Clone)]
pub struct BenchPoint {
    /// Code path measured (`direct`, `fft`, `stream`, `state_space`, …).
    pub path: &'static str,
    /// Convolution taps (0 where not applicable).
    pub kernel_taps: usize,
    /// Simulated cycles per iteration.
    pub cycles: u64,
    /// Median wall-clock nanoseconds per iteration.
    pub wall_ns: f64,
    /// Best (minimum) wall-clock nanoseconds per iteration.
    pub best_ns: f64,
    /// Simulated cycles per wall-clock second, from the median.
    pub cycles_per_sec: f64,
    /// Median wall-clock nanoseconds per simulated cycle — the number
    /// overhead comparisons are made in.
    pub ns_per_cycle: f64,
}

impl BenchPoint {
    fn from_result(
        path: &'static str,
        kernel_taps: usize,
        cycles: u64,
        r: voltctl_telemetry::stopwatch::BenchResult,
    ) -> BenchPoint {
        let cycles_per_sec = if r.median_ns_per_iter > 0.0 {
            cycles as f64 * 1e9 / r.median_ns_per_iter
        } else {
            f64::NAN
        };
        let ns_per_cycle = if cycles > 0 {
            r.median_ns_per_iter / cycles as f64
        } else {
            f64::NAN
        };
        BenchPoint {
            path,
            kernel_taps,
            cycles,
            wall_ns: r.median_ns_per_iter,
            best_ns: r.best_ns_per_iter,
            cycles_per_sec,
            ns_per_cycle,
        }
    }

    fn is_sane(&self) -> bool {
        self.wall_ns.is_finite()
            && self.wall_ns > 0.0
            && self.cycles_per_sec.is_finite()
            && self.cycles_per_sec > 0.0
    }
}

/// A completed suite ready for export.
#[derive(Debug, Clone)]
pub struct BenchSuite {
    /// Suite name (`pdn` or `loop`); the artifact is `BENCH_<name>.json`.
    pub name: &'static str,
    /// Whether smoke budgets were used.
    pub smoke: bool,
    /// Measured points.
    pub points: Vec<BenchPoint>,
    /// Suite-level derived metrics (speedups, cache costs).
    pub summary: Vec<(&'static str, f64)>,
}

impl BenchSuite {
    /// Paths whose points fail the NaN/zero-throughput check.
    pub fn insane_points(&self) -> Vec<String> {
        self.points
            .iter()
            .filter(|p| !p.is_sane())
            .map(|p| format!("{}/{} taps", p.path, p.kernel_taps))
            .collect()
    }

    /// Renders the machine-readable JSON artifact (single object; every
    /// non-finite number becomes `null` so the file always parses).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"bench\": \"{}\",", self.name);
        let _ = writeln!(s, "  \"schema\": {BENCH_SCHEMA},");
        let _ = writeln!(s, "  \"smoke\": {},", self.smoke);
        let _ = writeln!(s, "  \"points\": [");
        for (k, p) in self.points.iter().enumerate() {
            let _ = writeln!(
                s,
                "    {{\"path\": \"{}\", \"kernel_taps\": {}, \"cycles\": {}, \
                 \"wall_ns\": {}, \"best_ns\": {}, \"cycles_per_sec\": {}, \
                 \"ns_per_cycle\": {}}}{}",
                p.path,
                p.kernel_taps,
                p.cycles,
                json_num(p.wall_ns),
                json_num(p.best_ns),
                json_num(p.cycles_per_sec),
                json_num(p.ns_per_cycle),
                if k + 1 < self.points.len() { "," } else { "" }
            );
        }
        let _ = writeln!(s, "  ],");
        let _ = writeln!(s, "  \"summary\": {{");
        for (k, (name, value)) in self.summary.iter().enumerate() {
            let _ = writeln!(
                s,
                "    \"{}\": {}{}",
                name,
                json_num(*value),
                if k + 1 < self.summary.len() { "," } else { "" }
            );
        }
        let _ = writeln!(s, "  }}");
        let _ = write!(s, "}}");
        s
    }
}

fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// A deterministic replay-style trace: a resonant square train with
/// seeded jitter, the workload class the convolution paths exist for.
fn bench_trace(model: &PdnModel, cycles: usize) -> Vec<f64> {
    let period = model.resonant_period_cycles().max(2);
    let mut rng = Rng::new(0x9e3779b97f4a7c15);
    (0..cycles)
        .map(|k| {
            let base = if (k / (period / 2)).is_multiple_of(2) {
                42.0
            } else {
                6.0
            };
            base + 3.0 * rng.next_f64()
        })
        .collect()
}

/// The PDN suite: convolution paths per kernel size + kernel-cache cost.
pub fn bench_pdn(smoke: bool) -> BenchSuite {
    let (trace_cycles, samples, iters) = if smoke { (4096, 2, 1) } else { (65536, 5, 1) };
    let model = PdnModel::paper_default().expect("paper parameters are valid");
    let trace = bench_trace(&model, trace_cycles);
    let v_nom = model.v_nominal();

    // The paper-default kernel length anchors the size sweep: half, full,
    // and double, all exact truncations of one long pulse response.
    let paper_taps = convolve::kernel_for(&model, 1e-6).len();
    let sizes = [paper_taps / 4, paper_taps / 2, paper_taps, paper_taps * 2];
    let long_kernel = pulse_response(&model, paper_taps * 2);

    let mut points = Vec::new();
    let mut direct_at_paper = f64::NAN;
    let mut fft_at_paper = f64::NAN;
    for &taps in &sizes {
        let kernel = &long_kernel[..taps];
        let d = bench(&format!("pdn.direct.k{taps}"), samples, iters, || {
            convolve::convolve_full(kernel, &trace, v_nom)
        });
        let f = bench(&format!("pdn.fft.k{taps}"), samples, iters, || {
            convolve::convolve_full_fft(kernel, &trace, v_nom)
        });
        let s = bench(&format!("pdn.stream.k{taps}"), samples, iters, || {
            let mut conv = convolve::Convolver::new(kernel.to_vec(), v_nom);
            let mut last = 0.0;
            for &i in &trace {
                last = conv.step(i);
            }
            last
        });
        if taps == paper_taps {
            direct_at_paper = d.median_ns_per_iter;
            fft_at_paper = f.median_ns_per_iter;
        }
        let cycles = trace_cycles as u64;
        points.push(BenchPoint::from_result("direct", taps, cycles, d));
        points.push(BenchPoint::from_result("fft", taps, cycles, f));
        points.push(BenchPoint::from_result("stream", taps, cycles, s));
    }

    // The state-space stepper is kernel-independent: one reference point.
    let ss = bench("pdn.state_space", samples, iters, || {
        let mut state = model.discretize();
        let mut last = 0.0;
        for &i in &trace {
            last = state.step(i);
        }
        last
    });
    points.push(BenchPoint::from_result(
        "state_space",
        0,
        trace_cycles as u64,
        ss,
    ));

    // Derivation-cache economics: cold derive vs. warm hit.
    let derive_t0 = Instant::now();
    let derived = convolve::kernel_for(&model, 1e-6);
    let derive_ns = derive_t0.elapsed().as_nanos() as f64;
    let _ = cached_kernel_for(&model, 1e-6); // warm the entry
    let hit_t0 = Instant::now();
    let hits = 64;
    for _ in 0..hits {
        std::hint::black_box(cached_kernel_for(&model, 1e-6));
    }
    let hit_ns = hit_t0.elapsed().as_nanos() as f64 / hits as f64;

    let summary = vec![
        ("trace_cycles", trace_cycles as f64),
        ("paper_default_kernel_taps", paper_taps as f64),
        (
            "fft_speedup_at_paper_default",
            direct_at_paper / fft_at_paper,
        ),
        ("kernel_derive_ns", derive_ns),
        ("kernel_cache_hit_ns", hit_ns),
        ("derived_kernel_taps", derived.len() as f64),
    ];
    BenchSuite {
        name: "pdn",
        smoke,
        points,
        summary,
    }
}

fn spin_program() -> Program {
    let mut b = ProgramBuilder::new("bench-spin");
    b.label("top");
    b.addq_imm(IntReg::R1, IntReg::R1, 1);
    b.br("top");
    b.build().expect("spin program assembles")
}

/// The closed-loop suite: `ControlLoop::step` throughput uncontrolled,
/// controlled, with a live telemetry recorder, with a flight recorder
/// attached (`NullTracer`'s cost is not a point: disabled tracing is
/// compile-time dead code, identical to `uncontrolled`), and with the
/// per-cycle `LoopSample` buffer on.
///
/// The `*_overhead_frac` summary ratios are computed from each path's
/// **best** (minimum) time, not the median: on shared/single-core CI
/// runners the median absorbs scheduler noise that dwarfs the effects
/// being measured, while the minimum is the classic noise-robust
/// estimator of the true cost. Medians are still exported per point.
pub fn bench_loop(smoke: bool) -> BenchSuite {
    let (chunk, samples) = if smoke {
        (5_000u64, 2)
    } else {
        (200_000u64, 9)
    };
    let power = power_model();
    let pdn = pdn_at(2.0);
    let thresholds = Thresholds {
        v_low: 0.97,
        v_high: 1.03,
    };

    let mut uncontrolled = ControlLoop::builder(spin_program())
        .cpu_config(cpu_config())
        .power(power.clone())
        .pdn(pdn.clone())
        .build()
        .expect("uncontrolled loop constructs");
    let u = bench("loop.uncontrolled", samples, 1, || {
        uncontrolled.run(chunk);
        uncontrolled.report().cycles
    });

    let mut controlled = ControlLoop::builder(spin_program())
        .cpu_config(cpu_config())
        .power(power.clone())
        .pdn(pdn.clone())
        .thresholds(thresholds)
        .build()
        .expect("controlled loop constructs");
    let c = bench("loop.controlled", samples, 1, || {
        controlled.run(chunk);
        controlled.report().cycles
    });

    // The lane path at widths 4 and 8: W byte-identical controlled
    // loops never diverge from each other, so one `Cpu::step` + power
    // evaluation per lockstep cycle serves all W lanes and a point's
    // `cycles` is the aggregate W·chunk simulated lane-cycles per
    // iteration. Lane state persists across samples by scattering back
    // to scalar loops and re-gathering, so each iteration pays the same
    // gather/scatter cost the engine's chunk executor pays — the ratio
    // to `controlled` is an honest end-to-end lane speedup.
    let mut lane_points = Vec::new();
    let mut lane_speedups = Vec::new();
    for (w, path, speedup_name) in [
        (4usize, "lane_w4", "lane_speedup_w4"),
        (8, "lane_w8", "lane_speedup_w8"),
    ] {
        let mut held: Option<Vec<ControlLoop>> = Some(
            (0..w)
                .map(|_| {
                    ControlLoop::builder(spin_program())
                        .cpu_config(cpu_config())
                        .power(power.clone())
                        .pdn(pdn.clone())
                        .thresholds(thresholds)
                        .build()
                        .expect("lane loop constructs")
                })
                .collect(),
        );
        let budgets = vec![chunk; w];
        let l = bench(&format!("loop.{path}"), samples, 1, || {
            let loops = held.take().expect("lane loops persist across samples");
            let mut lanes = LaneLoop::gather(loops, &budgets);
            lanes.run();
            let cycles = lanes.report(0).cycles;
            held = Some(lanes.into_loops());
            cycles
        });
        // Best-of-N per simulated cycle on both sides (see below).
        lane_speedups.push((
            speedup_name,
            (c.best_ns_per_iter / chunk as f64) / (l.best_ns_per_iter / (w as u64 * chunk) as f64),
        ));
        lane_points.push(BenchPoint::from_result(path, 0, w as u64 * chunk, l));
    }

    let mut recorded = ControlLoop::builder(spin_program())
        .cpu_config(cpu_config())
        .power(power.clone())
        .pdn(pdn.clone())
        .recorder(MemoryRecorder::new())
        .build()
        .expect("recorded loop constructs");
    let r = bench("loop.recorded", samples, 1, || {
        recorded.run(chunk);
        recorded.report().cycles
    });

    let mut traced = ControlLoop::builder(spin_program())
        .cpu_config(cpu_config())
        .power(power.clone())
        .pdn(pdn.clone())
        .tracer(FlightRecorder::new(voltctl_trace::DEFAULT_WINDOW))
        .build()
        .expect("traced loop constructs");
    let t = bench("loop.traced", samples, 1, || {
        traced.run(chunk);
        traced.report().cycles
    });

    // Snapshot economics: how long a mid-run save/restore takes and how
    // large the state is, per simulated cycle already covered — the
    // numbers that size `run --shards` checkpoint overhead. The restore
    // path pays for the full builder rebuild (that is what a resume
    // costs); `cycles` on both points is the state's cycle count, so
    // `ns_per_cycle` reads as amortized checkpoint cost per simulated
    // cycle.
    let state_cycles = controlled.report().cycles;
    let snapshot = controlled.save();
    let snapshot_bytes = snapshot.len();
    let sv = bench("loop.snapshot_save", samples, 1, || controlled.save().len());
    let rs = bench("loop.snapshot_restore", samples, 1, || {
        ControlLoop::builder(spin_program())
            .cpu_config(cpu_config())
            .power(power.clone())
            .pdn(pdn.clone())
            .thresholds(thresholds)
            .restore(&snapshot)
            .expect("snapshot restores")
            .report()
            .cycles
    });

    // The per-cycle LoopSample buffer (`record_trace`) is the fourth
    // observability path; draining it per iteration keeps memory flat
    // and charges the consumer-side cost the real users (fig11's CSV
    // export, waveform scenarios) also pay.
    let mut recording = ControlLoop::builder(spin_program())
        .cpu_config(cpu_config())
        .power(power)
        .pdn(pdn)
        .record_trace(true)
        .build()
        .expect("recording loop constructs");
    let rt = bench("loop.recorded_trace", samples, 1, || {
        recording.run(chunk);
        recording.take_trace().len()
    });

    let mut points = vec![
        BenchPoint::from_result("uncontrolled", 0, chunk, u),
        BenchPoint::from_result("controlled", 0, chunk, c),
    ];
    points.extend(lane_points);
    points.extend([
        BenchPoint::from_result("recorded", 0, chunk, r),
        BenchPoint::from_result("traced", 0, chunk, t),
        BenchPoint::from_result("recorded_trace", 0, chunk, rt),
        BenchPoint::from_result("snapshot_save", 0, state_cycles, sv),
        BenchPoint::from_result("snapshot_restore", 0, state_cycles, rs),
    ]);
    // Best-of-N ratios: see the doc comment — the minimum is the
    // noise-robust estimator on shared runners, medians are not.
    let telemetry_overhead = r.best_ns_per_iter / u.best_ns_per_iter - 1.0;
    let tracing_overhead = t.best_ns_per_iter / u.best_ns_per_iter - 1.0;
    let recording_overhead = rt.best_ns_per_iter / u.best_ns_per_iter - 1.0;
    // MB/s from best-of-N for the same noise-robustness reason.
    let save_mb_per_sec = snapshot_bytes as f64 * 1e3 / sv.best_ns_per_iter;
    let restore_mb_per_sec = snapshot_bytes as f64 * 1e3 / rs.best_ns_per_iter;
    let mut summary = vec![
        ("chunk_cycles", chunk as f64),
        ("telemetry_overhead_frac", telemetry_overhead),
        ("tracing_overhead_frac", tracing_overhead),
        ("recording_overhead_frac", recording_overhead),
        ("snapshot_bytes", snapshot_bytes as f64),
        (
            "snapshot_bytes_per_cycle",
            snapshot_bytes as f64 / state_cycles as f64,
        ),
        ("snapshot_save_mb_per_sec", save_mb_per_sec),
        ("snapshot_restore_mb_per_sec", restore_mb_per_sec),
    ];
    summary.extend(lane_speedups);
    BenchSuite {
        name: "loop",
        smoke,
        points,
        summary,
    }
}

/// Runs both suites, writes `BENCH_pdn.json` and `BENCH_loop.json` under
/// `opts.out`, and returns the artifact paths.
///
/// # Errors
///
/// Returns a description of every NaN/zero-throughput point (the
/// artifacts are still written first so CI can upload them), or the I/O
/// error message if writing failed.
pub fn run(opts: &BenchOpts) -> Result<Vec<PathBuf>, String> {
    let started = Instant::now();
    let mut suites = Vec::new();
    if opts.suite.as_deref().is_none_or(|s| s == "pdn") {
        suites.push(bench_pdn(opts.smoke));
    }
    if opts.suite.as_deref().is_none_or(|s| s == "loop") {
        suites.push(bench_loop(opts.smoke));
    }
    if suites.is_empty() {
        return Err(format!("unknown bench suite {:?}", opts.suite));
    }
    // Baselines load *before* the artifacts are (over)written: comparing
    // against the default out directory — the regenerate-in-place
    // workflow — must diff against the prior run, not the file this one
    // just wrote.
    let mut baselines = Vec::new();
    if let Some(base) = &opts.compare {
        for suite in &suites {
            baselines.push(load_baseline(base, suite.name)?);
        }
    }
    let mut paths = Vec::new();
    let mut failures = Vec::new();
    for suite in &suites {
        let path = write_suite(&opts.out, suite).map_err(|e| {
            format!(
                "failed to write BENCH_{}.json under {}: {e}",
                suite.name,
                opts.out.display()
            )
        })?;
        eprintln!("[voltctl-exp] wrote {}", path.display());
        paths.push(path);
        for bad in suite.insane_points() {
            failures.push(format!("BENCH_{}: {bad}", suite.name));
        }
        // Perf-smoke lane gate: batched vs. scalar within the same run.
        if suite.name == "loop" {
            let best = suite
                .summary
                .iter()
                .filter(|(n, _)| n.starts_with("lane_speedup_"))
                .map(|(_, v)| *v)
                .fold(f64::NAN, f64::max);
            if best.is_nan() || best < MIN_LANE_SPEEDUP {
                failures.push(format!(
                    "BENCH_loop: best lane speedup {best:.2}x is below the {MIN_LANE_SPEEDUP}x gate"
                ));
            }
        }
    }

    // Baseline diff: per-point throughput deltas against the prior
    // artifact, failing on any drop past the tolerance.
    if let Some(base) = &opts.compare {
        for (suite, old) in suites.iter().zip(&baselines) {
            match old {
                Some(old) => {
                    let diff = compare_suite(suite, old, opts.tolerance);
                    print!("{}", diff.rendered);
                    failures.extend(diff.regressions);
                }
                None => eprintln!(
                    "[voltctl-exp] no {} baseline under {} — skipping compare",
                    suite.name,
                    base.display()
                ),
            }
        }
    }

    // Provenance: baselines are regenerate-in-place, so their manifest
    // is too (plain overwrite, not the -N writer).
    let mut manifest = crate::manifest::Manifest::new(match opts.suite.as_deref() {
        Some(s) => format!("bench --suite {s}"),
        None => "bench".to_string(),
    });
    manifest.smoke = opts.smoke;
    manifest.wall(started.elapsed());
    for path in &paths {
        manifest.artifact(path);
    }
    match manifest.write_over(&opts.out) {
        Ok(path) => eprintln!("[voltctl-exp] wrote {}", path.display()),
        Err(e) => {
            return Err(format!(
                "failed to write manifest.json under {}: {e}",
                opts.out.display()
            ))
        }
    }

    if failures.is_empty() {
        Ok(paths)
    } else {
        Err(format!(
            "NaN/zero-throughput points: {}",
            failures.join(", ")
        ))
    }
}

/// A prior suite loaded from a `BENCH_*.json` artifact (any schema —
/// every version has carried `path`/`kernel_taps`/`cycles_per_sec`).
#[derive(Debug)]
struct OldSuite {
    origin: PathBuf,
    smoke: Option<bool>,
    points: Vec<(String, usize, Option<f64>)>,
}

/// Loads the baseline for `suite_name` from `base`: a directory holding
/// `BENCH_<name>.json`, or a single artifact file (skipped with
/// `Ok(None)` when it describes a different suite, so `--compare
/// OLD.json` composes with running both suites).
///
/// # Errors
///
/// Unreadable or malformed JSON is an error; a missing per-suite file
/// under a directory is `Ok(None)`.
fn load_baseline(base: &Path, suite_name: &str) -> Result<Option<OldSuite>, String> {
    let path = if base.is_dir() {
        let p = base.join(format!("BENCH_{suite_name}.json"));
        if !p.exists() {
            return Ok(None);
        }
        p
    } else {
        base.to_path_buf()
    };
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let json = voltctl_check::Json::parse(&text)
        .map_err(|e| format!("{} does not parse: {e}", path.display()))?;
    match json.get("bench").and_then(|b| b.as_str()) {
        Some(name) if name == suite_name => {}
        Some(_) => return Ok(None),
        None => return Err(format!("{}: no \"bench\" field", path.display())),
    }
    let points = json
        .get("points")
        .and_then(|p| p.as_arr())
        .ok_or_else(|| format!("{}: no \"points\" array", path.display()))?
        .iter()
        .filter_map(|p| {
            Some((
                p.get("path")?.as_str()?.to_string(),
                p.get("kernel_taps")?.as_f64()? as usize,
                p.get("cycles_per_sec").and_then(|v| v.as_f64()),
            ))
        })
        .collect();
    Ok(Some(OldSuite {
        origin: path,
        smoke: json.get("smoke").and_then(|s| s.as_bool()),
        points,
    }))
}

/// A rendered baseline diff plus the regressions it found.
struct CompareOutcome {
    rendered: String,
    regressions: Vec<String>,
}

/// Diffs the current suite against a loaded baseline, point by point
/// (matched on `path` + `kernel_taps`). A point is a regression when
/// its throughput dropped by more than `tolerance`; new, dropped, and
/// unmeasurable (`null`) points are annotated but never fail.
fn compare_suite(suite: &BenchSuite, old: &OldSuite, tolerance: f64) -> CompareOutcome {
    let mut s = String::new();
    let mut regressions = Vec::new();
    let _ = writeln!(
        s,
        "bench {} vs {} (tolerance {:.0}%)",
        suite.name,
        old.origin.display(),
        tolerance * 100.0
    );
    if old.smoke.is_some_and(|o| o != suite.smoke) {
        let _ = writeln!(
            s,
            "  warning: smoke={} now vs smoke={} in the baseline — deltas compare different budgets",
            suite.smoke,
            old.smoke.unwrap()
        );
    }
    let _ = writeln!(
        s,
        "  {:<16} {:>5}  {:>12}  {:>12}  {:>8}",
        "path", "taps", "old cyc/s", "new cyc/s", "delta"
    );
    for p in &suite.points {
        let prior = old
            .points
            .iter()
            .find(|(path, taps, _)| *path == p.path && *taps == p.kernel_taps);
        let (old_txt, delta_txt) = match prior {
            Some((_, _, Some(old_cps))) if p.cycles_per_sec.is_finite() && *old_cps > 0.0 => {
                let delta = p.cycles_per_sec / old_cps - 1.0;
                if delta < -tolerance {
                    regressions.push(format!(
                        "BENCH_{}: {}/{} taps {:.1}% below baseline (tolerance {:.0}%)",
                        suite.name,
                        p.path,
                        p.kernel_taps,
                        -delta * 100.0,
                        tolerance * 100.0
                    ));
                }
                (format!("{old_cps:.3e}"), format!("{:+.1}%", delta * 100.0))
            }
            Some(_) => ("null".to_string(), "n/a".to_string()),
            None => ("-".to_string(), "new".to_string()),
        };
        let _ = writeln!(
            s,
            "  {:<16} {:>5}  {:>12}  {:>12}  {:>8}",
            p.path,
            p.kernel_taps,
            old_txt,
            format!("{:.3e}", p.cycles_per_sec),
            delta_txt
        );
    }
    for (path, taps, _) in &old.points {
        if !suite
            .points
            .iter()
            .any(|p| p.path == *path && p.kernel_taps == *taps)
        {
            let _ = writeln!(s, "  {path:<16} {taps:>5}  (dropped from this run)");
        }
    }
    CompareOutcome {
        rendered: s,
        regressions,
    }
}

/// Writes one suite's artifact, creating the directory as needed.
fn write_suite(dir: &Path, suite: &BenchSuite) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("BENCH_{}.json", suite.name));
    std::fs::write(&path, suite.to_json())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pdn_suite_covers_kernel_sizes_and_paths() {
        let suite = bench_pdn(true);
        assert_eq!(suite.name, "pdn");
        assert!(suite.insane_points().is_empty(), "{:?}", suite.points);
        // >= 3 kernel-size points per convolution path.
        for path in ["direct", "fft", "stream"] {
            let sizes: std::collections::BTreeSet<usize> = suite
                .points
                .iter()
                .filter(|p| p.path == path)
                .map(|p| p.kernel_taps)
                .collect();
            assert!(sizes.len() >= 3, "{path} has sizes {sizes:?}");
        }
        assert!(suite.points.iter().any(|p| p.path == "state_space"));
        let speedup = suite
            .summary
            .iter()
            .find(|(n, _)| *n == "fft_speedup_at_paper_default")
            .unwrap()
            .1;
        assert!(speedup.is_finite() && speedup > 0.0);
    }

    #[test]
    fn loop_suite_measures_all_variants() {
        let suite = bench_loop(true);
        assert!(suite.insane_points().is_empty(), "{:?}", suite.points);
        let paths: Vec<&str> = suite.points.iter().map(|p| p.path).collect();
        assert_eq!(
            paths,
            [
                "uncontrolled",
                "controlled",
                "lane_w4",
                "lane_w8",
                "recorded",
                "traced",
                "recorded_trace",
                "snapshot_save",
                "snapshot_restore"
            ]
        );
        // A lane point's `cycles` is the aggregate over all lanes.
        let chunk = suite.points[0].cycles;
        let w8 = suite.points.iter().find(|p| p.path == "lane_w8").unwrap();
        assert_eq!(w8.cycles, 8 * chunk);
        for p in &suite.points {
            assert!(
                (p.ns_per_cycle - p.wall_ns / p.cycles as f64).abs() < 1e-9,
                "{}: ns_per_cycle derives from wall_ns",
                p.path
            );
        }
        for key in [
            "telemetry_overhead_frac",
            "recording_overhead_frac",
            "snapshot_bytes",
            "snapshot_bytes_per_cycle",
            "snapshot_save_mb_per_sec",
            "snapshot_restore_mb_per_sec",
            "lane_speedup_w4",
            "lane_speedup_w8",
        ] {
            let v = suite.summary.iter().find(|(n, _)| *n == key).unwrap().1;
            assert!(v.is_finite(), "{key} must be measured");
        }
        let bytes = suite
            .summary
            .iter()
            .find(|(n, _)| *n == "snapshot_bytes")
            .unwrap()
            .1;
        assert!(bytes > 0.0, "a mid-run snapshot is never empty");
    }

    #[test]
    fn json_is_well_formed_and_nan_safe() {
        let suite = BenchSuite {
            name: "pdn",
            smoke: true,
            points: vec![BenchPoint {
                path: "direct",
                kernel_taps: 8,
                cycles: 100,
                wall_ns: f64::NAN,
                best_ns: 1.0,
                cycles_per_sec: 0.0,
                ns_per_cycle: f64::NAN,
            }],
            summary: vec![("x", f64::INFINITY)],
        };
        let json = suite.to_json();
        assert!(json.contains("\"wall_ns\": null"));
        assert!(json.contains("\"x\": null"));
        assert!(!json.contains("NaN") && !json.contains("inf"));
        // Balanced braces/brackets (cheap well-formedness probe).
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
        assert_eq!(suite.insane_points().len(), 1);
    }

    #[test]
    fn run_writes_artifacts_and_validates() {
        let dir = std::env::temp_dir().join(format!("voltctl-bench-test-{}", std::process::id()));
        let opts = BenchOpts {
            smoke: true,
            out: dir.clone(),
            ..BenchOpts::default()
        };
        let paths = run(&opts).expect("smoke bench must produce sane throughput");
        assert_eq!(paths.len(), 2);
        for (path, name) in paths.iter().zip(["pdn", "loop"]) {
            let contents = std::fs::read_to_string(path).unwrap();
            assert!(contents.contains(&format!("\"bench\": \"{name}\"")));
            assert!(contents.contains("\"cycles_per_sec\""));
            assert!(contents.contains("\"ns_per_cycle\""));
            assert!(contents.contains(&format!("\"schema\": {BENCH_SCHEMA}")));
        }
        // The baseline directory is self-describing: a manifest lists
        // both artifacts with their sizes.
        let manifest = std::fs::read_to_string(dir.join("manifest.json")).unwrap();
        voltctl_check::Json::parse(&manifest).expect("manifest parses");
        assert!(manifest.contains("\"path\": \"BENCH_pdn.json\""));
        assert!(manifest.contains("\"path\": \"BENCH_loop.json\""));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn tiny_suite(cps: f64) -> BenchSuite {
        BenchSuite {
            name: "loop",
            smoke: true,
            points: vec![BenchPoint {
                path: "controlled",
                kernel_taps: 0,
                cycles: 100,
                wall_ns: 1.0,
                best_ns: 1.0,
                cycles_per_sec: cps,
                ns_per_cycle: 1.0,
            }],
            summary: vec![],
        }
    }

    #[test]
    fn compare_flags_regressions_past_tolerance_only() {
        let dir = std::env::temp_dir().join(format!("voltctl-bench-cmp-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let baseline = tiny_suite(1000.0);
        std::fs::write(dir.join("BENCH_loop.json"), baseline.to_json()).unwrap();

        // 10% down, 25% tolerance: annotated, not failed.
        let ok = load_baseline(&dir, "loop").unwrap().unwrap();
        let diff = compare_suite(&tiny_suite(900.0), &ok, 0.25);
        assert!(diff.regressions.is_empty(), "{:?}", diff.regressions);
        assert!(diff.rendered.contains("-10.0%"), "{}", diff.rendered);

        // 40% down: regression.
        let diff = compare_suite(&tiny_suite(600.0), &ok, 0.25);
        assert_eq!(diff.regressions.len(), 1);
        assert!(diff.regressions[0].contains("40.0% below baseline"));

        // Faster is never a regression.
        let diff = compare_suite(&tiny_suite(2000.0), &ok, 0.25);
        assert!(diff.regressions.is_empty());
        assert!(diff.rendered.contains("+100.0%"));

        // A single-file baseline for a different suite is skipped.
        assert!(load_baseline(&dir.join("BENCH_loop.json"), "pdn")
            .unwrap()
            .is_none());
        // A missing per-suite file under a directory is skipped too.
        assert!(load_baseline(&dir, "pdn").unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compare_annotates_new_and_dropped_points() {
        let mut old = tiny_suite(1000.0);
        old.points[0].path = "uncontrolled";
        let dir = std::env::temp_dir().join(format!("voltctl-bench-cmp2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("BENCH_loop.json"), old.to_json()).unwrap();
        let old = load_baseline(&dir, "loop").unwrap().unwrap();
        let diff = compare_suite(&tiny_suite(1000.0), &old, 0.25);
        assert!(diff.regressions.is_empty());
        assert!(diff.rendered.contains("new"), "{}", diff.rendered);
        assert!(diff.rendered.contains("dropped from this run"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
