//! The golden-snapshot harness: `voltctl-exp golden [--bless]`.
//!
//! Every registered scenario renders a deterministic report (the
//! engine's byte-identical-for-any-`--jobs` contract), which makes the
//! full registry snapshot-testable: render each scenario in smoke mode,
//! compare byte-for-byte against the committed snapshot under
//! `results/golden/<id>.txt`, and print a minimal line-level diff on any
//! mismatch. `--bless` rewrites the snapshots instead — the explicit,
//! reviewable act of accepting a report change.
//!
//! Smoke mode is deliberate: snapshot runs must be fast enough for CI
//! and for a pre-commit reflex, and smoke budgets exercise every
//! scenario's full rendering path without the minutes-class sweeps.

use crate::engine::{run_scenario, Ctx, Scenario, TraceSpec};
use crate::scenarios::{find, registry};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use voltctl_check::line_diff;

/// The id of the forensics-report snapshot: not a registry scenario but
/// the trace pipeline run over `fig08_stressmark` in smoke mode, pinning
/// the flight recorder, attribution, and report rendering byte-for-byte.
pub const TRACE_GOLDEN_ID: &str = "trace_fig08_stressmark";

/// Configuration for one golden run.
#[derive(Debug, Clone)]
pub struct GoldenOpts {
    /// Rewrite snapshots instead of comparing against them.
    pub bless: bool,
    /// Worker threads per scenario grid.
    pub jobs: usize,
    /// Snapshot directory.
    pub dir: PathBuf,
    /// Scenario ids to cover; empty means the whole registry.
    pub ids: Vec<String>,
}

impl Default for GoldenOpts {
    fn default() -> GoldenOpts {
        GoldenOpts {
            bless: false,
            jobs: crate::engine::default_jobs(),
            dir: default_dir(),
            ids: Vec::new(),
        }
    }
}

/// The default snapshot directory: `<workspace root>/results/golden`.
pub fn default_dir() -> PathBuf {
    voltctl_check::persist::workspace_root()
        .join("results")
        .join("golden")
}

/// One scenario's snapshot verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Snapshot matched byte-for-byte.
    Match,
    /// Snapshot rewritten by `--bless`.
    Blessed,
    /// No committed snapshot exists yet.
    Missing,
    /// Report and snapshot differ; the diff is included.
    Differs(String),
}

/// The outcome of a golden run: per-scenario verdicts in registry order.
#[derive(Debug)]
pub struct GoldenOutcome {
    /// `(scenario id, verdict)` pairs.
    pub verdicts: Vec<(&'static str, Verdict)>,
}

impl GoldenOutcome {
    /// Whether every scenario matched (or was blessed).
    pub fn is_clean(&self) -> bool {
        self.verdicts
            .iter()
            .all(|(_, v)| matches!(v, Verdict::Match | Verdict::Blessed))
    }

    /// A human-readable summary; mismatch diffs included.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (id, verdict) in &self.verdicts {
            match verdict {
                Verdict::Match => writeln!(out, "golden: {id}: ok").unwrap(),
                Verdict::Blessed => writeln!(out, "golden: {id}: blessed").unwrap(),
                Verdict::Missing => writeln!(
                    out,
                    "golden: {id}: MISSING snapshot (run `voltctl-exp golden --bless`)"
                )
                .unwrap(),
                Verdict::Differs(diff) => {
                    writeln!(out, "golden: {id}: MISMATCH").unwrap();
                    for line in diff.lines() {
                        writeln!(out, "  {line}").unwrap();
                    }
                }
            }
        }
        let bad = self
            .verdicts
            .iter()
            .filter(|(_, v)| !matches!(v, Verdict::Match | Verdict::Blessed))
            .count();
        writeln!(
            out,
            "golden: {} scenario(s), {} clean, {} failing",
            self.verdicts.len(),
            self.verdicts.len() - bad,
            bad
        )
        .unwrap();
        out
    }
}

fn snapshot_path(dir: &Path, id: &str) -> PathBuf {
    dir.join(format!("{id}.txt"))
}

/// Renders each requested scenario in smoke mode and compares (or, with
/// `--bless`, rewrites) its snapshot.
///
/// # Errors
///
/// Returns `Err` for an unknown scenario id or an unwritable snapshot
/// directory; mismatches are reported through the outcome, not as errors.
pub fn run(opts: &GoldenOpts) -> Result<GoldenOutcome, String> {
    // Registry scenarios plus the forensics-report entry, which has no
    // Scenario of its own: it reruns fig08_stressmark with tracing on
    // and snapshots the rendered forensics instead of the report.
    enum Entry {
        Scenario(&'static dyn Scenario),
        TraceForensics,
    }
    let entries: Vec<Entry> = if opts.ids.is_empty() {
        let mut all: Vec<Entry> = registry().iter().map(|s| Entry::Scenario(*s)).collect();
        all.push(Entry::TraceForensics);
        all
    } else {
        opts.ids
            .iter()
            .map(|id| {
                if id == TRACE_GOLDEN_ID {
                    return Ok(Entry::TraceForensics);
                }
                find(id)
                    .map(Entry::Scenario)
                    .ok_or_else(|| format!("unknown scenario {id:?} (see `voltctl-exp list`)"))
            })
            .collect::<Result<_, _>>()?
    };

    let ctx = Ctx {
        smoke: true,
        ..Ctx::default()
    };
    let mut verdicts = Vec::with_capacity(entries.len());
    for entry in entries {
        let (id, report) = match entry {
            Entry::Scenario(scenario) => (
                scenario.id(),
                run_scenario(scenario, &ctx, opts.jobs).report,
            ),
            Entry::TraceForensics => {
                let traced = Ctx {
                    trace: Some(TraceSpec::default()),
                    ..ctx.clone()
                };
                let scenario = find("fig08_stressmark").expect("fig08_stressmark is registered");
                let out = run_scenario(scenario, &traced, opts.jobs);
                (
                    TRACE_GOLDEN_ID,
                    crate::trace::forensics(&out.trace).render(scenario.id()),
                )
            }
        };
        let path = snapshot_path(&opts.dir, id);
        let verdict = if opts.bless {
            std::fs::create_dir_all(&opts.dir)
                .map_err(|e| format!("cannot create {}: {e}", opts.dir.display()))?;
            std::fs::write(&path, &report)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            Verdict::Blessed
        } else {
            match std::fs::read_to_string(&path) {
                Err(_) => Verdict::Missing,
                Ok(committed) if committed == report => Verdict::Match,
                Ok(committed) => Verdict::Differs(line_diff(&committed, &report)),
            }
        };
        verdicts.push((id, verdict));
    }
    Ok(GoldenOutcome { verdicts })
}
