//! Cycle-budget scaling (`--scale` / `VOLTCTL_SCALE`).
//!
//! Every experiment declares its cycle budgets at paper scale; a single
//! multiplicative factor shrinks them for quick passes
//! (`--scale 0.2`) or stretches them for long runs (`--scale 10`). The
//! factor comes from the `--scale` CLI flag when given, otherwise from
//! the `VOLTCTL_SCALE` environment variable.
//!
//! The environment variable is parsed **once per process** and cached:
//! a malformed value (`VOLTCTL_SCALE=O.2`) warns exactly once on stderr
//! and falls back to 1.0, instead of re-warning at every call site as
//! the old per-binary copies of this logic did.

use std::sync::OnceLock;

/// Minimum cycle budget after scaling: below this the simulated
/// transients dominate and the numbers mean nothing.
pub const MIN_CYCLES: u64 = 1_000;

/// Parses a scale factor. Returns `Err` with a human-readable reason
/// for anything that is not a positive finite number.
pub fn parse_scale(raw: &str) -> Result<f64, String> {
    match raw.trim().parse::<f64>() {
        Ok(s) if s.is_finite() && s > 0.0 => Ok(s),
        _ => Err(format!("{raw:?} is not a positive number")),
    }
}

/// The process-wide scale from `VOLTCTL_SCALE`, read and parsed once.
/// Unset means 1.0; unparseable warns (once) and means 1.0.
pub fn env_scale() -> f64 {
    static SCALE: OnceLock<f64> = OnceLock::new();
    *SCALE.get_or_init(|| match std::env::var("VOLTCTL_SCALE") {
        Err(std::env::VarError::NotPresent) => 1.0,
        Err(e) => {
            voltctl_telemetry::warn(
                "exp.scale",
                &format!("VOLTCTL_SCALE unreadable ({e}); using scale 1.0"),
            );
            1.0
        }
        Ok(raw) => parse_scale(&raw).unwrap_or_else(|reason| {
            voltctl_telemetry::warn(
                "exp.scale",
                &format!("VOLTCTL_SCALE={reason}; using scale 1.0"),
            );
            1.0
        }),
    })
}

/// Applies a scale factor to a default cycle budget, with the
/// [`MIN_CYCLES`] floor.
pub fn scaled_budget(default_cycles: u64, scale: f64) -> u64 {
    ((default_cycles as f64) * scale).max(MIN_CYCLES as f64) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_scales_parse() {
        assert_eq!(parse_scale("1"), Ok(1.0));
        assert_eq!(parse_scale(" 0.5 "), Ok(0.5));
        assert_eq!(parse_scale("10"), Ok(10.0));
    }

    #[test]
    fn invalid_scales_report_reason() {
        for bad in ["O.2", "", "-3", "0", "nan", "inf", "fast"] {
            let err = parse_scale(bad).expect_err(bad);
            assert!(err.contains("not a positive number"), "{err}");
        }
    }

    #[test]
    fn budget_scales_with_floor() {
        assert_eq!(scaled_budget(100_000, 1.0), 100_000);
        assert_eq!(scaled_budget(100_000, 0.5), 50_000);
        assert_eq!(scaled_budget(100, 2.0), MIN_CYCLES, "floor applies");
    }
}
