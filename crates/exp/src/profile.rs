//! The engine self-profiler: wall-clock spans over the experiment
//! pipeline's stages, exported as a folded-stacks file plus a per-stage
//! summary table.
//!
//! The design mirrors the telemetry layer's null-object pattern:
//! [`Profiler`] is a trait with a compile-time `ENABLED` flag,
//! [`NullProfiler`] is the free default (no clock reads, spans compile
//! away), and [`SelfProfiler`] is the live implementation behind
//! `voltctl-exp run --profile`.
//!
//! Span identities are *folded stacks* — frame names joined with `;`,
//! e.g. `exp;fig08_stressmark;grid;job0;traced-controlled` — so the
//! [`SelfProfiler::folded`] output loads directly in
//! [speedscope](https://speedscope.app) ("import from file") or
//! inferno's `flamegraph.pl`-compatible tooling. Sample values are
//! nanoseconds.
//!
//! The stages covered:
//!
//! * `grid;job<j>;<cell>` — each grid cell, tagged with the worker that
//!   ran it;
//! * `merge`, `render`, `export` — the engine's serial tail;
//! * `harness;solve;…` / `harness;calibrate;…` — the memoized solver and
//!   PDN-calibration passes, recorded only on cache misses (hits cost a
//!   lookup; misses are where the seconds go). These record through the
//!   process-global profiler installed by [`install_global`], because
//!   the harness's memoized free functions have no profiler handle.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::report::TextTable;

/// A sink for wall-clock spans, identified by folded-stack frames.
///
/// Implementations must be `Sync`: grid cells record from worker
/// threads with only `&self`.
pub trait Profiler: Sync {
    /// Whether spans around this profiler should read the clock at all.
    /// When `false` the surrounding code paths compile to nothing.
    const ENABLED: bool = true;

    /// Credits `ns` nanoseconds to the span stack `frames`
    /// (outermost frame first).
    fn record(&self, frames: &[&str], ns: u64);
}

/// The disabled profiler: never reads a clock, records nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullProfiler;

impl Profiler for NullProfiler {
    const ENABLED: bool = false;

    #[inline]
    fn record(&self, _frames: &[&str], _ns: u64) {}
}

/// Aggregate statistics for one span stack.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of spans recorded against this stack.
    pub count: u64,
    /// Total nanoseconds across those spans.
    pub total_ns: u64,
}

/// The live profiler: a mutex-guarded map from folded stack to
/// aggregate span statistics. Recording is per-span (cells, stages),
/// not per-cycle, so the lock is far off every hot path.
#[derive(Debug, Default)]
pub struct SelfProfiler {
    spans: Mutex<BTreeMap<String, SpanStat>>,
}

impl Profiler for SelfProfiler {
    fn record(&self, frames: &[&str], ns: u64) {
        let key = frames.join(";");
        let mut spans = self.spans.lock().expect("profiler lock poisoned");
        let stat = spans.entry(key).or_default();
        stat.count += 1;
        stat.total_ns += ns;
    }
}

impl SelfProfiler {
    /// An empty profiler.
    pub fn new() -> SelfProfiler {
        SelfProfiler::default()
    }

    /// Whether anything has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans
            .lock()
            .expect("profiler lock poisoned")
            .is_empty()
    }

    /// A sorted copy of the recorded stacks.
    pub fn stacks(&self) -> Vec<(String, SpanStat)> {
        self.spans
            .lock()
            .expect("profiler lock poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// The folded-stacks rendering: one `stack total_ns` line per
    /// recorded stack, sorted lexicographically. Loadable in speedscope
    /// or by inferno/FlameGraph tooling (values are nanoseconds).
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for (stack, stat) in self.stacks() {
            let _ = writeln!(out, "{stack} {}", stat.total_ns);
        }
        out
    }

    /// The per-stage summary table: stacks grouped by their stage frame
    /// (see [`stage_of`]), with span counts, total milliseconds, and
    /// mean microseconds per span, sorted by total descending.
    ///
    /// Stages can nest (a `solve` span runs *inside* the cell span that
    /// triggered it), so column totals are not additive wall clock.
    pub fn summary(&self) -> String {
        let mut by_stage: BTreeMap<String, SpanStat> = BTreeMap::new();
        for (stack, stat) in self.stacks() {
            let agg = by_stage.entry(stage_of(&stack).to_string()).or_default();
            agg.count += stat.count;
            agg.total_ns += stat.total_ns;
        }
        let mut rows: Vec<(String, SpanStat)> = by_stage.into_iter().collect();
        rows.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(&b.0)));

        let mut t = TextTable::new(["stage", "spans", "total (ms)", "mean (us)"]);
        for (stage, stat) in rows {
            let mean_us = stat.total_ns as f64 / stat.count.max(1) as f64 / 1e3;
            t.row([
                stage,
                stat.count.to_string(),
                format!("{:.3}", stat.total_ns as f64 / 1e6),
                format!("{mean_us:.1}"),
            ]);
        }
        t.render()
    }
}

/// The stage a folded stack belongs to, for the summary table:
/// `exp;<id>;<stage>;…` groups by `<stage>` (grid/merge/render/export),
/// anything else by its second frame (`harness;solve;…` → `solve`).
///
/// The lane executor's sub-stages keep their own rows —
/// `exp;<id>;lanes;gather;…` groups as `lanes;gather` (likewise `step`
/// and `scatter`) — so `run --profile` attributes transpose, lockstep
/// simulation, and result reshaping separately from scalar cell work.
pub fn stage_of(stack: &str) -> &str {
    let mut parts = stack.split(';');
    let first = parts.next().unwrap_or(stack);
    let second = parts.next();
    if first == "exp" {
        let stage = parts.next().or(second).unwrap_or(first);
        if stage == "lanes" {
            if let Some(sub) = parts.next() {
                // `lanes;<sub>` is contiguous within the stack string.
                let start = stage.as_ptr() as usize - stack.as_ptr() as usize;
                let end = sub.as_ptr() as usize + sub.len() - stack.as_ptr() as usize;
                return &stack[start..end];
            }
        }
        stage
    } else {
        second.unwrap_or(first)
    }
}

/// A started span; stopping it credits the elapsed wall clock to a
/// profiler under a folded stack. Construction against a
/// [`NullProfiler`] reads no clock and `stop` is a no-op.
#[derive(Debug, Clone, Copy)]
#[must_use = "a span only measures anything when stopped"]
pub struct Span {
    start: Option<Instant>,
}

impl Span {
    /// Starts a span destined for `_p` (reads the clock only when
    /// `P::ENABLED`).
    pub fn start<P: Profiler>(_p: &P) -> Span {
        Span {
            start: if P::ENABLED {
                Some(Instant::now())
            } else {
                None
            },
        }
    }

    /// Stops the span, crediting its duration to `p` under `frames`.
    pub fn stop<P: Profiler>(self, p: &P, frames: &[&str]) {
        if let Some(start) = self.start {
            p.record(frames, start.elapsed().as_nanos() as u64);
        }
    }
}

static GLOBAL: OnceLock<SelfProfiler> = OnceLock::new();

/// Installs (or returns the already-installed) process-global profiler.
/// `voltctl-exp run --profile` calls this once at startup; the harness's
/// memoized solve/calibrate paths then record their cache-miss work.
pub fn install_global() -> &'static SelfProfiler {
    GLOBAL.get_or_init(SelfProfiler::new)
}

/// The process-global profiler, if [`install_global`] has run. The
/// harness checks this on its slow paths; when profiling is off the
/// cost is one relaxed atomic load per cache miss.
pub fn global() -> Option<&'static SelfProfiler> {
    GLOBAL.get()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_profiler_reads_no_clock() {
        let p = NullProfiler;
        let span = Span::start(&p);
        assert!(span.start.is_none(), "disabled span must not read a clock");
        span.stop(&p, &["a", "b"]);
    }

    #[test]
    fn spans_fold_into_stacks() {
        let p = SelfProfiler::new();
        for _ in 0..3 {
            let span = Span::start(&p);
            std::hint::black_box((0..100).sum::<u64>());
            span.stop(&p, &["exp", "x", "grid", "job0", "cell0"]);
        }
        Span::start(&p).stop(&p, &["exp", "x", "merge"]);
        let stacks = p.stacks();
        assert_eq!(stacks.len(), 2);
        assert_eq!(stacks[0].0, "exp;x;grid;job0;cell0");
        assert_eq!(stacks[0].1.count, 3);
        assert_eq!(stacks[1].0, "exp;x;merge");

        let folded = p.folded();
        assert_eq!(folded.lines().count(), 2);
        for line in folded.lines() {
            let (stack, ns) = line.rsplit_once(' ').expect("stack<space>value");
            assert!(!stack.is_empty());
            ns.parse::<u64>().expect("value parses as nanoseconds");
        }
    }

    #[test]
    fn stage_grouping_is_stable() {
        assert_eq!(stage_of("exp;fig08;grid;job3;cell"), "grid");
        assert_eq!(stage_of("exp;fig14;lanes;gather;chunk0"), "lanes;gather");
        assert_eq!(stage_of("exp;fig14;lanes;step;chunk2"), "lanes;step");
        assert_eq!(stage_of("exp;fig14;lanes;scatter;chunk1"), "lanes;scatter");
        assert_eq!(stage_of("exp;fig14;lanes"), "lanes");
        assert_eq!(stage_of("exp;fig08;merge"), "merge");
        assert_eq!(stage_of("exp;fig08;export"), "export");
        assert_eq!(stage_of("harness;solve;fu-dl1.d2"), "solve");
        assert_eq!(stage_of("harness;calibrate;p200"), "calibrate");
        assert_eq!(stage_of("lonely"), "lonely");
    }

    #[test]
    fn summary_ranks_stages_by_total() {
        let p = SelfProfiler::new();
        p.record(&["exp", "x", "grid", "job0", "a"], 5_000_000);
        p.record(&["exp", "x", "grid", "job1", "b"], 5_000_000);
        p.record(&["exp", "x", "render"], 1_000_000);
        let summary = p.summary();
        let grid_pos = summary.find("grid").expect("grid row");
        let render_pos = summary.find("render").expect("render row");
        assert!(
            grid_pos < render_pos,
            "grid (10ms) ranks above render:\n{summary}"
        );
        assert!(summary.contains("10.000"), "grid total in ms:\n{summary}");
    }

    #[test]
    fn global_profiler_installs_once() {
        assert!(global().is_none() || global().is_some()); // state depends on test order
        let a = install_global() as *const SelfProfiler;
        let b = install_global() as *const SelfProfiler;
        assert_eq!(a, b, "install is idempotent");
        assert!(global().is_some());
    }
}
