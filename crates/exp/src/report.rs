//! Plain-text report rendering shared by every scenario: aligned
//! tables, fixed-height ASCII charts, and percentage formatting.
//! (Hoisted from the old per-binary harness in `voltctl-bench`.)

/// Renders an aligned plain-text table.
#[derive(Debug, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> TextTable {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cell, width = widths[c]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Renders a numeric series as a fixed-height ASCII chart (for the
/// "figure" experiments).
pub fn ascii_chart(values: &[f64], height: usize, width: usize) -> String {
    if values.is_empty() || height == 0 || width == 0 {
        return String::new();
    }
    // Downsample to `width` columns by averaging.
    let cols: Vec<f64> = (0..width)
        .map(|c| {
            let lo = c * values.len() / width;
            let hi = (((c + 1) * values.len()) / width)
                .max(lo + 1)
                .min(values.len());
            values[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect();
    let min = cols.iter().cloned().fold(f64::MAX, f64::min);
    let max = cols.iter().cloned().fold(f64::MIN, f64::max);
    let span = (max - min).max(1e-12);
    let mut grid = vec![vec![' '; width]; height];
    for (c, &v) in cols.iter().enumerate() {
        let r = ((v - min) / span * (height - 1) as f64).round() as usize;
        grid[height - 1 - r][c] = '*';
    }
    let mut out = String::new();
    out.push_str(&format!("{max:10.4} ┐\n"));
    for row in grid {
        out.push_str("           │");
        out.extend(row);
        out.push('\n');
    }
    out.push_str(&format!("{min:10.4} ┘\n"));
    out
}

/// Formats a fraction as a signed percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:+.2}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_table_aligns() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["a", "1"]).row(["longer", "22"]);
        let s = t.render();
        assert!(s.contains("name"));
        assert!(s.contains("longer"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        TextTable::new(["a", "b"]).row(["only one"]);
    }

    #[test]
    fn chart_handles_series() {
        let values: Vec<f64> = (0..100).map(|k| (k as f64 / 10.0).sin()).collect();
        let chart = ascii_chart(&values, 8, 40);
        assert_eq!(chart.lines().count(), 10);
        assert!(chart.contains('*'));
        assert!(ascii_chart(&[], 8, 40).is_empty());
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.0123), "+1.23%");
        assert_eq!(pct(-0.5), "-50.00%");
    }
}
