//! Sharded, resumable scenario execution (`run --shards K` /
//! `run --resume DIR`).
//!
//! A shard is a contiguous slice of a scenario's grid. [`plan_shards`]
//! splits the grid into K slices whose sizes differ by at most one;
//! each completed shard's [`CellResult`]s are serialized into a
//! [`SnapshotKind::Shard`] container (one `.snap` file per shard,
//! written through the never-overwrite
//! [`write_bytes_fresh`](voltctl_telemetry::export::write_bytes_fresh)
//! writer), and the final merge feeds the concatenated results to
//! [`assemble_run`] — exactly the merge+render a single-shot run
//! performs, so the report, telemetry, and trace artifacts are
//! byte-identical to `run` without `--shards` at any `--jobs` value.
//!
//! A resumed run ([`ShardOpts::resume`]) loads every shard whose
//! canonical checkpoint file is present and valid — matching scenario,
//! shard geometry, and [`ctx_fingerprint`] — and recomputes the rest.
//! Invalid checkpoints (truncated, corrupted, version-skewed, or taken
//! under a different context) are *rejected and recomputed*, never
//! half-loaded: decoding is all-or-nothing per file.
//!
//! Checkpoint layout (kind = shard, both sections at
//! [`SHARD_SECTION_VERSION`]):
//!
//! | tag | section | contents                                         |
//! |-----|---------|--------------------------------------------------|
//! | 1   | meta    | scenario id, shard index/count, cell range, grid size, ctx fingerprint + fields |
//! | 2   | cells   | the shard's `CellResult`s (label, row, text, values, recorder, tracer) |

use std::ops::Range;
use std::path::{Path, PathBuf};
use std::time::Instant;

use voltctl_snap::{
    ByteWriter, Pack, SnapError, SnapshotKind, SnapshotReader, SnapshotWriter, Unpack,
};
use voltctl_telemetry::export::write_bytes_fresh;

use crate::engine::{assemble_run_profiled, run_cells_profiled, CellResult, Ctx, RunOutput};
use crate::profile::Profiler;

/// Version stamped on (and required of) every section in a shard
/// checkpoint.
pub const SHARD_SECTION_VERSION: u16 = 1;

/// Section tags of the shard container.
pub mod section {
    /// Shard geometry and run-context provenance.
    pub const META: u16 = 1;
    /// The shard's cell results.
    pub const CELLS: u16 = 2;
}

/// Splits `cells` grid indices into `shards` contiguous ranges whose
/// sizes differ by at most one (earlier shards take the remainder).
/// `shards` is clamped to `[1, cells]`; an empty grid yields one empty
/// shard so the downstream merge still runs.
pub fn plan_shards(cells: usize, shards: usize) -> Vec<Range<usize>> {
    let k = shards.clamp(1, cells.max(1));
    let base = cells / k;
    let rem = cells % k;
    let mut plan = Vec::with_capacity(k);
    let mut start = 0;
    for i in 0..k {
        let len = base + usize::from(i < rem);
        plan.push(start..start + len);
        start += len;
    }
    plan
}

/// Fingerprints the parts of a [`Ctx`] that change cell *results*:
/// scale, smoke, telemetry collection, and the trace window. A
/// checkpoint taken under a different fingerprint holds answers to a
/// different question and is rejected on resume. (`telemetry_out` is
/// deliberately excluded — it moves artifacts, not results.)
pub fn ctx_fingerprint(ctx: &Ctx) -> u64 {
    let mut w = ByteWriter::new();
    w.put_u64(ctx.scale.to_bits());
    w.put_bool(ctx.smoke);
    w.put_bool(ctx.telemetry);
    ctx.trace.map(|t| t.window).pack(&mut w);
    voltctl_snap::fnv1a(w.as_bytes())
}

/// The canonical checkpoint file name for one shard of one scenario.
/// Resume looks for exactly this name; the never-overwrite writer's
/// `-N` suffixed copies from reruns are left alone.
pub fn checkpoint_file(id: &str, shard: usize, shards: usize) -> String {
    format!("{id}.shard{shard}of{shards}.snap")
}

/// Provenance and geometry carried in a shard checkpoint's meta
/// section.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardMeta {
    /// The scenario the cells belong to.
    pub scenario: String,
    /// This shard's index (0-based).
    pub shard: usize,
    /// Total shards in the plan.
    pub shards: usize,
    /// Grid-index range covered: `start..end`.
    pub start: usize,
    /// End of the covered range (exclusive).
    pub end: usize,
    /// Total cells in the scenario's grid when the shard ran.
    pub total_cells: usize,
    /// [`ctx_fingerprint`] of the run context.
    pub fingerprint: u64,
    /// Cycle-budget scale the cells ran at (for `snapshot inspect`).
    pub scale: f64,
    /// Whether smoke budgets were used.
    pub smoke: bool,
    /// Whether telemetry was collected.
    pub telemetry: bool,
    /// Flight-recorder window when tracing was on.
    pub trace_window: Option<usize>,
}

impl ShardMeta {
    /// Builds the meta record for shard `shard` covering `range`.
    pub fn new(
        scenario: &str,
        ctx: &Ctx,
        shard: usize,
        shards: usize,
        range: &Range<usize>,
        total_cells: usize,
    ) -> ShardMeta {
        ShardMeta {
            scenario: scenario.to_string(),
            shard,
            shards,
            start: range.start,
            end: range.end,
            total_cells,
            fingerprint: ctx_fingerprint(ctx),
            scale: ctx.scale,
            smoke: ctx.smoke,
            telemetry: ctx.telemetry,
            trace_window: ctx.trace.map(|t| t.window),
        }
    }
}

impl Pack for ShardMeta {
    fn pack(&self, w: &mut ByteWriter) {
        w.put_str(&self.scenario);
        w.put_usize(self.shard);
        w.put_usize(self.shards);
        w.put_usize(self.start);
        w.put_usize(self.end);
        w.put_usize(self.total_cells);
        w.put_u64(self.fingerprint);
        w.put_f64(self.scale);
        w.put_bool(self.smoke);
        w.put_bool(self.telemetry);
        self.trace_window.pack(w);
    }
}

impl Unpack for ShardMeta {
    fn unpack(r: &mut voltctl_snap::ByteReader<'_>) -> Result<Self, SnapError> {
        let meta = ShardMeta {
            scenario: r.get_str()?,
            shard: r.get_usize()?,
            shards: r.get_usize()?,
            start: r.get_usize()?,
            end: r.get_usize()?,
            total_cells: r.get_usize()?,
            fingerprint: r.get_u64()?,
            scale: r.get_f64()?,
            smoke: r.get_bool()?,
            telemetry: r.get_bool()?,
            trace_window: Unpack::unpack(r)?,
        };
        if meta.shard >= meta.shards {
            return Err(SnapError::Corrupt(format!(
                "shard index {} out of range for {} shard(s)",
                meta.shard, meta.shards
            )));
        }
        if meta.start > meta.end || meta.end > meta.total_cells {
            return Err(SnapError::Corrupt(format!(
                "shard range {}..{} exceeds the {}-cell grid",
                meta.start, meta.end, meta.total_cells
            )));
        }
        Ok(meta)
    }
}

impl Pack for CellResult {
    fn pack(&self, w: &mut ByteWriter) {
        w.put_str(&self.label);
        self.row.pack(w);
        w.put_str(&self.text);
        w.put_usize(self.values.len());
        for (name, value) in &self.values {
            w.put_str(name);
            w.put_f64(*value);
        }
        self.recorder.pack(w);
        self.tracer.pack(w);
    }
}

impl Unpack for CellResult {
    fn unpack(r: &mut voltctl_snap::ByteReader<'_>) -> Result<Self, SnapError> {
        let label = r.get_str()?;
        let row = Unpack::unpack(r)?;
        let text = r.get_str()?;
        let count = r.get_count("cell values")?;
        let mut values = Vec::with_capacity(count);
        for _ in 0..count {
            // Metric names are `&'static str` in the live struct; the
            // process-wide intern pool restores that after a decode.
            let name = voltctl_telemetry::intern::intern_static(&r.get_str()?);
            values.push((name, r.get_f64()?));
        }
        Ok(CellResult {
            label,
            row,
            text,
            values,
            recorder: Unpack::unpack(r)?,
            tracer: Unpack::unpack(r)?,
        })
    }
}

/// Serializes one completed shard into a shard-kind snapshot container.
pub fn encode_checkpoint(meta: &ShardMeta, cells: &[CellResult]) -> Vec<u8> {
    let mut w = SnapshotWriter::new(SnapshotKind::Shard);
    let mut m = ByteWriter::new();
    meta.pack(&mut m);
    w.section(section::META, SHARD_SECTION_VERSION, m);
    let mut c = ByteWriter::new();
    c.put_usize(cells.len());
    for cell in cells {
        cell.pack(&mut c);
    }
    w.section(section::CELLS, SHARD_SECTION_VERSION, c);
    w.finish()
}

/// Decodes a shard checkpoint all-or-nothing: container framing, both
/// sections, and the meta/cells consistency check (`end - start` cells)
/// must all hold before anything is returned.
///
/// # Errors
///
/// Every malformed input maps to a [`SnapError`] naming what failed;
/// no partial state escapes.
pub fn decode_checkpoint(bytes: &[u8]) -> Result<(ShardMeta, Vec<CellResult>), SnapError> {
    let snap = SnapshotReader::parse(bytes)?;
    if snap.kind() != SnapshotKind::Shard {
        return Err(SnapError::Corrupt(format!(
            "expected a shard snapshot, found a {} snapshot",
            snap.kind().name()
        )));
    }
    let read = |tag: u16, what: &'static str| -> Result<voltctl_snap::ByteReader<'_>, SnapError> {
        let sec = snap.require(tag, what)?;
        if sec.version != SHARD_SECTION_VERSION {
            return Err(SnapError::UnsupportedVersion {
                what,
                found: sec.version as u32,
                supported: SHARD_SECTION_VERSION as u32,
            });
        }
        Ok(sec.reader())
    };

    let mut r = read(section::META, "shard meta")?;
    let meta = ShardMeta::unpack(&mut r)?;
    r.expect_end("shard meta")?;

    let mut r = read(section::CELLS, "shard cells")?;
    let count = r.get_count("shard cells")?;
    if count != meta.end - meta.start {
        return Err(SnapError::Corrupt(format!(
            "checkpoint for cells {}..{} carries {count} result(s)",
            meta.start, meta.end
        )));
    }
    let mut cells = Vec::with_capacity(count);
    for _ in 0..count {
        cells.push(CellResult::unpack(&mut r)?);
    }
    r.expect_end("shard cells")?;
    Ok((meta, cells))
}

/// How a sharded run should find and keep its checkpoints.
#[derive(Debug, Clone)]
pub struct ShardOpts {
    /// Shard count. `None` with a resume directory infers the count
    /// from the checkpoints found there (falling back to 1).
    pub shards: Option<usize>,
    /// Directory to load existing checkpoints from (`run --resume`).
    pub resume: Option<PathBuf>,
    /// Directory newly computed shards are checkpointed into.
    pub dir: PathBuf,
}

/// The outcome of a sharded run: the merged output plus shard lineage
/// for the provenance manifest.
#[derive(Debug)]
pub struct ShardRun {
    /// The merged run output — byte-identical to a single-shot run.
    pub output: RunOutput,
    /// Shard count actually used.
    pub shards: usize,
    /// Shards restored from checkpoints instead of recomputed.
    pub loaded: usize,
    /// Checkpoint files written by this invocation.
    pub written: Vec<PathBuf>,
}

/// Infers the shard count from the canonical checkpoint files present
/// for `id` under `dir` (smallest count wins if several plans coexist).
fn infer_shards(dir: &Path, id: &str) -> Option<usize> {
    let prefix = format!("{id}.shard");
    let entries = std::fs::read_dir(dir).ok()?;
    let mut counts: Vec<usize> = entries
        .filter_map(|e| e.ok()?.file_name().into_string().ok())
        .filter_map(|name| {
            let rest = name.strip_prefix(&prefix)?.strip_suffix(".snap")?;
            let (shard, shards) = rest.split_once("of")?;
            let _: usize = shard.parse().ok()?;
            shards.parse().ok()
        })
        .collect();
    counts.sort_unstable();
    counts.into_iter().next()
}

/// Loads one shard's checkpoint if its canonical file exists and its
/// meta matches the expected geometry and context. Returns the cells on
/// success, `None` (after a stderr warning for real mismatches) when
/// the shard must be recomputed. Public so the serve daemon's job
/// runner can resume crash-interrupted (or cancelled) jobs through the
/// same validation path the CLI `--resume` flag uses.
pub fn try_load_shard(dir: &Path, expected: &ShardMeta) -> Option<Vec<CellResult>> {
    let path = dir.join(checkpoint_file(
        &expected.scenario,
        expected.shard,
        expected.shards,
    ));
    let bytes = std::fs::read(&path).ok()?;
    let reject = |why: String| {
        voltctl_telemetry::warn(
            "shard.resume",
            &format!("ignoring {}: {why}; recomputing shard", path.display()),
        );
        None
    };
    match decode_checkpoint(&bytes) {
        Ok((meta, cells)) => {
            if meta != *expected {
                return reject(format!(
                    "checkpoint was taken for {} shard {}/{} cells {}..{} \
                     (fingerprint {:#x}), this run needs shard {}/{} cells {}..{} \
                     (fingerprint {:#x})",
                    meta.scenario,
                    meta.shard,
                    meta.shards,
                    meta.start,
                    meta.end,
                    meta.fingerprint,
                    expected.shard,
                    expected.shards,
                    expected.start,
                    expected.end,
                    expected.fingerprint,
                ));
            }
            Some(cells)
        }
        Err(e) => reject(format!("{e}")),
    }
}

/// Runs `scenario` in shards: each shard's cells fan out across `jobs`
/// workers, completed shards are checkpointed under `opts.dir`, and
/// shards whose checkpoints already exist under `opts.resume` are
/// loaded instead of recomputed. The concatenated results then go
/// through the same grid-order merge and render as a single-shot run.
///
/// # Errors
///
/// Returns a message when a freshly computed checkpoint cannot be
/// written (resume safety would be silently lost otherwise).
pub fn run_sharded<P: Profiler>(
    scenario: &dyn crate::engine::Scenario,
    ctx: &Ctx,
    jobs: usize,
    opts: &ShardOpts,
    profiler: &P,
) -> Result<ShardRun, String> {
    let started = Instant::now();
    let id = scenario.id();
    let total = scenario.cells(ctx).len();
    let jobs = jobs.max(1).min(total.max(1));
    let shards = opts
        .shards
        .or_else(|| infer_shards(opts.resume.as_deref()?, id))
        .unwrap_or(1);
    let plan = plan_shards(total, shards);
    let shards = plan.len();

    let mut results: Vec<CellResult> = Vec::with_capacity(total);
    let mut loaded = 0;
    let mut written = Vec::new();
    for (i, range) in plan.iter().enumerate() {
        let meta = ShardMeta::new(id, ctx, i, shards, range, total);
        let cells = match opts
            .resume
            .as_deref()
            .and_then(|d| try_load_shard(d, &meta))
        {
            Some(cells) => {
                loaded += 1;
                cells
            }
            None => {
                let cells = run_cells_profiled(scenario, ctx, jobs, range.clone(), profiler);
                let bytes = encode_checkpoint(&meta, &cells);
                let path = write_bytes_fresh(&opts.dir, &checkpoint_file(id, i, shards), &bytes)
                    .map_err(|e| {
                        format!(
                            "cannot checkpoint shard {i} of {id} under {}: {e}",
                            opts.dir.display()
                        )
                    })?;
                written.push(path);
                cells
            }
        };
        results.extend(cells);
    }

    let mut output = assemble_run_profiled(scenario, ctx, results, jobs, profiler);
    output.elapsed = started.elapsed();
    Ok(ShardRun {
        output,
        shards,
        loaded,
        written,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Scenario;
    use voltctl_telemetry::Recorder as _;

    struct Grid(usize);

    impl Scenario for Grid {
        fn id(&self) -> &'static str {
            "shard_grid"
        }
        fn title(&self) -> &'static str {
            "shard test grid"
        }
        fn cells(&self, _ctx: &Ctx) -> Vec<String> {
            (0..self.0).map(|k| format!("cell{k}")).collect()
        }
        fn run_cell(&self, _ctx: &Ctx, cell: usize) -> CellResult {
            let mut r = CellResult::new(format!("cell{cell}"));
            r.value("idx", cell as f64);
            r.row = vec![cell.to_string()];
            r.text = format!("ran {cell}");
            r.recorder.counter("cells.run", 1);
            r.recorder.value("cell.index", cell as f64);
            r
        }
        fn render(&self, _ctx: &Ctx, cells: &[CellResult]) -> String {
            cells
                .iter()
                .map(|c| format!("{}={}", c.label, c.require("idx")))
                .collect::<Vec<_>>()
                .join("\n")
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("voltctl-shard-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn plans_are_contiguous_and_balanced() {
        for cells in [0usize, 1, 2, 7, 8, 61] {
            for shards in [1usize, 2, 3, 8, 100] {
                let plan = plan_shards(cells, shards);
                assert!(!plan.is_empty());
                assert!(plan.len() <= shards.max(1));
                assert_eq!(plan[0].start, 0);
                assert_eq!(plan.last().unwrap().end, cells);
                let mut sizes = Vec::new();
                for w in plan.windows(2) {
                    assert_eq!(w[0].end, w[1].start, "contiguous");
                }
                for r in &plan {
                    sizes.push(r.len());
                }
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "{cells} cells / {shards} shards: {sizes:?}");
            }
        }
    }

    #[test]
    fn checkpoint_round_trips_cells_exactly() {
        let ctx = Ctx::default();
        let scenario = Grid(5);
        let range = 1..4;
        let cells = crate::engine::run_cells(&scenario, &ctx, 1, range.clone());
        let meta = ShardMeta::new("shard_grid", &ctx, 0, 2, &range, 5);
        let bytes = encode_checkpoint(&meta, &cells);
        let (meta2, cells2) = decode_checkpoint(&bytes).unwrap();
        assert_eq!(meta, meta2);
        assert_eq!(cells.len(), cells2.len());
        for (a, b) in cells.iter().zip(&cells2) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.row, b.row);
            assert_eq!(a.text, b.text);
            assert_eq!(a.values, b.values);
            assert_eq!(a.recorder.snapshot(), b.recorder.snapshot());
        }
        // Re-encoding the decoded state is bitwise stable.
        assert_eq!(encode_checkpoint(&meta2, &cells2), bytes);
    }

    #[test]
    fn damaged_checkpoints_are_rejected_not_half_loaded() {
        let ctx = Ctx::default();
        let cells = crate::engine::run_cells(&Grid(3), &ctx, 1, 0..3);
        let meta = ShardMeta::new("shard_grid", &ctx, 0, 1, &(0..3), 3);
        let good = encode_checkpoint(&meta, &cells);
        for cut in (0..good.len()).step_by(13) {
            assert!(decode_checkpoint(&good[..cut]).is_err(), "cut at {cut}");
        }
        let mut flipped = good.clone();
        flipped[good.len() / 2] ^= 0x10;
        assert!(decode_checkpoint(&flipped).is_err(), "bit flip undetected");
        // A loop snapshot is not a shard checkpoint.
        let wrong_kind = SnapshotWriter::new(SnapshotKind::Loop).finish();
        let err = decode_checkpoint(&wrong_kind).unwrap_err();
        assert!(
            format!("{err}").contains("expected a shard snapshot"),
            "{err}"
        );
    }

    #[test]
    fn sharded_run_matches_single_shot_and_resumes() {
        let ctx = Ctx {
            telemetry: true,
            ..Ctx::default()
        };
        let scenario = Grid(11);
        let single = crate::engine::run_scenario(&scenario, &ctx, 2);

        let dir = temp_dir("resume");
        let opts = ShardOpts {
            shards: Some(3),
            resume: None,
            dir: dir.clone(),
        };
        let run = run_sharded(&scenario, &ctx, 2, &opts, &crate::profile::NullProfiler).unwrap();
        assert_eq!(run.shards, 3);
        assert_eq!(run.loaded, 0);
        assert_eq!(run.written.len(), 3);
        assert_eq!(run.output.report, single.report);
        assert_eq!(
            run.output.telemetry.snapshot().counters,
            single.telemetry.snapshot().counters
        );

        // Resume with every checkpoint present: nothing recomputed.
        let resumed = run_sharded(
            &scenario,
            &ctx,
            2,
            &ShardOpts {
                shards: None, // inferred from the directory
                resume: Some(dir.clone()),
                dir: dir.clone(),
            },
            &crate::profile::NullProfiler,
        )
        .unwrap();
        assert_eq!(resumed.shards, 3);
        assert_eq!(resumed.loaded, 3);
        assert!(resumed.written.is_empty());
        assert_eq!(resumed.output.report, single.report);

        // Corrupt one checkpoint: that shard (and only it) is recomputed,
        // and the output is still identical.
        let victim = dir.join(checkpoint_file("shard_grid", 1, 3));
        let mut bytes = std::fs::read(&victim).unwrap();
        let at = bytes.len() / 3;
        bytes[at] ^= 0xFF;
        std::fs::write(&victim, &bytes).unwrap();
        let healed = run_sharded(
            &scenario,
            &ctx,
            2,
            &ShardOpts {
                shards: Some(3),
                resume: Some(dir.clone()),
                dir: dir.clone(),
            },
            &crate::profile::NullProfiler,
        )
        .unwrap();
        assert_eq!(healed.loaded, 2);
        assert_eq!(healed.written.len(), 1);
        assert_eq!(healed.output.report, single.report);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fingerprint_tracks_result_shaping_context_only() {
        let base = Ctx::default();
        let scaled = Ctx {
            scale: 0.5,
            ..Ctx::default()
        };
        let smoke = Ctx {
            smoke: true,
            ..Ctx::default()
        };
        let moved = Ctx {
            telemetry_out: PathBuf::from("/elsewhere"),
            ..Ctx::default()
        };
        assert_ne!(ctx_fingerprint(&base), ctx_fingerprint(&scaled));
        assert_ne!(ctx_fingerprint(&base), ctx_fingerprint(&smoke));
        assert_eq!(
            ctx_fingerprint(&base),
            ctx_fingerprint(&moved),
            "artifact destination must not invalidate checkpoints"
        );
    }

    #[test]
    fn context_mismatch_forces_recompute() {
        let dir = temp_dir("ctx-mismatch");
        let scenario = Grid(4);
        let smoke = Ctx {
            smoke: true,
            ..Ctx::default()
        };
        let opts = ShardOpts {
            shards: Some(2),
            resume: None,
            dir: dir.clone(),
        };
        run_sharded(&scenario, &smoke, 1, &opts, &crate::profile::NullProfiler).unwrap();

        // Same shard geometry, different context: checkpoints must not
        // be trusted.
        let full = Ctx::default();
        let resumed = run_sharded(
            &scenario,
            &full,
            1,
            &ShardOpts {
                shards: Some(2),
                resume: Some(dir.clone()),
                dir: dir.clone(),
            },
            &crate::profile::NullProfiler,
        )
        .unwrap();
        assert_eq!(resumed.loaded, 0, "fingerprint mismatch must recompute");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
