//! Back-compat entry point for the deprecated per-figure binaries in
//! `voltctl-bench`: each old `cargo run -p voltctl-bench --bin <id>`
//! binary is now a one-line shim over [`run`].
//!
//! Shims honor the legacy environment interface (`VOLTCTL_SCALE`,
//! `VOLTCTL_TELEMETRY`, `--telemetry-out <dir>`) and run the scenario's
//! grid on all available cores. New workflows should call
//! `voltctl-exp run <id>` instead, which adds `--jobs`, `--scale`,
//! `--smoke`, and multi-scenario runs.

use crate::engine::{default_jobs, run_scenario, Ctx};
use crate::scenarios::find;
use crate::telemetry::{env_mode, export_run, out_dir_from_args, Mode};

/// Runs one scenario by id with legacy environment-driven configuration,
/// printing the report to stdout. Process-exits with status 2 on an
/// unknown id (a shim/registry mismatch, not a user error).
pub fn run(id: &str) {
    let Some(scenario) = find(id) else {
        eprintln!("voltctl-exp: unknown scenario {id:?} (shim out of date?)");
        std::process::exit(2);
    };
    eprintln!(
        "note: `--bin {id}` is a deprecated shim; prefer `cargo run --release -p voltctl-exp -- run {id}`"
    );
    let mut ctx = Ctx::new(crate::scale::env_scale());
    ctx.telemetry = env_mode() != Mode::Off;
    ctx.telemetry_out = out_dir_from_args(std::env::args().skip(1));
    let out = run_scenario(scenario, &ctx, default_jobs());
    print!("{}", out.report);
    export_run(id, &out.telemetry, env_mode(), &ctx.telemetry_out);
}
