//! voltctl-exp: the unified experiment engine.
//!
//! Every table, figure, and ablation of the reproduction is a
//! [`Scenario`]: a named parameter grid plus a per-cell run function and
//! a renderer. The [`engine`] fans a scenario's grid across worker
//! threads (`std::thread::scope`, zero dependencies) and reassembles a
//! deterministic report — byte-identical for any `--jobs` value.
//!
//! The `voltctl-exp` binary is the front door:
//!
//! ```text
//! voltctl-exp list
//! voltctl-exp run table2_emergencies --jobs 8
//! voltctl-exp run --all --smoke
//! ```
//!
//! The old `cargo run -p voltctl-bench --bin <id>` binaries remain as
//! deprecated shims over [`shim::run`].

pub mod bench;
pub mod engine;
pub mod golden;
pub mod harness;
pub mod manifest;
pub mod profile;
pub mod report;
pub mod scale;
pub mod scenarios;
pub mod shard;
pub mod shim;
pub mod snapshot;
pub mod telemetry;
pub mod trace;

pub use bench::{BenchOpts, BenchPoint, BenchSuite};
pub use engine::{
    assemble_run, default_jobs, run_cells, run_scenario, run_scenario_profiled, CellResult, Ctx,
    RunOutput, Runtime, Scenario, TraceSpec,
};
pub use golden::{GoldenOpts, GoldenOutcome, Verdict};
pub use harness::{
    cpu_config, current_trace, delta_i, evaluate, pdn_at, power_model, solve_cache_stats,
    solve_for, spec_suite, sweep_point, tuned_stressmark, variable_eight, SweepRow,
};
pub use manifest::Manifest;
pub use profile::{NullProfiler, Profiler, SelfProfiler, Span};
pub use report::{ascii_chart, pct, TextTable};
pub use scale::{env_scale, parse_scale, scaled_budget, MIN_CYCLES};
pub use scenarios::{find, listing, registry};
pub use shard::{
    checkpoint_file, ctx_fingerprint, decode_checkpoint, encode_checkpoint, plan_shards,
    run_sharded, try_load_shard, ShardMeta, ShardOpts, ShardRun,
};
