//! The `voltctl-exp snapshot` command: offline inspection of `.snap`
//! containers (loop saves, shard checkpoints, replay captures) without
//! reconstructing any simulator state.
//!
//! `snapshot inspect <file>` validates the container framing — magic,
//! version, checksum, section table — and prints a section-by-section
//! description. For shard checkpoints the meta section is decoded too,
//! so a checkpoint directory can be audited (which scenario, which
//! cells, which run context) before committing to a resume.

use std::fmt::Write as _;
use std::path::Path;

use voltctl_snap::{SnapshotKind, SnapshotReader, Unpack};

use crate::shard::{self, ShardMeta};

/// Binary-prefixed rendering of a byte count (`640 B`, `1.2 KiB`,
/// `3.4 MiB`), printed alongside raw bytes so sizes scan at a glance
/// while exact values stay available.
fn human_bytes(n: usize) -> String {
    const KIB: f64 = 1024.0;
    let n = n as f64;
    if n < KIB {
        format!("{n} B")
    } else if n < KIB * KIB {
        format!("{:.1} KiB", n / KIB)
    } else if n < KIB * KIB * KIB {
        format!("{:.1} MiB", n / (KIB * KIB))
    } else {
        format!("{:.1} GiB", n / (KIB * KIB * KIB))
    }
}

/// Human-readable name of a section tag within a given snapshot kind;
/// tags from newer writers fall back to `"?"` (the framing still
/// validates and prints).
fn section_name(kind: SnapshotKind, tag: u16) -> &'static str {
    match (kind, tag) {
        (SnapshotKind::Loop, 1) => "meta",
        (SnapshotKind::Loop, 2) => "cpu",
        (SnapshotKind::Loop, 3) => "pdn",
        (SnapshotKind::Loop, 4) => "sensor",
        (SnapshotKind::Loop, 5) => "controller",
        (SnapshotKind::Loop, 6) => "actuator",
        (SnapshotKind::Loop, 7) => "monitor",
        (SnapshotKind::Loop, 8) => "trace",
        (SnapshotKind::Shard, 1) => "meta",
        (SnapshotKind::Shard, 2) => "cells",
        _ => "?",
    }
}

/// Renders an inspection report for one snapshot's bytes. `origin` is
/// echoed in the header (usually the file path).
///
/// # Errors
///
/// Returns the parse failure verbatim — the same rejection a restore
/// would produce — when the container does not validate.
pub fn inspect(origin: &str, bytes: &[u8]) -> Result<String, String> {
    let snap = SnapshotReader::parse(bytes).map_err(|e| format!("{origin}: {e}"))?;
    let kind = snap.kind();
    let mut s = String::new();
    let _ = writeln!(s, "{origin}");
    let _ = writeln!(
        s,
        "  kind: {} (container v{}), {} bytes ({}), checksum ok",
        kind.name(),
        voltctl_snap::CONTAINER_VERSION,
        bytes.len(),
        human_bytes(bytes.len())
    );
    let _ = writeln!(s, "  sections: {}", snap.sections().len());
    let _ = writeln!(s, "    tag  ver      bytes       size  name");
    for sec in snap.sections() {
        let _ = writeln!(
            s,
            "    {:>3}  {:>3}  {:>9}  {:>9}  {}",
            sec.tag,
            sec.version,
            sec.payload.len(),
            human_bytes(sec.payload.len()),
            section_name(kind, sec.tag)
        );
    }
    if kind == SnapshotKind::Shard {
        if let Some(sec) = snap.section(shard::section::META) {
            let mut r = sec.reader();
            match ShardMeta::unpack(&mut r) {
                Ok(m) => {
                    let trace = match m.trace_window {
                        Some(w) => format!("window {w}"),
                        None => "off".to_string(),
                    };
                    let _ = writeln!(
                        s,
                        "  shard: {} shard {}/{}, cells {}..{} of {}",
                        m.scenario, m.shard, m.shards, m.start, m.end, m.total_cells
                    );
                    let _ = writeln!(
                        s,
                        "  context: scale {}, smoke {}, telemetry {}, trace {}, fingerprint {:#018x}",
                        m.scale, m.smoke, m.telemetry, trace, m.fingerprint
                    );
                }
                Err(e) => {
                    let _ = writeln!(s, "  shard meta does not decode: {e}");
                }
            }
        }
    }
    Ok(s)
}

/// [`inspect`] over a file on disk.
///
/// # Errors
///
/// Returns a message for unreadable files and invalid containers alike.
pub fn inspect_file(path: &Path) -> Result<String, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    inspect(&path.display().to_string(), &bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Ctx;

    #[test]
    fn inspect_describes_a_shard_checkpoint() {
        let ctx = Ctx::default();
        let meta = ShardMeta::new("fig16_sensor_error", &ctx, 1, 3, &(4..8), 11);
        let bytes = shard::encode_checkpoint(&meta, &[]);
        // An empty cell list contradicts the 4..8 range on a *decode*,
        // but inspect only frames the container, so build a consistent
        // one instead.
        let meta = ShardMeta::new("fig16_sensor_error", &ctx, 1, 3, &(4..4), 11);
        let bytes_ok = shard::encode_checkpoint(&meta, &[]);
        let report = inspect("test.snap", &bytes_ok).unwrap();
        assert!(report.contains("kind: shard"), "{report}");
        assert!(report.contains("cells 4..4 of 11"), "{report}");
        assert!(report.contains("meta"), "{report}");
        // Sizes print human-readable alongside raw bytes.
        assert!(report.contains("bytes ("), "{report}");
        assert!(report.contains(" B"), "{report}");
        // The inconsistent one still frames (inspect is forensic, not a
        // loader) and names both sections.
        let partial = inspect("bad.snap", &bytes).unwrap();
        assert!(partial.contains("cells"), "{partial}");
    }

    #[test]
    fn inspect_rejects_garbage_with_the_parser_error() {
        let err = inspect("junk.snap", b"not a snapshot at all").unwrap_err();
        assert!(err.contains("junk.snap"), "{err}");
        let mut good =
            shard::encode_checkpoint(&ShardMeta::new("x", &Ctx::default(), 0, 1, &(0..0), 0), &[]);
        let last = good.len() - 1;
        good[last] ^= 1;
        let err = inspect("flip.snap", &good).unwrap_err();
        assert!(err.contains("checksum"), "{err}");
    }

    #[test]
    fn human_bytes_picks_the_right_prefix() {
        assert_eq!(human_bytes(0), "0 B");
        assert_eq!(human_bytes(1023), "1023 B");
        assert_eq!(human_bytes(1024), "1.0 KiB");
        assert_eq!(human_bytes(150_000), "146.5 KiB");
        assert_eq!(human_bytes(3 * 1024 * 1024), "3.0 MiB");
        assert_eq!(human_bytes(5 * 1024 * 1024 * 1024), "5.0 GiB");
    }
}
