//! Composable generators with integrated shrinking.
//!
//! A [`Gen`] produces values from the workspace's deterministic
//! [`Rng`] and knows how to propose *smaller* variants of a failing
//! value. The three shrinking strategies, matching what the hot-path
//! equivalence suites need:
//!
//! * **halving** — integers step toward their lower bound by bisection
//!   ([`i64_in`], [`usize_in`], vector lengths);
//! * **element dropping** — vectors drop their second half, first half,
//!   and (once short) individual elements ([`vec_of`], [`vec_f64`]);
//! * **scalar bisection** — floats bisect toward their lower bound
//!   ([`f64_in`]).
//!
//! # Consumption contract
//!
//! Generators document exactly which `Rng` draws they make, because
//! migrated properties must reproduce the historical hand-rolled value
//! streams (see the crate docs' seeding contract). In particular
//! [`vec_of`] draws the length via `range_i64(min, max)` and then each
//! element in order — byte-for-byte what the old
//! `(0..rng.range_i64(a, b)).map(|_| element(rng))` loops did.

use voltctl_telemetry::Rng;

/// A reproducible value generator with integrated shrinking.
pub trait Gen {
    /// The generated value type.
    type Value: Clone + std::fmt::Debug;

    /// Produces one value, consuming draws from `rng`.
    fn generate(&self, rng: &mut Rng) -> Self::Value;

    /// Proposes strictly "smaller" variants of a failing value, most
    /// aggressive first. The runner keeps the first variant that still
    /// fails and asks again. An empty vec ends shrinking.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

/// A uniform `i64` in `[lo, hi)` (one `range_i64` draw); shrinks by
/// bisection toward `lo`.
pub fn i64_in(lo: i64, hi: i64) -> I64In {
    assert!(lo < hi, "i64_in: empty range");
    I64In { lo, hi }
}

/// See [`i64_in`].
#[derive(Debug, Clone, Copy)]
pub struct I64In {
    lo: i64,
    hi: i64,
}

impl Gen for I64In {
    type Value = i64;

    fn generate(&self, rng: &mut Rng) -> i64 {
        rng.range_i64(self.lo, self.hi)
    }

    fn shrink(&self, &v: &i64) -> Vec<i64> {
        let mut out = Vec::new();
        if v != self.lo {
            out.push(self.lo);
            let mid = self.lo + (v - self.lo) / 2;
            if mid != self.lo && mid != v {
                out.push(mid);
            }
            if v - 1 != self.lo && v - 1 != v {
                out.push(v - 1);
            }
        }
        out
    }
}

/// A uniform `usize` in `[lo, hi)` (one `range_i64` draw); shrinks by
/// bisection toward `lo`.
pub fn usize_in(lo: usize, hi: usize) -> UsizeIn {
    assert!(lo < hi, "usize_in: empty range");
    UsizeIn { lo, hi }
}

/// See [`usize_in`].
#[derive(Debug, Clone, Copy)]
pub struct UsizeIn {
    lo: usize,
    hi: usize,
}

impl Gen for UsizeIn {
    type Value = usize;

    fn generate(&self, rng: &mut Rng) -> usize {
        rng.range_i64(self.lo as i64, self.hi as i64) as usize
    }

    fn shrink(&self, &v: &usize) -> Vec<usize> {
        i64_in(self.lo as i64, self.hi as i64)
            .shrink(&(v as i64))
            .into_iter()
            .map(|x| x as usize)
            .collect()
    }
}

/// A uniform `f64` in `[lo, hi]` (one `range_f64` draw); shrinks by
/// bisection toward `lo`.
pub fn f64_in(lo: f64, hi: f64) -> F64In {
    assert!(
        lo.is_finite() && hi.is_finite() && lo <= hi,
        "f64_in: bad range"
    );
    F64In { lo, hi }
}

/// See [`f64_in`].
#[derive(Debug, Clone, Copy)]
pub struct F64In {
    lo: f64,
    hi: f64,
}

impl Gen for F64In {
    type Value = f64;

    fn generate(&self, rng: &mut Rng) -> f64 {
        rng.range_f64(self.lo, self.hi)
    }

    fn shrink(&self, &v: &f64) -> Vec<f64> {
        let mut out = Vec::new();
        if v != self.lo {
            out.push(self.lo);
            // Zero is the friendliest witness when the range straddles it.
            if self.lo < 0.0 && v > 0.0 {
                out.push(0.0);
            }
            let mid = 0.5 * (self.lo + v);
            if mid != self.lo && mid != v {
                out.push(mid);
            }
            // A short-decimal variant reads better in counterexamples.
            let rounded = (v * 8.0).round() / 8.0;
            if rounded != v && rounded > self.lo && rounded < self.hi {
                out.push(rounded);
            }
        }
        out
    }
}

/// An arbitrary `f64` bit pattern (one `next_u64` draw): NaNs, ±0.0,
/// subnormals, and infinities all occur. Shrinks toward simple patterns
/// (+0.0, sign cleared, low mantissa cleared).
pub fn f64_bits() -> F64Bits {
    F64Bits
}

/// See [`f64_bits`].
#[derive(Debug, Clone, Copy)]
pub struct F64Bits;

impl Gen for F64Bits {
    type Value = f64;

    fn generate(&self, rng: &mut Rng) -> f64 {
        f64::from_bits(rng.next_u64())
    }

    fn shrink(&self, &v: &f64) -> Vec<f64> {
        let bits = v.to_bits();
        [0u64, bits & !(1 << 63), bits & !0xFFFF_FFFF, bits & !0xFF]
            .into_iter()
            .filter(|&b| b != bits)
            .map(f64::from_bits)
            .collect()
    }
}

/// A fixed value (no draws, no shrinking).
pub fn just<T: Clone + std::fmt::Debug>(value: T) -> Just<T> {
    Just { value }
}

/// See [`just`].
#[derive(Debug, Clone)]
pub struct Just<T> {
    value: T,
}

impl<T: Clone + std::fmt::Debug> Gen for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut Rng) -> T {
        self.value.clone()
    }
}

/// A generator from a closure over the raw [`Rng`] — the escape hatch
/// for domain-specific recipes (instruction mixes, schedules). No
/// shrinking of its own; wrap in [`vec_of`] to get element dropping.
pub fn from_fn<T, F>(f: F) -> FnGen<F>
where
    T: Clone + std::fmt::Debug,
    F: Fn(&mut Rng) -> T,
{
    FnGen { f }
}

/// See [`from_fn`].
pub struct FnGen<F> {
    f: F,
}

impl<F> std::fmt::Debug for FnGen<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FnGen")
    }
}

impl<T, F> Gen for FnGen<F>
where
    T: Clone + std::fmt::Debug,
    F: Fn(&mut Rng) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut Rng) -> T {
        (self.f)(rng)
    }
}

/// Maps a generator's output through a pure function. The mapped value
/// is not shrinkable (the mapping is one-way); prefer generating the
/// *inputs* of a computation and mapping inside the property when
/// shrinking matters.
pub fn map<G, T, F>(gen: G, f: F) -> MappedGen<G, F>
where
    G: Gen,
    T: Clone + std::fmt::Debug,
    F: Fn(G::Value) -> T,
{
    MappedGen { gen, f }
}

/// See [`map`].
pub struct MappedGen<G, F> {
    gen: G,
    f: F,
}

impl<G: std::fmt::Debug, F> std::fmt::Debug for MappedGen<G, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedGen").field("gen", &self.gen).finish()
    }
}

impl<G, T, F> Gen for MappedGen<G, F>
where
    G: Gen,
    T: Clone + std::fmt::Debug,
    F: Fn(G::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut Rng) -> T {
        (self.f)(self.gen.generate(rng))
    }
}

/// Above this length, shrinking restricts itself to halving (no
/// per-element candidates) to keep the candidate set small.
const ELEMENTWISE_LIMIT: usize = 32;

/// A vector of `min_len..max_len` elements (exclusive upper bound, like
/// `range_i64`): draws the length first, then each element in order.
/// Shrinks by dropping the second half, the first half, then individual
/// elements, then shrinking single elements via the element generator.
pub fn vec_of<G: Gen>(element: G, min_len: usize, max_len: usize) -> VecGen<G> {
    assert!(min_len < max_len, "vec_of: empty length range");
    VecGen {
        element,
        min_len,
        max_len,
    }
}

/// A vector of uniform `f64`s in `[lo, hi]` with `min_len..max_len`
/// elements — the trace generator. Identical draw order to the
/// hand-rolled `(0..rng.range_i64(a, b)).map(|_| rng.range_f64(lo, hi))`
/// loops it replaces.
pub fn vec_f64(min_len: usize, max_len: usize, lo: f64, hi: f64) -> VecGen<F64In> {
    vec_of(f64_in(lo, hi), min_len, max_len)
}

/// See [`vec_of`].
#[derive(Debug, Clone)]
pub struct VecGen<G> {
    element: G,
    min_len: usize,
    max_len: usize,
}

impl<G: Gen> Gen for VecGen<G> {
    type Value = Vec<G::Value>;

    fn generate(&self, rng: &mut Rng) -> Vec<G::Value> {
        let n = rng.range_i64(self.min_len as i64, self.max_len as i64) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }

    fn shrink(&self, v: &Vec<G::Value>) -> Vec<Vec<G::Value>> {
        let mut out = Vec::new();
        let n = v.len();
        // Structural shrinks first: halves, then single-element drops.
        if n > self.min_len {
            let keep_front = (n / 2).max(self.min_len);
            if keep_front < n {
                out.push(v[..keep_front].to_vec());
                out.push(v[n - keep_front..].to_vec());
            }
            if n <= ELEMENTWISE_LIMIT {
                for k in 0..n {
                    let mut shorter = v.clone();
                    shorter.remove(k);
                    out.push(shorter);
                }
            }
        }
        // Element shrinks once the vector is short enough to enumerate.
        if n <= ELEMENTWISE_LIMIT {
            for k in 0..n {
                for cand in self.element.shrink(&v[k]).into_iter().take(2) {
                    let mut smaller = v.clone();
                    smaller[k] = cand;
                    out.push(smaller);
                }
            }
        }
        out
    }
}

macro_rules! tuple_gen {
    ($($g:ident / $v:ident / $idx:tt),+) => {
        impl<$($g: Gen),+> Gen for ($($g,)+) {
            type Value = ($($g::Value,)+);

            fn generate(&self, rng: &mut Rng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    };
}

tuple_gen!(G0 / v0 / 0, G1 / v1 / 1);
tuple_gen!(G0 / v0 / 0, G1 / v1 / 1, G2 / v2 / 2);
tuple_gen!(G0 / v0 / 0, G1 / v1 / 1, G2 / v2 / 2, G3 / v3 / 3);
tuple_gen!(
    G0 / v0 / 0,
    G1 / v1 / 1,
    G2 / v2 / 2,
    G3 / v3 / 3,
    G4 / v4 / 4
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_match_hand_rolled_loops() {
        // The migration guarantee: vec_f64 consumes the Rng exactly like
        // the historical `range_i64` + per-element `range_f64` loops.
        let gen = vec_f64(16, 300, 0.0, 60.0);
        let mut a = Rng::new(0x11EA);
        let from_gen = gen.generate(&mut a);

        let mut b = Rng::new(0x11EA);
        let n = b.range_i64(16, 300) as usize;
        let by_hand: Vec<f64> = (0..n).map(|_| b.range_f64(0.0, 60.0)).collect();
        assert_eq!(from_gen, by_hand);
        assert_eq!(a.next_u64(), b.next_u64(), "streams stay in lockstep");
    }

    #[test]
    fn int_shrink_moves_toward_lo() {
        let g = i64_in(3, 100);
        let cands = g.shrink(&64);
        assert!(cands.contains(&3));
        assert!(cands.iter().all(|&c| (3..64).contains(&c)));
        assert!(g.shrink(&3).is_empty(), "lower bound is terminal");
    }

    #[test]
    fn f64_shrink_bisects_toward_lo() {
        let g = f64_in(1.0, 9.0);
        let cands = g.shrink(&8.0);
        assert!(cands.contains(&1.0));
        assert!(cands.contains(&4.5));
        assert!(g.shrink(&1.0).is_empty());
    }

    #[test]
    fn vec_shrink_drops_halves_and_elements() {
        let g = vec_f64(0, 64, 0.0, 1.0);
        let v = vec![0.5; 8];
        let cands = g.shrink(&v);
        assert!(cands.contains(&vec![0.5; 4]), "front half");
        assert!(cands.iter().any(|c| c.len() == 7), "single drop");
        assert!(
            cands.iter().any(|c| c.len() == 8 && c.contains(&0.0)),
            "element shrink"
        );
        assert!(g.shrink(&Vec::new()).is_empty());
    }

    #[test]
    fn vec_shrink_respects_min_len() {
        let g = vec_f64(2, 64, 0.0, 1.0);
        for cand in g.shrink(&vec![0.5; 3]) {
            assert!(cand.len() >= 2, "{cand:?}");
        }
    }

    #[test]
    fn long_vec_shrinks_structurally_only() {
        let g = vec_f64(0, 512, 0.0, 1.0);
        let v = vec![0.5; 400];
        let cands = g.shrink(&v);
        assert!(!cands.is_empty());
        assert!(
            cands.iter().all(|c| c.len() < v.len()),
            "only drops, no element noise"
        );
    }

    #[test]
    fn tuple_shrinks_one_component_at_a_time() {
        let g = (usize_in(0, 10), f64_in(0.0, 1.0));
        let cands = g.shrink(&(5, 0.75));
        assert!(cands.iter().any(|&(n, x)| n < 5 && x == 0.75));
        assert!(cands.iter().any(|&(n, x)| n == 5 && x < 0.75));
    }

    #[test]
    fn f64_bits_covers_special_values_and_shrinks() {
        let g = f64_bits();
        let mut rng = Rng::new(7);
        let mut saw_negative = false;
        for _ in 0..512 {
            let x = g.generate(&mut rng);
            saw_negative |= x.is_sign_negative();
        }
        assert!(saw_negative);
        let cands = g.shrink(&f64::from_bits(0x8000_0000_0000_01FF));
        assert!(cands.contains(&0.0));
    }

    #[test]
    fn just_and_from_fn_generate() {
        let mut rng = Rng::new(1);
        assert_eq!(just(7u8).generate(&mut rng), 7);
        let g = from_fn(|rng: &mut Rng| rng.below(3));
        assert!(g.generate(&mut rng) < 3);
    }

    #[test]
    fn map_applies() {
        let g = map(usize_in(1, 5), |n| vec![1u8; n]);
        let mut rng = Rng::new(2);
        let v = g.generate(&mut rng);
        assert!((1..5).contains(&v.len()));
    }
}
