//! The property runner: seeded cases, greedy shrinking, red-seed replay.
//!
//! [`check`] is the single entry point. It replays previously-failing
//! seeds first (see [`crate::persist`]), then generates fresh cases with
//! seeds `base.wrapping_add(k)` for `k in 0..cases` — the seeding
//! contract that lets migrated hand-rolled loops keep their historical
//! value streams. A failing case is shrunk greedily: the generator
//! proposes smaller candidates ([`Gen::shrink`]); the first candidate
//! that still fails becomes the new counterexample, until no candidate
//! fails or the evaluation budget runs out.
//!
//! Properties return `Result<(), String>`; panics inside a property
//! (plain `assert!`s) are caught and treated as failures, so existing
//! assertion helpers migrate unchanged. The default panic hook is
//! suppressed while a property runs — shrinking re-executes the failing
//! property dozens of times and would otherwise spray backtraces.

use crate::gen::Gen;
use crate::persist::{self, FailureRecord};
use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::OnceLock;
use voltctl_telemetry::Rng;

/// Configuration for one [`check`] call.
#[derive(Debug, Clone)]
pub struct Config {
    /// Fresh cases to generate (`VOLTCTL_CHECK_CASES` overrides — the
    /// CI knob for a fixed exploration budget).
    pub cases: u64,
    /// Base seed; case `k` runs on `Rng::new(seed.wrapping_add(k))`.
    pub seed: u64,
    /// Total property evaluations the shrinker may spend.
    pub max_shrink_evals: u64,
    /// Failure-persistence directory; `None` uses
    /// [`persist::default_dir`]. Tests of the runner itself point this
    /// at a temp dir.
    pub dir: Option<PathBuf>,
}

impl Config {
    /// The standard budget: 64 cases from `seed`.
    pub fn new(seed: u64) -> Config {
        Config::cases(64, seed)
    }

    /// An explicit `cases` budget from `seed`.
    pub fn cases(cases: u64, seed: u64) -> Config {
        Config {
            cases,
            seed,
            max_shrink_evals: 2_000,
            dir: None,
        }
    }

    fn effective_cases(&self) -> u64 {
        match std::env::var("VOLTCTL_CHECK_CASES") {
            Ok(raw) => match raw.trim().parse::<u64>() {
                Ok(n) if n >= 1 => n,
                _ => {
                    warn_once_bad_cases(&raw);
                    self.cases
                }
            },
            Err(_) => self.cases,
        }
    }
}

fn warn_once_bad_cases(raw: &str) {
    static WARNED: OnceLock<()> = OnceLock::new();
    WARNED.get_or_init(|| {
        eprintln!(
            "voltctl-check: ignoring unparseable VOLTCTL_CHECK_CASES={raw:?} (want a positive integer)"
        );
    });
}

thread_local! {
    /// True while this thread is executing a property under [`check`];
    /// the global panic hook stays silent for such panics.
    static SUPPRESS_PANIC_OUTPUT: Cell<bool> = const { Cell::new(false) };
}

/// Installs (once per process) a panic hook that forwards to the
/// original hook except while a property is executing on this thread.
fn install_quiet_hook() {
    static INSTALLED: OnceLock<()> = OnceLock::new();
    INSTALLED.get_or_init(|| {
        let original = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !SUPPRESS_PANIC_OUTPUT.with(Cell::get) {
                original(info);
            }
        }));
    });
}

/// Runs the property once, converting a panic into a failure message.
fn run_once<V, P>(prop: &P, value: &V) -> Option<String>
where
    P: Fn(&V) -> Result<(), String>,
{
    SUPPRESS_PANIC_OUTPUT.with(|flag| flag.set(true));
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| prop(value)));
    SUPPRESS_PANIC_OUTPUT.with(|flag| flag.set(false));
    match outcome {
        Ok(Ok(())) => None,
        Ok(Err(msg)) => Some(msg),
        Err(payload) => Some(panic_message(payload.as_ref())),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panicked: {s}")
    } else {
        "panicked (non-string payload)".to_string()
    }
}

/// `Debug`-renders a counterexample, truncated for report hygiene.
fn render<V: std::fmt::Debug>(value: &V) -> String {
    let full = format!("{value:?}");
    const MAX: usize = 2_000;
    if full.len() <= MAX {
        return full;
    }
    let cut = (0..=MAX)
        .rev()
        .find(|&k| full.is_char_boundary(k))
        .unwrap_or(0);
    format!("{}… ({} chars total)", &full[..cut], full.len())
}

/// Checks `prop` against generated values of `gen`.
///
/// Previously-failing seeds for `name` are replayed first; fresh cases
/// follow. On failure the counterexample is shrunk, persisted to
/// `failures.jsonl`, and reported via `panic!` (so `cargo test`
/// integrates naturally). On a fully green run, stale failure records
/// for `name` are cleared.
///
/// # Panics
///
/// Panics — with the shrunk counterexample, its seed, and the failure
/// message — when the property fails.
pub fn check<G, P>(name: &str, config: &Config, gen: &G, prop: P)
where
    G: Gen,
    P: Fn(&G::Value) -> Result<(), String>,
{
    install_quiet_hook();
    let dir = config.dir.clone().unwrap_or_else(persist::default_dir);

    // 1. Red seeds first: go straight back to a known regression.
    for seed in persist::red_seeds(&dir, name) {
        run_case(name, config, gen, &prop, &dir, seed, None);
    }

    // 2. Fresh cases on the documented seed schedule.
    let cases = config.effective_cases();
    for k in 0..cases {
        let seed = config.seed.wrapping_add(k);
        run_case(name, config, gen, &prop, &dir, seed, Some((k, cases)));
    }

    // 3. Everything passed: stale records are no longer interesting.
    persist::clear(&dir, name);
}

fn run_case<G, P>(
    name: &str,
    config: &Config,
    gen: &G,
    prop: &P,
    dir: &std::path::Path,
    seed: u64,
    fresh: Option<(u64, u64)>,
) where
    G: Gen,
    P: Fn(&G::Value) -> Result<(), String>,
{
    let mut rng = Rng::new(seed);
    let original = gen.generate(&mut rng);
    let Some(first_msg) = run_once(prop, &original) else {
        return;
    };

    // Greedy shrink: keep the first smaller candidate that still fails.
    let mut current = original.clone();
    let mut msg = first_msg;
    let mut evals = 0u64;
    'shrinking: while evals < config.max_shrink_evals {
        for candidate in gen.shrink(&current) {
            if evals >= config.max_shrink_evals {
                break 'shrinking;
            }
            evals += 1;
            if let Some(m) = run_once(prop, &candidate) {
                current = candidate;
                msg = m;
                continue 'shrinking;
            }
        }
        break;
    }

    let record = FailureRecord {
        prop: name.to_string(),
        seed,
        case: fresh.map_or(u64::MAX, |(k, _)| k),
        shrinks: evals,
        value: render(&current),
        msg: msg.clone(),
    };
    persist::append(dir, &record);

    let provenance = match fresh {
        Some((k, n)) => format!("case {k} of {n}"),
        None => "replay of a persisted red seed".to_string(),
    };
    panic!(
        "property '{name}' failed ({provenance})\n\
         \x20 case seed: {seed:#x} (replayed automatically on the next run)\n\
         \x20 original:  {}\n\
         \x20 shrunk ({evals} shrink evals): {}\n\
         \x20 message:   {msg}\n\
         \x20 persisted: {}",
        render(&original),
        render(&current),
        dir.join("failures.jsonl").display(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{usize_in, vec_f64, vec_of};
    use std::sync::Mutex;

    fn temp_config(tag: &str, cases: u64, seed: u64) -> (Config, PathBuf) {
        let dir =
            std::env::temp_dir().join(format!("voltctl-check-runner-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut config = Config::cases(cases, seed);
        config.dir = Some(dir.clone());
        (config, dir)
    }

    /// Runs `f`, returning the panic message it produced (if any).
    fn capture_panic(f: impl FnOnce()) -> Option<String> {
        install_quiet_hook();
        SUPPRESS_PANIC_OUTPUT.with(|flag| flag.set(true));
        let out = panic::catch_unwind(AssertUnwindSafe(f));
        SUPPRESS_PANIC_OUTPUT.with(|flag| flag.set(false));
        out.err().map(|p| panic_message(p.as_ref()))
    }

    #[test]
    fn passing_property_runs_every_case() {
        let (config, dir) = temp_config("pass", 16, 42);
        let count = Mutex::new(0u64);
        check("selftest.pass", &config, &vec_f64(0, 8, 0.0, 1.0), |_| {
            *count.lock().unwrap() += 1;
            Ok(())
        });
        // effective_cases, not 16: a CI-set VOLTCTL_CHECK_CASES wins.
        assert_eq!(*count.lock().unwrap(), config.effective_cases());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn case_seeds_follow_the_documented_schedule() {
        let (config, dir) = temp_config("seeds", 8, 0xA110);
        let seen = Mutex::new(Vec::new());
        check("selftest.seeds", &config, &vec_f64(1, 32, 0.0, 9.0), |v| {
            seen.lock().unwrap().push(v.clone());
            Ok(())
        });
        // Case k must equal the hand-rolled `Rng::new(0xA110 + k)` loop.
        let seen = seen.lock().unwrap();
        for (k, value) in seen.iter().enumerate() {
            let mut rng = Rng::new(0xA110 + k as u64);
            let n = rng.range_i64(1, 32) as usize;
            let by_hand: Vec<f64> = (0..n).map(|_| rng.range_f64(0.0, 9.0)).collect();
            assert_eq!(value, &by_hand, "case {k}");
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn failure_shrinks_persists_and_replays_first() {
        let (config, dir) = temp_config("fail", 64, 7);
        // Fails whenever the vector has >= 3 elements: minimal
        // counterexample is any 3-element vector.
        let msg = capture_panic(|| {
            check("selftest.fail", &config, &vec_f64(0, 40, 0.0, 1.0), |v| {
                crate::ensure!(v.len() < 3, "len {} >= 3", v.len());
                Ok(())
            });
        })
        .expect("property must fail");
        assert!(msg.contains("selftest.fail"), "{msg}");
        assert!(msg.contains("shrunk"), "{msg}");

        // The shrunk counterexample is minimal: exactly 3 elements.
        let records = persist::load(&dir);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].prop, "selftest.fail");
        assert_eq!(
            records[0].value.matches(',').count(),
            2,
            "3-element vec: {}",
            records[0].value
        );
        let red_seed = records[0].seed;

        // Next run replays the red seed before any fresh case.
        let first_seed_seen = Mutex::new(None::<u64>);
        let replayed = Mutex::new(Vec::new());
        let msg = capture_panic(|| {
            check("selftest.fail", &config, &vec_f64(0, 40, 0.0, 1.0), |v| {
                replayed.lock().unwrap().push(v.len());
                if first_seed_seen.lock().unwrap().is_none() {
                    // The first value must come from the persisted seed.
                    let mut rng = Rng::new(red_seed);
                    let n = rng.range_i64(0, 40) as usize;
                    assert_eq!(v.len(), n, "red seed must replay first");
                    *first_seed_seen.lock().unwrap() = Some(red_seed);
                }
                crate::ensure!(v.len() < 3, "len {} >= 3", v.len());
                Ok(())
            });
        });
        assert!(msg.is_some(), "still red on replay");
        assert!(first_seed_seen.lock().unwrap().is_some());

        // Once the property is green, the records are cleared.
        check("selftest.fail", &config, &vec_f64(0, 40, 0.0, 1.0), |_| {
            Ok(())
        });
        assert!(persist::red_seeds(&dir, "selftest.fail").is_empty());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn panicking_properties_are_caught_and_shrunk() {
        let (config, dir) = temp_config("panic", 32, 9);
        let msg = capture_panic(|| {
            check(
                "selftest.panic",
                &config,
                &vec_of(usize_in(0, 100), 0, 20),
                |v| {
                    // Plain assert! style: the index-out-of-bounds class.
                    assert!(v.iter().sum::<usize>() < 40, "sum blew the budget");
                    Ok(())
                },
            );
        });
        let msg = msg.expect("must fail eventually");
        assert!(msg.contains("sum blew the budget"), "{msg}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn shrink_budget_is_respected() {
        let (mut config, dir) = temp_config("budget", 4, 3);
        config.max_shrink_evals = 5;
        let evals = Mutex::new(0u64);
        let msg = capture_panic(|| {
            check(
                "selftest.budget",
                &config,
                &vec_f64(1, 64, 0.0, 1.0),
                |_| {
                    *evals.lock().unwrap() += 1;
                    Err("always fails".to_string())
                },
            );
        });
        assert!(msg.is_some());
        // 1 original eval + at most 5 shrink evals.
        assert!(*evals.lock().unwrap() <= 6);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn render_truncates_monsters() {
        let s = render(&vec![1.0f64; 4096]);
        assert!(s.len() < 2_100);
        assert!(s.contains("chars total"));
    }
}
