//! voltctl-check: zero-dependency property-based testing for the
//! workspace.
//!
//! The build environment has no registry access, so `proptest` and
//! `quickcheck` are unavailable; until now every equivalence claim in the
//! hot path (direct vs. FFT vs. streaming convolution, incremental vs.
//! recompute kernels, cached vs. fresh threshold solves) was guarded by
//! hand-rolled seeded loops that neither shrink failures nor remember
//! them. This crate is the in-tree replacement:
//!
//! * **[`gen`]** — composable generators ([`Gen`]) for scalars, vectors,
//!   and tuples, each carrying its own shrinking strategy (integer
//!   halving, vector element-dropping, scalar bisection);
//! * **[`runner`]** — the [`check`] entry point: seeded case generation
//!   on the workspace's SplitMix64 ([`voltctl_telemetry::Rng`]), greedy
//!   shrinking of failures to a minimal counterexample, and panic-safe
//!   property execution (both `Result`-returning and `assert!`-style
//!   properties work);
//! * **[`persist`]** — failure-seed persistence to
//!   `results/check/failures.jsonl`: red seeds are replayed *first* on
//!   the next run, so CI and local reruns go straight to the regression;
//! * **[`json`]** — a minimal JSON reader for validating machine-readable
//!   artifacts (`BENCH_*.json`, telemetry snapshots) without serde;
//! * **[`diff`]** — a minimal line-level diff, shared with the golden
//!   snapshot harness in `voltctl-exp`.
//!
//! # Seeding contract
//!
//! Case `k` of a property with base seed `s` runs its generator on
//! `Rng::new(s.wrapping_add(k))`. This is deliberate: the workspace's
//! pre-existing hand-rolled loops were written as
//! `for seed in 0..N { Rng::new(BASE + seed) }`, so a migrated property
//! with the same base seed and case count reproduces the exact historical
//! value stream — migration strictly extends coverage, never trades it.
//!
//! # Example
//!
//! ```
//! use voltctl_check::{check, vec_f64, Config};
//!
//! let trace = vec_f64(1, 64, 0.0, 60.0);
//! check("doc.sum-nonnegative", &Config::cases(32, 0xD0C), &trace, |t| {
//!     let sum: f64 = t.iter().sum();
//!     voltctl_check::ensure!(sum >= 0.0, "sum {sum} went negative");
//!     Ok(())
//! });
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod diff;
pub mod gen;
pub mod json;
pub mod persist;
pub mod runner;

pub use diff::line_diff;
pub use gen::{
    f64_bits, f64_in, from_fn, i64_in, just, map, usize_in, vec_f64, vec_of, FnGen, Gen, Just,
    MappedGen, VecGen,
};
pub use json::Json;
pub use persist::{default_dir, FailureRecord};
pub use runner::{check, Config};

/// Early-returns `Err(format!(...))` from a property when a condition
/// fails — the property-style replacement for `assert!` that keeps
/// shrinking quiet (no panic machinery per candidate).
///
/// Plain `assert!` also works inside properties (panics are caught and
/// treated as failures), but `ensure!` produces cleaner failure messages.
#[macro_export]
macro_rules! ensure {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("ensure failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($arg:tt)+) => {
        if !$cond {
            return Err(format!($($arg)+));
        }
    };
}

/// Early-returns `Err` from a property when two expressions differ,
/// showing both values.
#[macro_export]
macro_rules! ensure_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!(
                "ensure_eq failed: {} = {a:?} vs {} = {b:?}",
                stringify!($a),
                stringify!($b)
            ));
        }
    }};
    ($a:expr, $b:expr, $($arg:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!(
                "{}: {} = {a:?} vs {} = {b:?}",
                format!($($arg)+),
                stringify!($a),
                stringify!($b)
            ));
        }
    }};
}
