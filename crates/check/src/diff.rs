//! A minimal line-level diff for snapshot mismatches.
//!
//! The golden-snapshot harness (`voltctl-exp golden`) compares rendered
//! reports byte-for-byte; when they differ it needs to show a human the
//! *smallest* description of what changed. [`line_diff`] computes a
//! longest-common-subsequence alignment over lines and renders the
//! changed lines as `-`/`+` hunks with two lines of context, numbered on
//! both sides.

/// One aligned edit between two line sequences.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Edit {
    /// Line present in both (old index, new index).
    Keep(usize, usize),
    /// Line only in the old text.
    Del(usize),
    /// Line only in the new text.
    Add(usize),
}

/// Computes a line-level diff from `old` to `new`, rendered with hunk
/// headers (`@@ -<old line> +<new line> @@`), two context lines, and
/// `-`/`+` markers. Returns an empty string when the inputs are equal.
pub fn line_diff(old: &str, new: &str) -> String {
    if old == new {
        return String::new();
    }
    let a: Vec<&str> = old.lines().collect();
    let b: Vec<&str> = new.lines().collect();
    let edits = align(&a, &b);
    render(&a, &b, &edits)
}

/// LCS alignment via dynamic programming. Snapshot reports are small
/// (hundreds of lines); above a million-cell table the common prefix and
/// suffix are stripped first, which in practice keeps the table tiny.
fn align(a: &[&str], b: &[&str]) -> Vec<Edit> {
    // Strip common prefix/suffix — cheap and keeps the DP table small.
    let mut prefix = 0;
    while prefix < a.len() && prefix < b.len() && a[prefix] == b[prefix] {
        prefix += 1;
    }
    let mut suffix = 0;
    while suffix < a.len() - prefix
        && suffix < b.len() - prefix
        && a[a.len() - 1 - suffix] == b[b.len() - 1 - suffix]
    {
        suffix += 1;
    }
    let core_a = &a[prefix..a.len() - suffix];
    let core_b = &b[prefix..b.len() - suffix];

    let mut edits: Vec<Edit> = (0..prefix).map(|k| Edit::Keep(k, k)).collect();
    edits.extend(align_core(core_a, core_b, prefix));
    for k in 0..suffix {
        edits.push(Edit::Keep(a.len() - suffix + k, b.len() - suffix + k));
    }
    edits
}

fn align_core(a: &[&str], b: &[&str], offset: usize) -> Vec<Edit> {
    let (n, m) = (a.len(), b.len());
    // Degenerate fallback for pathological sizes: report everything as
    // replaced rather than allocating a huge table.
    if n.saturating_mul(m) > 4_000_000 {
        let mut edits: Vec<Edit> = (0..n).map(|i| Edit::Del(offset + i)).collect();
        edits.extend((0..m).map(|j| Edit::Add(offset + j)));
        return edits;
    }
    // lcs[i][j] = LCS length of a[i..] vs b[j..].
    let mut lcs = vec![0u32; (n + 1) * (m + 1)];
    let at = |i: usize, j: usize| i * (m + 1) + j;
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            lcs[at(i, j)] = if a[i] == b[j] {
                lcs[at(i + 1, j + 1)] + 1
            } else {
                lcs[at(i + 1, j)].max(lcs[at(i, j + 1)])
            };
        }
    }
    let mut edits = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < n && j < m {
        if a[i] == b[j] {
            edits.push(Edit::Keep(offset + i, offset + j));
            i += 1;
            j += 1;
        } else if lcs[at(i + 1, j)] >= lcs[at(i, j + 1)] {
            edits.push(Edit::Del(offset + i));
            i += 1;
        } else {
            edits.push(Edit::Add(offset + j));
            j += 1;
        }
    }
    edits.extend((i..n).map(|k| Edit::Del(offset + k)));
    edits.extend((j..m).map(|k| Edit::Add(offset + k)));
    edits
}

const CONTEXT: usize = 2;

fn render(a: &[&str], b: &[&str], edits: &[Edit]) -> String {
    // Mark which edit indices are "interesting": changes plus context.
    let mut show = vec![false; edits.len()];
    for (k, e) in edits.iter().enumerate() {
        if !matches!(e, Edit::Keep(..)) {
            for s in show
                .iter_mut()
                .take((k + CONTEXT + 1).min(edits.len()))
                .skip(k.saturating_sub(CONTEXT))
            {
                *s = true;
            }
        }
    }
    let mut out = String::new();
    let mut k = 0;
    while k < edits.len() {
        if !show[k] {
            k += 1;
            continue;
        }
        // One hunk: a maximal run of shown edits.
        let start = k;
        while k < edits.len() && show[k] {
            k += 1;
        }
        let (old_line, new_line) = match edits[start] {
            Edit::Keep(i, j) => (i + 1, j + 1),
            Edit::Del(i) => (i + 1, hunk_new_line(edits, start) + 1),
            Edit::Add(j) => (hunk_old_line(edits, start) + 1, j + 1),
        };
        out.push_str(&format!("@@ -{old_line} +{new_line} @@\n"));
        for e in &edits[start..k] {
            match *e {
                Edit::Keep(i, _) => {
                    out.push(' ');
                    out.push_str(a[i]);
                }
                Edit::Del(i) => {
                    out.push('-');
                    out.push_str(a[i]);
                }
                Edit::Add(j) => {
                    out.push('+');
                    out.push_str(b[j]);
                }
            }
            out.push('\n');
        }
    }
    out
}

/// The old-side line an Add at `k` sits after (0-based, saturating).
fn hunk_old_line(edits: &[Edit], k: usize) -> usize {
    edits[..k]
        .iter()
        .rev()
        .find_map(|e| match *e {
            Edit::Keep(i, _) | Edit::Del(i) => Some(i + 1),
            Edit::Add(_) => None,
        })
        .unwrap_or(0)
}

/// The new-side line a Del at `k` sits after (0-based, saturating).
fn hunk_new_line(edits: &[Edit], k: usize) -> usize {
    edits[..k]
        .iter()
        .rev()
        .find_map(|e| match *e {
            Edit::Keep(_, j) | Edit::Add(j) => Some(j + 1),
            Edit::Del(_) => None,
        })
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_inputs_diff_empty() {
        assert_eq!(line_diff("a\nb\n", "a\nb\n"), "");
        assert_eq!(line_diff("", ""), "");
    }

    #[test]
    fn single_changed_line_is_minimal() {
        let old = "one\ntwo\nthree\nfour\nfive\nsix\nseven\n";
        let new = "one\ntwo\nthree\nFOUR\nfive\nsix\nseven\n";
        let d = line_diff(old, new);
        assert!(d.contains("-four\n"));
        assert!(d.contains("+FOUR\n"));
        // Two lines of context on each side, nothing more.
        assert!(d.contains(" two\n") && d.contains(" six\n"));
        assert!(!d.contains("one") && !d.contains("seven"));
        assert!(d.starts_with("@@ -2 +2 @@\n"));
    }

    #[test]
    fn insertion_and_deletion_at_edges() {
        let d = line_diff("b\nc\n", "a\nb\nc\n");
        assert!(d.contains("+a\n"));
        assert!(
            !d.lines().any(|l| l.starts_with('-')),
            "pure insertion: {d}"
        );
        let d = line_diff("a\nb\nc\n", "a\nb\n");
        assert!(d.contains("-c\n"));
    }

    #[test]
    fn distant_changes_become_separate_hunks() {
        let old: Vec<String> = (0..40).map(|k| format!("line{k}")).collect();
        let mut new = old.clone();
        new[3] = "CHANGED-A".into();
        new[30] = "CHANGED-B".into();
        let d = line_diff(&old.join("\n"), &new.join("\n"));
        assert_eq!(d.matches("@@").count() / 2 * 2, d.matches("@@").count());
        assert_eq!(d.lines().filter(|l| l.starts_with("@@")).count(), 2);
        assert!(d.contains("-line3\n+CHANGED-A"));
        assert!(d.contains("-line30\n+CHANGED-B"));
    }

    #[test]
    fn completely_different_texts() {
        let d = line_diff("x\ny\n", "p\nq\nr\n");
        assert_eq!(d.lines().filter(|l| l.starts_with('-')).count(), 2);
        assert_eq!(d.lines().filter(|l| l.starts_with('+')).count(), 3);
    }
}
