//! Failure-seed persistence: `results/check/failures.jsonl`.
//!
//! When a property fails, the runner appends one JSONL record with the
//! property name, the failing case seed, and the shrunk counterexample.
//! On the next run of the *same* property, those seeds are replayed
//! **before** any fresh generation — a red CI run or a local repro goes
//! straight back to the regression instead of waiting for the generator
//! to stumble onto it again. When every replayed seed and every fresh
//! case passes, the property's stale records are cleared.
//!
//! The file lives under `<workspace root>/results/check/` by default
//! (resolved by walking up from `CARGO_MANIFEST_DIR`, so every crate's
//! test binary agrees on one file); `VOLTCTL_CHECK_DIR` overrides it.
//! Access within a process is serialized by a global mutex; concurrent
//! *processes* (parallel `cargo test` binaries) only ever append or
//! rewrite whole files, so the worst cross-process race loses a
//! convenience record, never corrupts a test verdict.

use crate::json::{escape, Json};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// One persisted failure.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureRecord {
    /// The property name passed to [`check`](crate::check).
    pub prop: String,
    /// The case seed that reproduces the failure (`Rng::new(seed)`).
    pub seed: u64,
    /// Case index within its original run (replays use `u64::MAX`).
    pub case: u64,
    /// Shrink evaluations spent reaching the minimal counterexample.
    pub shrinks: u64,
    /// `Debug` rendering of the shrunk counterexample (truncated).
    pub value: String,
    /// The failure message.
    pub msg: String,
}

impl FailureRecord {
    fn to_jsonl(&self) -> String {
        format!(
            "{{\"prop\": {}, \"seed\": {}, \"case\": {}, \"shrinks\": {}, \"value\": {}, \"msg\": {}}}",
            escape(&self.prop),
            self.seed,
            self.case,
            self.shrinks,
            escape(&self.value),
            escape(&self.msg),
        )
    }

    fn from_json(v: &Json) -> Option<FailureRecord> {
        Some(FailureRecord {
            prop: v.get("prop")?.as_str()?.to_string(),
            seed: v.get("seed")?.as_f64()? as u64,
            case: v.get("case")?.as_f64()? as u64,
            shrinks: v.get("shrinks")?.as_f64()? as u64,
            value: v.get("value")?.as_str()?.to_string(),
            msg: v.get("msg")?.as_str()?.to_string(),
        })
    }
}

/// Serializes file access within the process (test threads share one
/// failures file).
static FILE_LOCK: Mutex<()> = Mutex::new(());

/// The default persistence directory: `VOLTCTL_CHECK_DIR`, else
/// `<workspace root>/results/check` (workspace root found by walking up
/// from `CARGO_MANIFEST_DIR` to the outermost `Cargo.toml` declaring
/// `[workspace]`), else `results/check` under the current directory.
pub fn default_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("VOLTCTL_CHECK_DIR") {
        return PathBuf::from(dir);
    }
    workspace_root().join("results").join("check")
}

/// The workspace root: the outermost ancestor of `CARGO_MANIFEST_DIR`
/// whose `Cargo.toml` declares `[workspace]` (falling back to the current
/// directory outside cargo). Shared by every results-directory default so
/// each crate's test binary agrees on one location.
pub fn workspace_root() -> PathBuf {
    let start = std::env::var("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("."));
    let mut found = start.clone();
    for dir in start.ancestors() {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                found = dir.to_path_buf();
            }
        }
    }
    found
}

fn failures_path(dir: &Path) -> PathBuf {
    dir.join("failures.jsonl")
}

/// Appends one failure record (best-effort: I/O errors are reported to
/// stderr, never panic — the property failure itself is the signal).
pub fn append(dir: &Path, record: &FailureRecord) {
    let _guard = FILE_LOCK.lock().expect("failures-file lock poisoned");
    let path = failures_path(dir);
    let write = || -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        writeln!(f, "{}", record.to_jsonl())
    };
    if let Err(e) = write() {
        eprintln!(
            "voltctl-check: could not persist failure to {}: {e}",
            path.display()
        );
    }
}

/// All persisted records (skipping unparseable lines).
pub fn load(dir: &Path) -> Vec<FailureRecord> {
    let _guard = FILE_LOCK.lock().expect("failures-file lock poisoned");
    load_unlocked(dir)
}

fn load_unlocked(dir: &Path) -> Vec<FailureRecord> {
    let Ok(text) = std::fs::read_to_string(failures_path(dir)) else {
        return Vec::new();
    };
    text.lines()
        .filter(|line| !line.trim().is_empty())
        .filter_map(|line| Json::parse(line).ok())
        .filter_map(|v| FailureRecord::from_json(&v))
        .collect()
}

/// The distinct seeds previously recorded as failing for `prop`, most
/// recent first — the runner replays these before generating anything.
pub fn red_seeds(dir: &Path, prop: &str) -> Vec<u64> {
    let mut seeds: Vec<u64> = load(dir)
        .into_iter()
        .rev()
        .filter(|r| r.prop == prop)
        .map(|r| r.seed)
        .collect();
    seeds.dedup();
    let mut seen = std::collections::HashSet::new();
    seeds.retain(|s| seen.insert(*s));
    seeds
}

/// Removes every record for `prop` (called after a fully green run).
pub fn clear(dir: &Path, prop: &str) {
    let _guard = FILE_LOCK.lock().expect("failures-file lock poisoned");
    let records = load_unlocked(dir);
    if !records.iter().any(|r| r.prop == prop) {
        return;
    }
    let kept: Vec<String> = records
        .iter()
        .filter(|r| r.prop != prop)
        .map(FailureRecord::to_jsonl)
        .collect();
    let path = failures_path(dir);
    let result = if kept.is_empty() {
        std::fs::remove_file(&path)
    } else {
        std::fs::write(&path, kept.join("\n") + "\n")
    };
    if let Err(e) = result {
        eprintln!(
            "voltctl-check: could not clear records in {}: {e}",
            path.display()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "voltctl-check-persist-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn record(prop: &str, seed: u64) -> FailureRecord {
        FailureRecord {
            prop: prop.to_string(),
            seed,
            case: 3,
            shrinks: 17,
            value: "[1.0, \"two\"]".to_string(),
            msg: "left \u{2260} right\nsecond line".to_string(),
        }
    }

    #[test]
    fn round_trips_records() {
        let dir = temp_dir("roundtrip");
        append(&dir, &record("prop.a", 11));
        append(&dir, &record("prop.b", 22));
        let loaded = load(&dir);
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0], record("prop.a", 11));
        assert_eq!(loaded[1], record("prop.b", 22));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn red_seeds_are_recent_first_and_distinct() {
        let dir = temp_dir("seeds");
        append(&dir, &record("p", 1));
        append(&dir, &record("p", 2));
        append(&dir, &record("p", 1));
        append(&dir, &record("other", 9));
        assert_eq!(red_seeds(&dir, "p"), vec![1, 2]);
        assert_eq!(red_seeds(&dir, "other"), vec![9]);
        assert!(red_seeds(&dir, "missing").is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn clear_removes_only_the_named_prop() {
        let dir = temp_dir("clear");
        append(&dir, &record("keep", 1));
        append(&dir, &record("drop", 2));
        clear(&dir, "drop");
        let loaded = load(&dir);
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].prop, "keep");
        clear(&dir, "keep");
        assert!(load(&dir).is_empty());
        assert!(!failures_path(&dir).exists(), "empty file is removed");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_dir_is_empty_not_error() {
        let dir = temp_dir("missing");
        assert!(load(&dir).is_empty());
        clear(&dir, "anything");
    }

    #[test]
    fn corrupt_lines_are_skipped() {
        let dir = temp_dir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            failures_path(&dir),
            "not json\n{\"prop\": \"p\"}\n{} \n".to_string() + &record("p", 5).to_jsonl() + "\n",
        )
        .unwrap();
        let loaded = load(&dir);
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].seed, 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
