//! A minimal JSON reader (and string escaper) for artifact validation.
//!
//! The workspace writes machine-readable artifacts (`BENCH_*.json`,
//! telemetry snapshots, failure records) with hand-rolled writers; this
//! module is the matching zero-dependency reader so tests can assert on
//! artifact *shape* — "parses, contains no NaN-null, throughput is
//! positive" — without serde. It accepts standard JSON; numbers parse to
//! `f64` (ample for every artifact the workspace emits).

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

/// Escapes a string for embedding in a JSON document (quotes included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, what: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&what) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", what as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_num(bytes, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii slice");
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| "non-ascii \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                        // Lone surrogates degrade to the replacement char
                        // (artifacts never emit them).
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (bytes are valid UTF-8: the
                // input came from &str).
                let rest = std::str::from_utf8(&bytes[*pos..]).expect("input was a str");
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"bench": "pdn", "smoke": true, "points": [{"wall_ns": 1.5e3, "bad": null}], "n": -7}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("bench").unwrap().as_str(), Some("pdn"));
        assert_eq!(v.get("smoke").unwrap().as_bool(), Some(true));
        let points = v.get("points").unwrap().as_arr().unwrap();
        assert_eq!(points[0].get("wall_ns").unwrap().as_f64(), Some(1500.0));
        assert!(points[0].get("bad").unwrap().is_null());
        assert_eq!(v.get("n").unwrap().as_f64(), Some(-7.0));
    }

    #[test]
    fn escape_round_trips() {
        let nasty = "a \"quoted\"\\ line\nwith\ttabs and \u{1} control";
        let doc = format!("{{{}: {}}}", escape("k"), escape(nasty));
        let v = Json::parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn unicode_and_empty_containers() {
        let v = Json::parse(r#"{"s": "héllo é", "a": [], "o": {}}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("héllo é"));
        assert_eq!(v.get("a").unwrap().as_arr(), Some(&[][..]));
        assert_eq!(v.get("o"), Some(&Json::Obj(Vec::new())));
    }

    #[test]
    fn accessors_are_typed() {
        let v = Json::parse("[1]").unwrap();
        assert!(v.get("x").is_none());
        assert!(v.as_f64().is_none());
        assert!(v.as_str().is_none());
        assert!(v.as_bool().is_none());
        assert_eq!(v.as_arr().map(<[Json]>::len), Some(1));
    }
}
