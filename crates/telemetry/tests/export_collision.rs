//! Regression pin for the never-overwrite writer's concurrency
//! contract.
//!
//! `write_file_fresh`'s suffix probing used to be describable as
//! check-then-create, which races when two jobs export the same
//! artifact name concurrently (both probe, both pick the same free
//! name, one clobbers the other). The writer claims names atomically
//! with a `create_new(true)` retry loop; these tests pin that contract
//! under a real multi-thread collision so it can never regress to a
//! probe-then-write shape: every racing write must land at a *distinct*
//! path, and every payload must survive exactly once.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::{Arc, Barrier};
use voltctl_telemetry::export::write_file_fresh;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "voltctl-export-collision-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn two_threads_racing_one_name_land_on_distinct_paths() {
    let dir = temp_dir("pair");
    // A barrier maximizes the chance both threads probe the same name
    // at the same instant; create_new must serialize the claim.
    let barrier = Arc::new(Barrier::new(2));
    let paths: Vec<PathBuf> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|i| {
                let barrier = Arc::clone(&barrier);
                let dir = dir.clone();
                scope.spawn(move || {
                    barrier.wait();
                    write_file_fresh(&dir, "report.counters.jsonl", &format!("writer-{i}"))
                        .expect("racing writes must both succeed")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_ne!(paths[0], paths[1], "racing writers must never share a path");
    let mut contents: Vec<String> = paths
        .iter()
        .map(|p| std::fs::read_to_string(p).unwrap())
        .collect();
    contents.sort();
    assert_eq!(
        contents,
        vec!["writer-0", "writer-1"],
        "both payloads must survive"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn many_threads_racing_one_name_lose_no_payload() {
    let dir = temp_dir("storm");
    const WRITERS: usize = 8;
    let barrier = Arc::new(Barrier::new(WRITERS));
    let paths: Vec<PathBuf> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..WRITERS)
            .map(|i| {
                let barrier = Arc::clone(&barrier);
                let dir = dir.clone();
                scope.spawn(move || {
                    barrier.wait();
                    write_file_fresh(&dir, "shard.snap", &format!("payload-{i}")).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let distinct: BTreeSet<&PathBuf> = paths.iter().collect();
    assert_eq!(
        distinct.len(),
        WRITERS,
        "every writer must claim its own file"
    );
    let survived: BTreeSet<String> = paths
        .iter()
        .map(|p| std::fs::read_to_string(p).unwrap())
        .collect();
    assert_eq!(
        survived.len(),
        WRITERS,
        "every payload must survive exactly once"
    );
    // The canonical name is among the claimed paths; suffixed names
    // carry the `-N` before the extension.
    assert!(paths.iter().any(|p| p.ends_with("shard.snap")));
    assert!(paths.iter().any(|p| p
        .file_name()
        .unwrap()
        .to_string_lossy()
        .starts_with("shard-")));
    let _ = std::fs::remove_dir_all(&dir);
}
