//! Property tests for cross-thread [`MemoryRecorder::merge`].
//!
//! The experiment engine merges per-worker recorders in whatever order
//! cells finish (and then re-merges per-cell recorders in grid order for
//! deterministic reports). For that to be sound, the order-insensitive
//! channels — counters, value-series statistics, timers, and same-shape
//! histogram bins — must be associative and commutative: any merge tree
//! over the same set of recorders must produce the same aggregate.
//!
//! Every case is generated from the in-tree SplitMix64 RNG, so a failure
//! reproduces from its printed seed.

use voltctl_telemetry::{HistogramData, MemoryRecorder, Recorder, Rng, Snapshot};

/// Shared histogram shape: merge is only bin-additive for matching
/// shapes (a mismatched shape intentionally replaces), so the
/// commutativity property is stated over same-shape histograms.
const HIST_LO: f64 = 0.0;
const HIST_HI: f64 = 1.0;
const HIST_BINS: usize = 16;

const COUNTER_NAMES: [&str; 4] = ["c.alpha", "c.beta", "c.gamma", "c.delta"];
const VALUE_NAMES: [&str; 3] = ["v.volt", "v.amp", "v.ipc"];
const TIMER_NAMES: [&str; 2] = ["t.step", "t.solve"];
const HIST_NAMES: [&str; 2] = ["h.voltage", "h.current"];

/// Builds a recorder with random contents (possibly leaving some
/// channels untouched, so name sets differ between recorders).
fn random_recorder(rng: &mut Rng) -> MemoryRecorder {
    let mut rec = MemoryRecorder::new();
    for name in COUNTER_NAMES {
        if !rng.next_u64().is_multiple_of(4) {
            rec.counter(name, rng.next_u64() % 1000);
        }
    }
    for name in VALUE_NAMES {
        let samples = rng.next_u64() % 8;
        for _ in 0..samples {
            rec.value(name, rng.next_f64() * 200.0 - 100.0);
        }
    }
    for name in TIMER_NAMES {
        if !rng.next_u64().is_multiple_of(3) {
            rec.timer_ns(name, rng.next_u64() % 1_000_000);
        }
    }
    for name in HIST_NAMES {
        if !rng.next_u64().is_multiple_of(3) {
            let mut counts = vec![0u64; HIST_BINS];
            for c in counts.iter_mut() {
                *c = rng.next_u64() % 50;
            }
            rec.histogram(
                name,
                HistogramData {
                    lo: HIST_LO,
                    hi: HIST_HI,
                    counts,
                    under: rng.next_u64() % 5,
                    over: rng.next_u64() % 5,
                },
            );
        }
    }
    rec
}

/// Exact equality of the order-insensitive channels. Counter/timer/
/// histogram arithmetic is integral, and value stats add the same f64
/// terms in the same per-name arrival order regardless of the merge
/// tree (each recorder's partial sums are fixed before any merge), so
/// bitwise comparison is the honest check: merge must not introduce
/// any re-association of per-sample floating-point arithmetic.
fn assert_aggregates_equal(a: &Snapshot, b: &Snapshot, what: &str, seed: u64) {
    assert_eq!(
        a.counters, b.counters,
        "{what} counters differ (seed {seed:#x})"
    );
    assert_eq!(a.timers, b.timers, "{what} timers differ (seed {seed:#x})");
    assert_eq!(
        a.histograms, b.histograms,
        "{what} histograms differ (seed {seed:#x})"
    );
    assert_eq!(
        a.values.len(),
        b.values.len(),
        "{what} value-name sets differ (seed {seed:#x})"
    );
    for (va, vb) in a.values.iter().zip(&b.values) {
        assert_eq!(
            va.name, vb.name,
            "{what} value names differ (seed {seed:#x})"
        );
        assert_eq!(
            va.count, vb.count,
            "{what} {}.count (seed {seed:#x})",
            va.name
        );
        assert_eq!(va.min, vb.min, "{what} {}.min (seed {seed:#x})", va.name);
        assert_eq!(va.max, vb.max, "{what} {}.max (seed {seed:#x})", va.name);
        assert!(
            (va.sum - vb.sum).abs() <= 1e-9 * va.sum.abs().max(1.0),
            "{what} {}.sum: {} vs {} (seed {seed:#x})",
            va.name,
            va.sum,
            vb.sum
        );
    }
}

/// Merges `parts` left-to-right in the order given by `perm`.
fn merge_in_order(parts: &[MemoryRecorder], perm: &[usize]) -> MemoryRecorder {
    let mut acc = MemoryRecorder::new();
    for &k in perm {
        acc.merge(&parts[k]);
    }
    acc
}

fn random_permutation(rng: &mut Rng, n: usize) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut perm);
    perm
}

#[test]
fn merge_is_commutative_under_arbitrary_order() {
    let mut rng = Rng::new(0x00b5_ecca_u64);
    for case in 0..40 {
        let seed = rng.next_u64();
        let mut case_rng = Rng::new(seed);
        let n = 2 + (case_rng.next_u64() % 6) as usize;
        let parts: Vec<MemoryRecorder> = (0..n).map(|_| random_recorder(&mut case_rng)).collect();

        let identity: Vec<usize> = (0..n).collect();
        let reference = merge_in_order(&parts, &identity).snapshot();
        for _ in 0..4 {
            let perm = random_permutation(&mut case_rng, n);
            let shuffled = merge_in_order(&parts, &perm).snapshot();
            assert_aggregates_equal(
                &reference,
                &shuffled,
                &format!("case {case} perm {perm:?}"),
                seed,
            );
        }
    }
}

#[test]
fn merge_is_associative_under_arbitrary_grouping() {
    let mut rng = Rng::new(0x000a_550c_1a7e_u64);
    for case in 0..40 {
        let seed = rng.next_u64();
        let mut case_rng = Rng::new(seed);
        let n = 3 + (case_rng.next_u64() % 5) as usize;
        let parts: Vec<MemoryRecorder> = (0..n).map(|_| random_recorder(&mut case_rng)).collect();

        // Flat left fold: ((a ⊕ b) ⊕ c) ⊕ ...
        let identity: Vec<usize> = (0..n).collect();
        let flat = merge_in_order(&parts, &identity).snapshot();

        // Random binary grouping: split at a random point, fold each
        // side flat, then merge the two partial aggregates — the shape
        // the engine produces when workers pre-aggregate their cells.
        let split = 1 + (case_rng.next_u64() as usize) % (n - 1);
        let mut left = merge_in_order(&parts, &identity[..split]);
        let right = merge_in_order(&parts, &identity[split..]);
        left.merge(&right);
        assert_aggregates_equal(
            &flat,
            &left.snapshot(),
            &format!("case {case} split {split}"),
            seed,
        );

        // Deeper tree: pairwise reduction rounds.
        let mut round: Vec<MemoryRecorder> = parts.clone();
        while round.len() > 1 {
            let mut next = Vec::new();
            for pair in round.chunks(2) {
                let mut acc = pair[0].clone();
                if let Some(b) = pair.get(1) {
                    acc.merge(b);
                }
                next.push(acc);
            }
            round = next;
        }
        assert_aggregates_equal(
            &flat,
            &round[0].snapshot(),
            &format!("case {case} pairwise-tree"),
            seed,
        );
    }
}

#[test]
fn merge_identity_is_neutral() {
    let mut rng = Rng::new(0x1d_e417_u64);
    for _ in 0..10 {
        let seed = rng.next_u64();
        let rec = random_recorder(&mut Rng::new(seed));
        let reference = rec.snapshot();

        // empty ⊕ rec == rec ⊕ empty == rec
        let mut left = MemoryRecorder::new();
        left.merge(&rec);
        assert_aggregates_equal(&reference, &left.snapshot(), "left identity", seed);
        let mut right = rec.clone();
        right.merge(&MemoryRecorder::new());
        assert_aggregates_equal(&reference, &right.snapshot(), "right identity", seed);
    }
}
