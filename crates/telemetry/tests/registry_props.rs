//! Property suite for the live-metrics registry's log-linear histogram
//! (`voltctl_telemetry::registry`), on the `voltctl-check` harness.
//!
//! The serve stack leans on three claims:
//!
//! * **Snapshot merge is a commutative monoid.** `/metrics` consumers
//!   (the `top` dashboard, dashboards summing across routes) add bucket
//!   vectors in arbitrary order; any merge tree over the same snapshots
//!   must agree bitwise (all-integer arithmetic, no re-association
//!   hazard).
//! * **Quantiles are bucket-honest.** `quantile_bounds(q)` must bracket
//!   the true rank-`ceil(q·n)` order statistic of the observed values —
//!   the log-linear layout bounds the relative error, never the rank.
//! * **Concurrent observation is deterministic in aggregate.** An
//!   8-thread increment storm over a fixed partition of observations
//!   yields the same snapshot bitwise on every run: relaxed atomic adds
//!   of integers commute, so scrape results depend on *what* was
//!   observed, never on scheduling.
//!
//! Every case reproduces from its printed seed.

use voltctl_check::{check, ensure, usize_in, vec_of, Config};
use voltctl_telemetry::registry::{bucket_hi, bucket_lo, bucket_of, HistSnapshot, Histogram};
use voltctl_telemetry::Rng;

/// Stretches small generated magnitudes across the full u64 range:
/// value v in octave o lands around 2^o, hitting linear buckets, octave
/// boundaries, and the giant-value tail alike.
fn stretch(seed: u64) -> u64 {
    let octave = (seed % 64) as u32;
    let fill = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    if octave == 0 {
        fill % 8
    } else {
        (1u64 << octave) | (fill & ((1u64 << octave) - 1))
    }
}

fn snapshot_of(values: &[u64]) -> HistSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.observe(v);
    }
    h.snapshot()
}

fn merged(a: &HistSnapshot, b: &HistSnapshot) -> HistSnapshot {
    let mut out = a.clone();
    out.merge(b);
    out
}

#[test]
fn bucket_layout_is_monotone_and_total() {
    let gen = (
        usize_in(0, i64::MAX as usize),
        usize_in(0, i64::MAX as usize),
    );
    check(
        "registry.hist.bucket-monotone",
        &Config::cases(256, 0x0B1C_0001),
        &gen,
        |&(a, b)| {
            let (v, w) = (stretch(a as u64), stretch(b as u64));
            let (lo, hi) = (v.min(w), v.max(w));
            ensure!(
                bucket_of(lo) <= bucket_of(hi),
                "bucket_of not monotone: {lo} -> {}, {hi} -> {}",
                bucket_of(lo),
                bucket_of(hi)
            );
            let idx = bucket_of(v);
            ensure!(
                bucket_lo(idx) <= v && v <= bucket_hi(idx),
                "{v} outside its own bucket {idx} [{}, {}]",
                bucket_lo(idx),
                bucket_hi(idx)
            );
            Ok(())
        },
    );
}

#[test]
fn snapshot_merge_is_commutative_and_associative() {
    let list = || vec_of(usize_in(0, i64::MAX as usize), 0, 48);
    let gen = (list(), list(), list());
    check(
        "registry.hist.merge-monoid",
        &Config::cases(64, 0x0B1C_0002),
        &gen,
        |(xs, ys, zs)| {
            let values =
                |raw: &[usize]| -> Vec<u64> { raw.iter().map(|&r| stretch(r as u64)).collect() };
            let (a, b, c) = (
                snapshot_of(&values(xs)),
                snapshot_of(&values(ys)),
                snapshot_of(&values(zs)),
            );
            ensure!(merged(&a, &b) == merged(&b, &a), "merge not commutative");
            ensure!(
                merged(&merged(&a, &b), &c) == merged(&a, &merged(&b, &c)),
                "merge not associative"
            );
            ensure!(
                merged(&a, &HistSnapshot::empty()) == a,
                "empty is not a merge identity"
            );
            // Merge equals observing the concatenation directly.
            let mut all = values(xs);
            all.extend(values(ys));
            let direct = snapshot_of(&all);
            ensure!(
                merged(&a, &b) == direct,
                "merge differs from combined observation"
            );
            Ok(())
        },
    );
}

#[test]
fn quantiles_bracket_the_true_order_statistic() {
    let gen = (
        vec_of(usize_in(0, i64::MAX as usize), 1, 96),
        usize_in(0, 1000), // q in per-mille
    );
    check(
        "registry.hist.quantile-bounds",
        &Config::cases(96, 0x0B1C_0003),
        &gen,
        |(raw, q_mille)| {
            let mut values: Vec<u64> = raw.iter().map(|&r| stretch(r as u64)).collect();
            let snap = snapshot_of(&values);
            values.sort_unstable();
            let q = *q_mille as f64 / 1000.0;
            let n = values.len() as u64;
            let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
            let truth = values[(rank - 1) as usize];
            let (lo, hi) = snap
                .quantile_bounds(q)
                .ok_or("nonempty histogram returned no quantile")?;
            ensure!(
                lo <= truth && truth <= hi,
                "q={q}: rank-{rank} value {truth} outside bucket [{lo}, {hi}]"
            );
            ensure!(
                snap.quantile(q) == Some(hi),
                "scalar quantile must be the bucket's upper bound"
            );
            Ok(())
        },
    );
}

#[test]
fn eight_thread_storms_snapshot_bitwise_deterministically() {
    let gen = (usize_in(0, i64::MAX as usize), usize_in(1, 400));
    check(
        "registry.hist.storm-deterministic",
        &Config::cases(24, 0x0B1C_0004),
        &gen,
        |&(seed, per_thread)| {
            // A fixed partition: thread t observes its own seeded list.
            let lists: Vec<Vec<u64>> = (0..8)
                .map(|t| {
                    let mut rng = Rng::new(seed as u64 ^ (t as u64) << 32);
                    (0..per_thread).map(|_| stretch(rng.next_u64())).collect()
                })
                .collect();
            let storm = |lists: &[Vec<u64>]| {
                let h = Histogram::new();
                let hist = &h;
                std::thread::scope(|scope| {
                    for list in lists {
                        scope.spawn(move || {
                            for &v in list {
                                hist.observe(v);
                            }
                        });
                    }
                });
                h.snapshot()
            };
            let first = storm(&lists);
            let second = storm(&lists);
            ensure!(first == second, "two storms over one partition differ");
            // And both equal the sequential reference.
            let flat: Vec<u64> = lists.concat();
            ensure!(
                first == snapshot_of(&flat),
                "storm differs from sequential observation"
            );
            ensure!(
                first.count() == flat.len() as u64,
                "count {} != {} observations",
                first.count(),
                flat.len()
            );
            Ok(())
        },
    );
}
