//! Zero-dependency observability for the voltctl simulator.
//!
//! Every experiment binary re-runs the closed loop of
//! `voltctl_core::loopsim` millions of cycles at a time; this crate is the
//! shared instrumentation substrate that makes those runs inspectable
//! without perturbing them:
//!
//! * [`Recorder`] — the event/metric sink trait threaded through the
//!   simulation layers. The hot path is written against a generic
//!   `R: Recorder`; the default [`NullRecorder`] has `ENABLED == false`
//!   and empty inlineable methods, so instrumented code monomorphizes to
//!   nothing when telemetry is off.
//! * [`MemoryRecorder`] — the in-memory aggregator: typed counters,
//!   value statistics with optional fixed-bin histograms, and wall-clock
//!   timers keyed by static metric names.
//! * [`Snapshot`] + [`export`] — a plain-data view of a recorder and
//!   structured writers for it: JSONL, CSV, and a human-readable
//!   end-of-run summary.
//! * [`registry`] — the *live* metrics plane: striped atomic counters,
//!   gauges, and log-linear histograms behind a labeled registry with
//!   Prometheus text exposition. Per-run simulation metrics belong in
//!   [`MemoryRecorder`]; continuously-scraped service health (request
//!   latencies, queue depth, cache hit rates) belongs here.
//! * [`rng`] — a deterministic SplitMix64 generator. The build
//!   environment has no registry access, so this replaces the `rand`
//!   crate everywhere (sensor noise, workload shuffling, property-style
//!   tests).
//! * [`stopwatch`] — wall-clock spans and a tiny micro-benchmark harness
//!   used by the `cargo bench` targets in `crates/bench`.
//!
//! # Example
//!
//! ```
//! use voltctl_telemetry::{MemoryRecorder, Recorder};
//!
//! let mut rec = MemoryRecorder::new();
//! rec.counter("loop.cycles", 100);
//! rec.counter("loop.cycles", 20);
//! rec.value("loop.voltage", 0.98);
//! let snap = rec.snapshot();
//! assert_eq!(snap.counter("loop.cycles"), Some(120));
//! let jsonl = voltctl_telemetry::export::to_jsonl(&snap);
//! assert!(jsonl.lines().count() >= 2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod collector;
pub mod export;
pub mod intern;
pub mod memory;
pub mod recorder;
pub mod registry;
pub mod rng;
pub mod snapshot;
pub mod stopwatch;

pub use collector::Collector;
pub use memory::MemoryRecorder;
pub use recorder::{HistogramData, Level, MetricId, NullRecorder, Recorder};
pub use rng::Rng;
pub use snapshot::{CounterSnapshot, HistogramSnapshot, Snapshot, TimerSnapshot, ValueSnapshot};
pub use stopwatch::Stopwatch;

/// Emits a warning on stderr in the telemetry event format.
///
/// This is the crate's diagnostic channel of last resort: layers that hold
/// no [`Recorder`] (e.g. environment parsing before any loop exists) still
/// get a uniform, grep-able `voltctl[warn] topic: message` line.
pub fn warn(topic: &str, message: &str) {
    eprintln!("voltctl[warn] {topic}: {message}");
}

#[cfg(test)]
mod tests {
    #[test]
    fn warn_does_not_panic() {
        super::warn("test", "message");
    }
}
