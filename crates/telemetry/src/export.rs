//! Structured exporters for [`Snapshot`]s: JSONL, CSV, and a
//! human-readable summary — all hand-rolled (the build environment has no
//! registry access, so no serde).
//!
//! File layout: [`write_snapshot`] puts `<run>.counters.jsonl` /
//! `<run>.counters.csv` under an output directory (default
//! `results/telemetry/`), and [`write_trace_csv`] adds optional per-cycle
//! traces next to them.

use crate::snapshot::Snapshot;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

/// Escapes a string for embedding in a JSON string literal (without the
/// surrounding quotes).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`json_escape`]. Returns `None` on malformed escapes —
/// exists so round-tripping is testable without a JSON parser.
pub fn json_unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            't' => out.push('\t'),
            'u' => {
                let hex: String = chars.by_ref().take(4).collect();
                if hex.len() != 4 {
                    return None;
                }
                let code = u32::from_str_radix(&hex, 16).ok()?;
                out.push(char::from_u32(code)?);
            }
            _ => return None,
        }
    }
    Some(out)
}

/// Quotes a CSV field per RFC 4180 when it contains a comma, quote, or
/// newline; passes it through otherwise.
pub fn csv_escape(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Inverse of [`csv_escape`] for a single field. Returns `None` when a
/// quoted field is malformed.
pub fn csv_unescape(s: &str) -> Option<String> {
    if let Some(inner) = s.strip_prefix('"') {
        let inner = inner.strip_suffix('"')?;
        let mut out = String::with_capacity(inner.len());
        let mut chars = inner.chars();
        while let Some(c) = chars.next() {
            if c == '"' {
                if chars.next()? != '"' {
                    return None;
                }
                out.push('"');
            } else {
                out.push(c);
            }
        }
        Some(out)
    } else {
        Some(s.to_string())
    }
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Renders a snapshot as JSONL: one self-describing object per line with
/// a `kind` discriminator (`counter`, `value`, `timer`, `histogram`).
pub fn to_jsonl(snap: &Snapshot) -> String {
    let mut out = String::new();
    for c in &snap.counters {
        let _ = writeln!(
            out,
            "{{\"kind\":\"counter\",\"name\":\"{}\",\"value\":{}}}",
            json_escape(&c.name),
            c.value
        );
    }
    for v in &snap.values {
        let _ = writeln!(
            out,
            "{{\"kind\":\"value\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{}}}",
            json_escape(&v.name),
            v.count,
            json_f64(v.sum),
            json_f64(v.min),
            json_f64(v.max),
            json_f64(v.mean())
        );
    }
    for t in &snap.timers {
        let _ = writeln!(
            out,
            "{{\"kind\":\"timer\",\"name\":\"{}\",\"count\":{},\"total_ns\":{},\"mean_ns\":{}}}",
            json_escape(&t.name),
            t.count,
            t.total_ns,
            json_f64(t.mean_ns())
        );
    }
    for h in &snap.histograms {
        let counts: Vec<String> = h.counts.iter().map(|c| c.to_string()).collect();
        let _ = writeln!(
            out,
            "{{\"kind\":\"histogram\",\"name\":\"{}\",\"lo\":{},\"hi\":{},\"under\":{},\"over\":{},\"counts\":[{}]}}",
            json_escape(&h.name),
            json_f64(h.lo),
            json_f64(h.hi),
            h.under,
            h.over,
            counts.join(",")
        );
    }
    out
}

/// Renders a snapshot as a flat CSV with a uniform header
/// (`kind,name,count,value,sum,min,max,mean`). Histograms emit one row
/// per bin with `name` suffixed `[center]`.
pub fn to_csv(snap: &Snapshot) -> String {
    let mut out = String::from("kind,name,count,value,sum,min,max,mean\n");
    for c in &snap.counters {
        let _ = writeln!(out, "counter,{},1,{},,,,", csv_escape(&c.name), c.value);
    }
    for v in &snap.values {
        let _ = writeln!(
            out,
            "value,{},{},,{},{},{},{}",
            csv_escape(&v.name),
            v.count,
            v.sum,
            v.min,
            v.max,
            v.mean()
        );
    }
    for t in &snap.timers {
        let _ = writeln!(
            out,
            "timer,{},{},{},,,,{}",
            csv_escape(&t.name),
            t.count,
            t.total_ns,
            t.mean_ns()
        );
    }
    for h in &snap.histograms {
        for (center, count) in h.centers() {
            let _ = writeln!(
                out,
                "histogram,{},1,{},,,,",
                csv_escape(&format!("{}[{:.4}]", h.name, center)),
                count
            );
        }
    }
    out
}

/// Renders the human-readable end-of-run summary.
pub fn to_summary(run: &str, snap: &Snapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== telemetry: {run} ==");
    if snap.is_empty() {
        let _ = writeln!(out, "  (nothing recorded)");
        return out;
    }
    if !snap.counters.is_empty() {
        let _ = writeln!(out, "-- counters --");
        let width = snap
            .counters
            .iter()
            .map(|c| c.name.len())
            .max()
            .unwrap_or(0);
        for c in &snap.counters {
            let _ = writeln!(out, "  {:width$}  {}", c.name, c.value);
        }
    }
    if !snap.values.is_empty() {
        let _ = writeln!(out, "-- values --");
        for v in &snap.values {
            let _ = writeln!(
                out,
                "  {}  n={} mean={:.6} min={:.6} max={:.6}",
                v.name,
                v.count,
                v.mean(),
                v.min,
                v.max
            );
        }
    }
    if !snap.timers.is_empty() {
        let _ = writeln!(out, "-- timers --");
        for t in &snap.timers {
            let _ = writeln!(
                out,
                "  {}  n={} total={:.3}ms mean={:.0}ns",
                t.name,
                t.count,
                t.total_ns as f64 / 1e6,
                t.mean_ns()
            );
        }
    }
    if !snap.histograms.is_empty() {
        let _ = writeln!(out, "-- histograms --");
        for h in &snap.histograms {
            let _ = writeln!(
                out,
                "  {}  [{:.4}, {:.4}) bins={} total={} under={} over={}",
                h.name,
                h.lo,
                h.hi,
                h.counts.len(),
                h.total(),
                h.under,
                h.over
            );
        }
    }
    out
}

/// The default export directory for structured snapshots.
pub const DEFAULT_OUT_DIR: &str = "results/telemetry";

/// Writes `contents` to `dir/file`, creating `dir` as needed, and returns
/// the full path. Silently overwrites — reserved for artifacts with
/// regenerate-in-place semantics (perf baselines); run exports go through
/// [`write_file_fresh`].
pub fn write_file(dir: &Path, file: &str, contents: &str) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(file);
    std::fs::write(&path, contents)?;
    Ok(path)
}

/// Splits `file` into (stem, extension) at the *last* dot, so the
/// collision suffix lands before the extension:
/// `run.counters.jsonl` → `run.counters-1.jsonl`.
fn suffixed_name(file: &str, n: u32) -> String {
    match file.rsplit_once('.') {
        Some((stem, ext)) if !stem.is_empty() => format!("{stem}-{n}.{ext}"),
        _ => format!("{file}-{n}"),
    }
}

fn warn_once_about_suffixing(path: &Path) {
    static WARNED: std::sync::Once = std::sync::Once::new();
    WARNED.call_once(|| {
        crate::warn(
            "telemetry.export",
            &format!(
                "output {} already exists; writing suffixed copies (…-N) instead of overwriting",
                path.display()
            ),
        );
    });
}

/// Writes `contents` to `dir/file`, or — when that file already exists —
/// to the first free `dir/<stem>-N.<ext>` (N = 1, 2, …), never
/// overwriting. Warns once per process on the first collision. Creation
/// uses `create_new` so concurrent writers cannot clobber each other.
pub fn write_file_fresh(dir: &Path, file: &str, contents: &str) -> io::Result<PathBuf> {
    write_bytes_fresh(dir, file, contents.as_bytes())
}

/// [`write_file_fresh`] for binary artifacts (snapshot checkpoints):
/// identical `-N` suffix semantics, raw bytes instead of UTF-8 text.
pub fn write_bytes_fresh(dir: &Path, file: &str, contents: &[u8]) -> io::Result<PathBuf> {
    use std::io::Write as _;
    std::fs::create_dir_all(dir)?;
    let mut name = file.to_string();
    let mut n = 0u32;
    loop {
        let path = dir.join(&name);
        match std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
        {
            Ok(mut f) => {
                f.write_all(contents)?;
                return Ok(path);
            }
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                if n == 0 {
                    warn_once_about_suffixing(&path);
                }
                n += 1;
                name = suffixed_name(file, n);
            }
            Err(e) => return Err(e),
        }
    }
}

/// Creates the directory `parent/name`, or — when it already exists —
/// the first free `parent/name-N` (N = 1, 2, …): the directory-level
/// twin of [`write_file_fresh`], used for checkpoint directories so a
/// rerun never mingles its shards with a previous run's. Creation uses
/// `create_dir` (not `create_dir_all` on the leaf) so concurrent
/// callers cannot claim the same directory.
pub fn create_dir_fresh(parent: &Path, name: &str) -> io::Result<PathBuf> {
    std::fs::create_dir_all(parent)?;
    let mut candidate = name.to_string();
    let mut n = 0u32;
    loop {
        let path = parent.join(&candidate);
        match std::fs::create_dir(&path) {
            Ok(()) => return Ok(path),
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                if n == 0 {
                    warn_once_about_suffixing(&path);
                }
                n += 1;
                candidate = suffixed_name(name, n);
            }
            Err(e) => return Err(e),
        }
    }
}

/// Writes `<run>.counters.jsonl` or `<run>.counters.csv` (per `csv`)
/// under `dir`, returning the path. Never overwrites an existing export
/// (see [`write_file_fresh`]).
pub fn write_snapshot(dir: &Path, run: &str, snap: &Snapshot, csv: bool) -> io::Result<PathBuf> {
    if csv {
        write_file_fresh(dir, &format!("{run}.counters.csv"), &to_csv(snap))
    } else {
        write_file_fresh(dir, &format!("{run}.counters.jsonl"), &to_jsonl(snap))
    }
}

/// Writes the human-readable summary as `<run>.summary.txt` under
/// `dir`, returning the path. Never overwrites an existing export (see
/// [`write_file_fresh`]).
pub fn write_summary(dir: &Path, run: &str, snap: &Snapshot) -> io::Result<PathBuf> {
    write_file_fresh(dir, &format!("{run}.summary.txt"), &to_summary(run, snap))
}

/// Writes a per-cycle (or per-row) trace as `<run>.<name>.csv`: one
/// header row, then one row per record. Never overwrites an existing
/// export (see [`write_file_fresh`]).
pub fn write_trace_csv(
    dir: &Path,
    run: &str,
    name: &str,
    headers: &[&str],
    rows: impl IntoIterator<Item = Vec<f64>>,
) -> io::Result<PathBuf> {
    let mut out = String::new();
    let escaped: Vec<String> = headers.iter().map(|h| csv_escape(h)).collect();
    out.push_str(&escaped.join(","));
    out.push('\n');
    for row in rows {
        let cells: Vec<String> = row.iter().map(|x| format!("{x}")).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    write_file_fresh(dir, &format!("{run}.{name}.csv"), &out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryRecorder;
    use crate::recorder::Recorder;

    fn sample_snapshot() -> Snapshot {
        let mut r = MemoryRecorder::new();
        r.counter("loop.cycles", 1000);
        r.counter("loop.emergency_cycles", 3);
        r.value("loop.voltage", 0.98);
        r.value("loop.voltage", 1.01);
        r.timer_ns("loop.step.cpu", 12345);
        r.register_histogram("h", 0.9, 1.1, 4);
        r.value("h", 0.95);
        r.snapshot()
    }

    #[test]
    fn json_escape_round_trips() {
        for s in [
            "plain",
            "with \"quotes\" and \\backslash\\",
            "line\nbreak\ttab\rret",
            "control\u{1}char",
            "unicode ✓ ω",
            "",
        ] {
            let escaped = json_escape(s);
            assert!(!escaped.contains('\n'), "escaped form must be single-line");
            assert_eq!(json_unescape(&escaped).as_deref(), Some(s));
        }
    }

    #[test]
    fn json_unescape_rejects_malformed() {
        assert_eq!(json_unescape("trailing\\"), None);
        assert_eq!(json_unescape("\\q"), None);
        assert_eq!(json_unescape("\\u12"), None);
        assert_eq!(json_unescape("\\ud800"), None, "lone surrogate");
    }

    #[test]
    fn csv_escape_round_trips() {
        for s in [
            "plain",
            "a,b",
            "quote\"inside",
            "multi\nline",
            "\"already quoted\"",
            "",
        ] {
            assert_eq!(csv_unescape(&csv_escape(s)).as_deref(), Some(s));
        }
    }

    #[test]
    fn csv_unescape_rejects_malformed() {
        assert_eq!(csv_unescape("\"unterminated"), None);
        assert_eq!(csv_unescape("\"bad \" quote\""), None);
    }

    #[test]
    fn jsonl_is_line_structured_and_complete() {
        let snap = sample_snapshot();
        let jsonl = to_jsonl(&snap);
        let lines: Vec<&str> = jsonl.lines().collect();
        // 2 counters + 2 values + 1 timer + 1 histogram.
        assert_eq!(lines.len(), 6);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"kind\":\""));
        }
        assert!(jsonl.contains("\"name\":\"loop.cycles\",\"value\":1000"));
        assert!(jsonl.contains("\"kind\":\"histogram\""));
    }

    #[test]
    fn csv_has_uniform_arity() {
        let snap = sample_snapshot();
        let csv = to_csv(&snap);
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        let arity = header.split(',').count();
        for line in lines {
            assert_eq!(line.split(',').count(), arity, "{line}");
        }
    }

    #[test]
    fn summary_mentions_every_section() {
        let s = to_summary("test-run", &sample_snapshot());
        for needle in ["test-run", "counters", "values", "timers", "histograms"] {
            assert!(s.contains(needle), "missing {needle}");
        }
        assert!(to_summary("empty", &Snapshot::default()).contains("nothing recorded"));
    }

    #[test]
    fn writes_files_under_dir() {
        let dir =
            std::env::temp_dir().join(format!("voltctl-telemetry-test-{}", std::process::id()));
        let snap = sample_snapshot();
        let p1 = write_snapshot(&dir, "run", &snap, false).unwrap();
        let p2 = write_snapshot(&dir, "run", &snap, true).unwrap();
        let p3 = write_trace_csv(&dir, "run", "trace", &["a", "b"], vec![vec![1.0, 2.0]]).unwrap();
        assert!(std::fs::read_to_string(&p1).unwrap().contains("counter"));
        assert!(std::fs::read_to_string(&p2).unwrap().starts_with("kind,"));
        assert_eq!(std::fs::read_to_string(&p3).unwrap(), "a,b\n1,2\n");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fresh_write_suffixes_instead_of_overwriting() {
        let dir = std::env::temp_dir().join(format!("voltctl-fresh-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let p1 = write_file_fresh(&dir, "run.counters.jsonl", "first").unwrap();
        let p2 = write_file_fresh(&dir, "run.counters.jsonl", "second").unwrap();
        let p3 = write_file_fresh(&dir, "run.counters.jsonl", "third").unwrap();
        assert_eq!(p1.file_name().unwrap(), "run.counters.jsonl");
        assert_eq!(p2.file_name().unwrap(), "run.counters-1.jsonl");
        assert_eq!(p3.file_name().unwrap(), "run.counters-2.jsonl");
        // The original is untouched; every write landed somewhere.
        assert_eq!(std::fs::read_to_string(&p1).unwrap(), "first");
        assert_eq!(std::fs::read_to_string(&p2).unwrap(), "second");
        assert_eq!(std::fs::read_to_string(&p3).unwrap(), "third");

        // Extension-less names get a plain numeric suffix.
        let q1 = write_file_fresh(&dir, "noext", "a").unwrap();
        let q2 = write_file_fresh(&dir, "noext", "b").unwrap();
        assert_eq!(q1.file_name().unwrap(), "noext");
        assert_eq!(q2.file_name().unwrap(), "noext-1");

        // The snapshot/trace writers inherit the semantics: a re-export
        // of the same run must not clobber the first export.
        let snap = sample_snapshot();
        let s1 = write_snapshot(&dir, "run2", &snap, false).unwrap();
        let s2 = write_snapshot(&dir, "run2", &snap, false).unwrap();
        assert_ne!(s1, s2);
        assert!(s1.exists() && s2.exists());
        let t1 = write_trace_csv(&dir, "run2", "trace", &["a"], vec![vec![1.0]]).unwrap();
        let t2 = write_trace_csv(&dir, "run2", "trace", &["a"], vec![vec![2.0]]).unwrap();
        assert_ne!(t1, t2);
        assert_eq!(std::fs::read_to_string(&t1).unwrap(), "a\n1\n");
        assert_eq!(std::fs::read_to_string(&t2).unwrap(), "a\n2\n");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fresh_dirs_suffix_like_fresh_files() {
        let parent =
            std::env::temp_dir().join(format!("voltctl-freshdir-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&parent);
        let d1 = create_dir_fresh(&parent, "ckpt").unwrap();
        let d2 = create_dir_fresh(&parent, "ckpt").unwrap();
        let d3 = create_dir_fresh(&parent, "ckpt").unwrap();
        assert_eq!(d1.file_name().unwrap(), "ckpt");
        assert_eq!(d2.file_name().unwrap(), "ckpt-1");
        assert_eq!(d3.file_name().unwrap(), "ckpt-2");
        assert!(d1.is_dir() && d2.is_dir() && d3.is_dir());
        std::fs::remove_dir_all(&parent).unwrap();
    }

    #[test]
    fn suffixed_name_places_counter_before_extension() {
        assert_eq!(
            suffixed_name("run.counters.jsonl", 1),
            "run.counters-1.jsonl"
        );
        assert_eq!(suffixed_name("trace.csv", 3), "trace-3.csv");
        assert_eq!(suffixed_name("noext", 1), "noext-1");
        assert_eq!(suffixed_name(".hidden", 1), ".hidden-1");
    }
}
