//! The in-memory aggregating recorder, structure-of-arrays edition.
//!
//! # Hot-path layout
//!
//! Metric names are interned once into a [`MetricId`] (a dense `u32`);
//! every channel is then a flat `Vec` indexed by that id:
//!
//! * counters — `Vec<u64>`, one add per record;
//! * timers — `Vec<(count, total_ns)>`, two adds per record;
//! * value series — a per-metric *pending ring* of raw `f64` samples.
//!   Recording is a bare `Vec::push` into preallocated capacity; the
//!   min/max/sum fold and optional histogram bucketing are deferred
//!   until the ring fills ([`PENDING_CHUNK`] samples), the series is
//!   merged, or a snapshot is taken. Samples are always folded in
//!   arrival order, so the deferred aggregation produces bit-identical
//!   `f64` statistics to the old fold-per-sample recorder.
//!
//! The string-keyed [`Recorder`] methods remain (they intern on every
//! call and are fine for run-level flushes); per-cycle call sites
//! resolve ids up front via [`Recorder::metric_id`] and use the `*_id`
//! methods, which cost one bounds-checked index instead of a `BTreeMap`
//! walk per sample.

use crate::recorder::{HistogramData, Level, MetricId, Recorder};
use crate::snapshot::{CounterSnapshot, HistogramSnapshot, Snapshot, TimerSnapshot, ValueSnapshot};
use std::collections::BTreeMap;

/// Pending-ring capacity per value series: samples buffered before the
/// deferred min/max/sum/bucket fold runs. Amortizes the fold to a few
/// tenths of a nanosecond per sample while bounding per-metric memory.
pub const PENDING_CHUNK: usize = 4096;

#[derive(Debug, Clone, Copy)]
struct ValueStat {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl ValueStat {
    fn new() -> ValueStat {
        ValueStat {
            count: 0,
            sum: 0.0,
            min: f64::MAX,
            max: f64::MIN,
        }
    }

    fn push(&mut self, sample: f64) {
        self.count += 1;
        self.sum += sample;
        self.min = self.min.min(sample);
        self.max = self.max.max(sample);
    }

    fn merge(&mut self, other: &ValueStat) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

fn bucket_sample(h: &mut HistogramData, sample: f64) {
    if sample < h.lo {
        h.under += 1;
    } else if sample >= h.hi {
        h.over += 1;
    } else {
        let bins = h.counts.len();
        let idx = ((sample - h.lo) / (h.hi - h.lo) * bins as f64) as usize;
        h.counts[idx.min(bins - 1)] += 1;
    }
}

/// One value series: the pending sample ring plus the folded statistics
/// and optional attached histogram.
#[derive(Debug, Clone)]
struct ValueSeries {
    pending: Vec<f64>,
    stat: ValueStat,
    bucket: Option<HistogramData>,
}

impl ValueSeries {
    fn new() -> ValueSeries {
        ValueSeries {
            pending: Vec::new(),
            stat: ValueStat::new(),
            bucket: None,
        }
    }

    #[inline]
    fn push(&mut self, sample: f64) {
        if self.pending.capacity() == 0 {
            self.pending.reserve_exact(PENDING_CHUNK);
        }
        self.pending.push(sample);
        if self.pending.len() >= PENDING_CHUNK {
            self.drain();
        }
    }

    /// Folds the pending ring into the running statistics (and histogram
    /// when attached), in arrival order.
    fn drain(&mut self) {
        for &sample in &self.pending {
            self.stat.push(sample);
        }
        if let Some(h) = &mut self.bucket {
            for &sample in &self.pending {
                bucket_sample(h, sample);
            }
        }
        self.pending.clear();
    }

    /// The folded statistics *as if* the ring were drained, without
    /// mutating (for `&self` snapshots).
    fn effective_stat(&self) -> ValueStat {
        let mut stat = self.stat;
        for &sample in &self.pending {
            stat.push(sample);
        }
        stat
    }

    /// The attached histogram with pending samples folded in, without
    /// mutating.
    fn effective_bucket(&self) -> Option<HistogramData> {
        let mut h = self.bucket.clone()?;
        for &sample in &self.pending {
            bucket_sample(&mut h, sample);
        }
        Some(h)
    }
}

/// A recorded discrete event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordedEvent {
    /// Severity.
    pub level: Level,
    /// Event topic.
    pub topic: &'static str,
    /// Free-form message.
    pub message: String,
}

/// Aggregates counters, value statistics, timers, histograms, and events
/// in memory; the run-end [`Snapshot`] feeds the exporters.
///
/// Value series can optionally be bucketed: [`register_histogram`]
/// attaches a fixed-bin histogram that subsequent samples also land in.
///
/// [`register_histogram`]: MemoryRecorder::register_histogram
#[derive(Debug, Clone, Default)]
pub struct MemoryRecorder {
    /// `name -> id`; also the sorted iteration order for snapshots.
    index: BTreeMap<&'static str, u32>,
    /// `id -> name`.
    names: Vec<&'static str>,
    /// Counter channel, id-indexed; the parallel `bool` marks slots a
    /// counter was actually recorded into (an interned name does not by
    /// itself create a counter).
    counters: Vec<u64>,
    counters_used: Vec<bool>,
    /// Timer channel, id-indexed `(span count, total ns)`.
    timers: Vec<(u64, u64)>,
    timers_used: Vec<bool>,
    /// Value channel, id-indexed.
    values: Vec<ValueSeries>,
    /// Wholesale pre-aggregated histograms ([`Recorder::histogram`]),
    /// id-indexed.
    histograms: Vec<Option<HistogramData>>,
    events: Vec<RecordedEvent>,
    echo_warnings: bool,
}

impl MemoryRecorder {
    /// Creates an empty recorder.
    pub fn new() -> MemoryRecorder {
        MemoryRecorder::default()
    }

    /// Also prints `Warn` events to stderr as they arrive (for long runs
    /// where the summary only appears at the end).
    pub fn echo_warnings(mut self, echo: bool) -> MemoryRecorder {
        self.echo_warnings = echo;
        self
    }

    /// Interns `name`, growing every channel's flat storage in lockstep.
    fn intern(&mut self, name: &'static str) -> u32 {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.index.insert(name, id);
        self.names.push(name);
        self.counters.push(0);
        self.counters_used.push(false);
        self.timers.push((0, 0));
        self.timers_used.push(false);
        self.values.push(ValueSeries::new());
        self.histograms.push(None);
        id
    }

    /// Attaches a fixed-bin histogram to the value series `name`: every
    /// later [`Recorder::value`] sample for that series is also bucketed
    /// into `bins` equal bins spanning `[lo, hi)`. Samples recorded
    /// *before* the registration keep their statistics but are not
    /// retroactively bucketed.
    ///
    /// # Panics
    ///
    /// Panics when `lo >= hi` or `bins == 0`.
    pub fn register_histogram(&mut self, name: &'static str, lo: f64, hi: f64, bins: usize) {
        assert!(lo < hi, "histogram range must be non-empty");
        assert!(bins > 0, "histogram needs at least one bin");
        let id = self.intern(name) as usize;
        let series = &mut self.values[id];
        // Earlier samples predate the bucket: fold them first so they
        // land in the statistics only.
        series.drain();
        series.bucket = Some(HistogramData {
            lo,
            hi,
            counts: vec![0; bins],
            under: 0,
            over: 0,
        });
    }

    /// The events recorded so far, in arrival order.
    pub fn events(&self) -> &[RecordedEvent] {
        &self.events
    }

    /// Folds another recorder's aggregates into this one (counters and
    /// timers add; value stats combine; histograms add bin-wise when the
    /// shapes match, otherwise the other's replaces this one's; events
    /// append).
    pub fn merge(&mut self, other: &MemoryRecorder) {
        // Fold our own pending samples first so the combined sums keep
        // strict arrival order: everything recorded here so far, then the
        // other recorder's totals.
        for series in &mut self.values {
            series.drain();
        }
        for (&name, &oid) in &other.index {
            let oid = oid as usize;
            let id = self.intern(name) as usize;
            if other.counters_used[oid] {
                self.counters[id] += other.counters[oid];
                self.counters_used[id] = true;
            }
            if other.timers_used[oid] {
                self.timers[id].0 += other.timers[oid].0;
                self.timers[id].1 += other.timers[oid].1;
                self.timers_used[id] = true;
            }
            let oseries = &other.values[oid];
            let ostat = oseries.effective_stat();
            if ostat.count > 0 {
                self.values[id].stat.merge(&ostat);
            }
            // Wholesale histograms first, then the other's bucketed one —
            // same shapes add bin-wise, a different shape replaces.
            if let Some(h) = &other.histograms[oid] {
                merge_histogram(&mut self.histograms[id], h);
            }
            if let Some(h) = oseries.effective_bucket() {
                merge_histogram(&mut self.histograms[id], &h);
            }
        }
        self.events.extend(other.events.iter().cloned());
    }

    /// Produces the plain-data view for export (names sorted).
    pub fn snapshot(&self) -> Snapshot {
        let mut counters = Vec::new();
        let mut values = Vec::new();
        let mut timers = Vec::new();
        let mut histograms = Vec::new();
        for (&name, &id) in &self.index {
            let id = id as usize;
            if self.counters_used[id] {
                counters.push(CounterSnapshot {
                    name: name.to_string(),
                    value: self.counters[id],
                });
            }
            let series = &self.values[id];
            let stat = series.effective_stat();
            if stat.count > 0 {
                values.push(ValueSnapshot {
                    name: name.to_string(),
                    count: stat.count,
                    sum: stat.sum,
                    min: stat.min,
                    max: stat.max,
                });
            }
            if self.timers_used[id] {
                let (count, total_ns) = self.timers[id];
                timers.push(TimerSnapshot {
                    name: name.to_string(),
                    count,
                    total_ns,
                });
            }
            let mut effective = self.histograms[id].clone();
            if let Some(bucket) = series.effective_bucket() {
                if bucket.total() > 0 {
                    merge_histogram(&mut effective, &bucket);
                }
            }
            if let Some(h) = effective {
                histograms.push(HistogramSnapshot {
                    name: name.to_string(),
                    lo: h.lo,
                    hi: h.hi,
                    counts: h.counts,
                    under: h.under,
                    over: h.over,
                });
            }
        }
        Snapshot {
            counters,
            values,
            timers,
            histograms,
        }
    }
}

impl voltctl_snap::Pack for ValueStat {
    fn pack(&self, w: &mut voltctl_snap::ByteWriter) {
        w.put_u64(self.count);
        w.put_f64(self.sum);
        w.put_f64(self.min);
        w.put_f64(self.max);
    }
}

impl voltctl_snap::Unpack for ValueStat {
    fn unpack(r: &mut voltctl_snap::ByteReader<'_>) -> Result<Self, voltctl_snap::SnapError> {
        Ok(ValueStat {
            count: r.get_u64()?,
            sum: r.get_f64()?,
            min: r.get_f64()?,
            max: r.get_f64()?,
        })
    }
}

/// A value series is checkpointed with its pending ring pre-folded:
/// samples fold in arrival order either way, so folding at save time
/// and restoring with an empty ring is bitwise-equivalent to never
/// having checkpointed.
impl voltctl_snap::Pack for ValueSeries {
    fn pack(&self, w: &mut voltctl_snap::ByteWriter) {
        voltctl_snap::Pack::pack(&self.effective_stat(), w);
        voltctl_snap::Pack::pack(&self.effective_bucket(), w);
    }
}

impl voltctl_snap::Unpack for ValueSeries {
    fn unpack(r: &mut voltctl_snap::ByteReader<'_>) -> Result<Self, voltctl_snap::SnapError> {
        Ok(ValueSeries {
            pending: Vec::new(),
            stat: voltctl_snap::Unpack::unpack(r)?,
            bucket: voltctl_snap::Unpack::unpack(r)?,
        })
    }
}

impl voltctl_snap::Pack for RecordedEvent {
    fn pack(&self, w: &mut voltctl_snap::ByteWriter) {
        voltctl_snap::Pack::pack(&self.level, w);
        w.put_str(self.topic);
        w.put_str(&self.message);
    }
}

impl voltctl_snap::Unpack for RecordedEvent {
    fn unpack(r: &mut voltctl_snap::ByteReader<'_>) -> Result<Self, voltctl_snap::SnapError> {
        Ok(RecordedEvent {
            level: voltctl_snap::Unpack::unpack(r)?,
            topic: crate::intern::intern_static(&r.get_str()?),
            message: r.get_str()?,
        })
    }
}

impl voltctl_snap::Pack for MemoryRecorder {
    fn pack(&self, w: &mut voltctl_snap::ByteWriter) {
        w.put_usize(self.names.len());
        for name in &self.names {
            w.put_str(name);
        }
        voltctl_snap::Pack::pack(&self.counters, w);
        voltctl_snap::Pack::pack(&self.counters_used, w);
        voltctl_snap::Pack::pack(&self.timers, w);
        voltctl_snap::Pack::pack(&self.timers_used, w);
        voltctl_snap::Pack::pack(&self.values, w);
        voltctl_snap::Pack::pack(&self.histograms, w);
        voltctl_snap::Pack::pack(&self.events, w);
        w.put_bool(self.echo_warnings);
    }
}

impl voltctl_snap::Unpack for MemoryRecorder {
    fn unpack(r: &mut voltctl_snap::ByteReader<'_>) -> Result<Self, voltctl_snap::SnapError> {
        use voltctl_snap::SnapError;
        let n = r.get_count("recorder names")?;
        let mut names: Vec<&'static str> = Vec::with_capacity(n);
        let mut index = BTreeMap::new();
        for id in 0..n {
            let name = crate::intern::intern_static(&r.get_str()?);
            if index.insert(name, id as u32).is_some() {
                return Err(SnapError::Corrupt(format!(
                    "duplicate metric name {name:?} in recorder snapshot"
                )));
            }
            names.push(name);
        }
        let counters: Vec<u64> = voltctl_snap::Unpack::unpack(r)?;
        let counters_used: Vec<bool> = voltctl_snap::Unpack::unpack(r)?;
        let timers: Vec<(u64, u64)> = voltctl_snap::Unpack::unpack(r)?;
        let timers_used: Vec<bool> = voltctl_snap::Unpack::unpack(r)?;
        let values: Vec<ValueSeries> = voltctl_snap::Unpack::unpack(r)?;
        let histograms: Vec<Option<HistogramData>> = voltctl_snap::Unpack::unpack(r)?;
        let events: Vec<RecordedEvent> = voltctl_snap::Unpack::unpack(r)?;
        let echo_warnings = r.get_bool()?;
        for (what, len) in [
            ("counters", counters.len()),
            ("counters_used", counters_used.len()),
            ("timers", timers.len()),
            ("timers_used", timers_used.len()),
            ("values", values.len()),
            ("histograms", histograms.len()),
        ] {
            if len != n {
                return Err(SnapError::Corrupt(format!(
                    "recorder channel {what} has {len} slot(s) for {n} name(s)"
                )));
            }
        }
        Ok(MemoryRecorder {
            index,
            names,
            counters,
            counters_used,
            timers,
            timers_used,
            values,
            histograms,
            events,
            echo_warnings,
        })
    }
}

fn merge_histogram(into: &mut Option<HistogramData>, h: &HistogramData) {
    match into {
        Some(existing)
            if existing.counts.len() == h.counts.len()
                && existing.lo == h.lo
                && existing.hi == h.hi =>
        {
            for (a, b) in existing.counts.iter_mut().zip(&h.counts) {
                *a += b;
            }
            existing.under += h.under;
            existing.over += h.over;
        }
        _ => {
            *into = Some(h.clone());
        }
    }
}

impl Recorder for MemoryRecorder {
    fn metric_id(&mut self, name: &'static str) -> MetricId {
        MetricId(self.intern(name))
    }

    fn counter(&mut self, name: &'static str, delta: u64) {
        let id = self.intern(name);
        self.counter_id(MetricId(id), delta);
    }

    #[inline]
    fn counter_id(&mut self, id: MetricId, delta: u64) {
        let i = id.0 as usize;
        self.counters[i] += delta;
        self.counters_used[i] = true;
    }

    fn value(&mut self, name: &'static str, sample: f64) {
        let id = self.intern(name);
        self.value_id(MetricId(id), sample);
    }

    #[inline]
    fn value_id(&mut self, id: MetricId, sample: f64) {
        self.values[id.0 as usize].push(sample);
    }

    fn timer_ns(&mut self, name: &'static str, nanos: u64) {
        let id = self.intern(name);
        self.timer_id(MetricId(id), nanos);
    }

    #[inline]
    fn timer_id(&mut self, id: MetricId, nanos: u64) {
        let i = id.0 as usize;
        self.timers[i].0 += 1;
        self.timers[i].1 += nanos;
        self.timers_used[i] = true;
    }

    fn histogram(&mut self, name: &'static str, data: HistogramData) {
        // Accumulate, matching `merge` semantics: same-shape histograms
        // add bin-wise, a different shape replaces.
        let id = self.intern(name) as usize;
        merge_histogram(&mut self.histograms[id], &data);
    }

    fn event(&mut self, level: Level, topic: &'static str, message: &str) {
        if self.echo_warnings && level == Level::Warn {
            crate::warn(topic, message);
        }
        self.events.push(RecordedEvent {
            level,
            topic,
            message: message.to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut r = MemoryRecorder::new();
        r.counter("a", 3);
        r.counter("a", 4);
        r.counter("b", 1);
        let s = r.snapshot();
        assert_eq!(s.counter("a"), Some(7));
        assert_eq!(s.counter("b"), Some(1));
    }

    #[test]
    fn value_stats_track_min_max_mean() {
        let mut r = MemoryRecorder::new();
        for v in [1.0, 2.0, 6.0] {
            r.value("x", v);
        }
        let s = r.snapshot();
        let v = s.value("x").unwrap();
        assert_eq!(v.count, 3);
        assert_eq!(v.min, 1.0);
        assert_eq!(v.max, 6.0);
        assert!((v.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn registered_histogram_buckets_samples() {
        let mut r = MemoryRecorder::new();
        r.register_histogram("v", 0.0, 1.0, 4);
        for v in [-0.1, 0.1, 0.3, 0.6, 0.6, 0.99, 1.5] {
            r.value("v", v);
        }
        let s = r.snapshot();
        let h = s.histogram("v").unwrap();
        assert_eq!(h.counts, vec![1, 1, 2, 1]);
        assert_eq!(h.under, 1);
        assert_eq!(h.over, 1);
        assert_eq!(h.total(), 7);
        assert_eq!(h.total(), s.value("v").unwrap().count);
    }

    #[test]
    fn samples_before_registration_are_not_bucketed() {
        let mut r = MemoryRecorder::new();
        r.value("v", 0.5);
        r.register_histogram("v", 0.0, 1.0, 2);
        r.value("v", 0.5);
        let s = r.snapshot();
        assert_eq!(s.value("v").unwrap().count, 2, "stats keep every sample");
        assert_eq!(s.histogram("v").unwrap().total(), 1, "bucket starts late");
    }

    #[test]
    fn timers_accumulate_spans() {
        let mut r = MemoryRecorder::new();
        r.timer_ns("t", 100);
        r.timer_ns("t", 300);
        let s = r.snapshot();
        let t = s.timer("t").unwrap();
        assert_eq!(t.count, 2);
        assert_eq!(t.total_ns, 400);
        assert!((t.mean_ns() - 200.0).abs() < 1e-12);
    }

    #[test]
    fn id_path_matches_name_path_exactly() {
        let mut by_name = MemoryRecorder::new();
        let mut by_id = MemoryRecorder::new();
        by_id.register_histogram("v", 0.0, 1.0, 4);
        by_name.register_histogram("v", 0.0, 1.0, 4);
        let v = by_id.metric_id("v");
        let c = by_id.metric_id("c");
        let t = by_id.metric_id("t");
        assert_eq!(by_id.metric_id("v"), v, "interning is idempotent");
        let mut x = 0.9_f64;
        for i in 0..10_000u64 {
            x = (x * 1.3).fract();
            by_name.value("v", x);
            by_name.counter("c", i & 3);
            by_name.timer_ns("t", i);
            by_id.value_id(v, x);
            by_id.counter_id(c, i & 3);
            by_id.timer_id(t, i);
        }
        assert_eq!(by_name.snapshot(), by_id.snapshot());
    }

    #[test]
    fn pending_ring_drains_across_chunk_boundary() {
        let mut r = MemoryRecorder::new();
        let id = r.metric_id("v");
        let n = (PENDING_CHUNK * 2 + 17) as u64;
        for i in 0..n {
            r.value_id(id, i as f64);
        }
        let s = r.snapshot();
        let v = s.value("v").unwrap();
        assert_eq!(v.count, n);
        assert_eq!(v.min, 0.0);
        assert_eq!(v.max, (n - 1) as f64);
        assert_eq!(v.sum, (n * (n - 1) / 2) as f64);
    }

    #[test]
    fn merge_combines_all_channels() {
        let mut a = MemoryRecorder::new();
        a.counter("c", 1);
        a.value("v", 1.0);
        a.timer_ns("t", 10);
        a.event(Level::Info, "e", "one");
        let mut b = MemoryRecorder::new();
        b.counter("c", 2);
        b.value("v", 3.0);
        b.timer_ns("t", 20);
        b.event(Level::Warn, "e", "two");
        a.merge(&b);
        let s = a.snapshot();
        assert_eq!(s.counter("c"), Some(3));
        assert_eq!(s.value("v").unwrap().count, 2);
        assert_eq!(s.timer("t").unwrap().total_ns, 30);
        assert_eq!(a.events().len(), 2);
    }

    #[test]
    fn merge_adds_matching_histograms() {
        let h = |counts: Vec<u64>| HistogramData {
            lo: 0.0,
            hi: 1.0,
            counts,
            under: 0,
            over: 1,
        };
        let mut a = MemoryRecorder::new();
        a.histogram("h", h(vec![1, 0]));
        let mut b = MemoryRecorder::new();
        b.histogram("h", h(vec![2, 5]));
        a.merge(&b);
        let s = a.snapshot();
        let got = s.histogram("h").unwrap();
        assert_eq!(got.counts, vec![3, 5]);
        assert_eq!(got.over, 2);
    }

    #[test]
    fn merge_folds_pending_samples_from_both_sides() {
        let mut a = MemoryRecorder::new();
        let mut b = MemoryRecorder::new();
        b.register_histogram("v", 0.0, 1.0, 2);
        let ia = a.metric_id("v");
        let ib = b.metric_id("v");
        for i in 0..100 {
            a.value_id(ia, i as f64 / 100.0);
            b.value_id(ib, i as f64 / 100.0);
        }
        a.merge(&b);
        let s = a.snapshot();
        assert_eq!(s.value("v").unwrap().count, 200, "pending samples survive");
        assert_eq!(s.histogram("v").unwrap().total(), 100);
        // `b` itself is untouched.
        assert_eq!(b.snapshot().value("v").unwrap().count, 100);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn degenerate_histogram_range_rejected() {
        MemoryRecorder::new().register_histogram("x", 1.0, 1.0, 4);
    }

    #[test]
    fn wire_round_trip_preserves_every_channel_and_future_samples() {
        use voltctl_snap::{ByteReader, ByteWriter, Pack, Unpack};
        let build = |checkpoint_at: usize| -> Snapshot {
            let mut r = MemoryRecorder::new();
            r.register_histogram("v", 0.0, 1.0, 8);
            r.counter("c", 5);
            r.timer_ns("t", 111);
            r.event(Level::Warn, "topic", "early");
            // Force the id-interning path so the checkpoint carries an
            // interned metric, not just name-keyed series.
            let _id = r.metric_id("v");
            let mut x = 0.37_f64;
            for i in 0..(PENDING_CHUNK + 99) {
                if i == checkpoint_at {
                    // Detour through the wire format mid-stream.
                    let mut w = ByteWriter::new();
                    r.pack(&mut w);
                    let bytes = w.into_bytes();
                    let mut rd = ByteReader::new(&bytes);
                    r = MemoryRecorder::unpack(&mut rd).unwrap();
                    rd.expect_end("recorder").unwrap();
                }
                x = (x * 1.7 + 0.11).fract();
                r.value("v", x);
            }
            r.counter("c", 2);
            r.event(Level::Info, "topic", "late");
            r.snapshot()
        };
        let straight = build(usize::MAX);
        // Checkpointing mid-pending-ring or at a chunk boundary must be
        // invisible in the final snapshot, bit for bit.
        for at in [0, 17, PENDING_CHUNK] {
            assert_eq!(build(at), straight, "checkpoint at sample {at}");
        }
    }

    #[test]
    fn wire_decode_rejects_mismatched_channel_lengths() {
        use voltctl_snap::{ByteReader, ByteWriter, Pack, Unpack};
        let mut r = MemoryRecorder::new();
        r.counter("a", 1);
        r.counter("b", 2);
        let mut w = ByteWriter::new();
        r.pack(&mut w);
        let mut bytes = w.into_bytes();
        // Claim three names but keep two channels' worth of data.
        assert_eq!(bytes[0], 2, "name count is the leading u64");
        bytes[0] = 1;
        let mut rd = ByteReader::new(&bytes);
        let clean = MemoryRecorder::unpack(&mut rd).is_ok() && rd.finished();
        assert!(!clean, "shrunken name table must not decode cleanly");
    }

    #[test]
    fn repeated_histogram_records_accumulate() {
        let mut r = MemoryRecorder::new();
        for _ in 0..2 {
            r.histogram(
                "h",
                HistogramData {
                    lo: 0.0,
                    hi: 1.0,
                    counts: vec![1, 2],
                    under: 1,
                    over: 0,
                },
            );
        }
        let s = r.snapshot();
        let h = s.histogram("h").unwrap();
        assert_eq!(h.counts, vec![2, 4]);
        assert_eq!(h.under, 2);
    }
}
