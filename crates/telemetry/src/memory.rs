//! The in-memory aggregating recorder.

use crate::recorder::{HistogramData, Level, Recorder};
use crate::snapshot::{CounterSnapshot, HistogramSnapshot, Snapshot, TimerSnapshot, ValueSnapshot};
use std::collections::BTreeMap;

#[derive(Debug, Clone, Copy)]
struct ValueStat {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl ValueStat {
    fn new() -> ValueStat {
        ValueStat {
            count: 0,
            sum: 0.0,
            min: f64::MAX,
            max: f64::MIN,
        }
    }

    fn push(&mut self, sample: f64) {
        self.count += 1;
        self.sum += sample;
        self.min = self.min.min(sample);
        self.max = self.max.max(sample);
    }

    fn merge(&mut self, other: &ValueStat) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A recorded discrete event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordedEvent {
    /// Severity.
    pub level: Level,
    /// Event topic.
    pub topic: &'static str,
    /// Free-form message.
    pub message: String,
}

/// Aggregates counters, value statistics, timers, histograms, and events
/// in memory; the run-end [`Snapshot`] feeds the exporters.
///
/// Value series can optionally be bucketed: [`register_histogram`]
/// attaches a fixed-bin histogram that subsequent samples also land in.
///
/// [`register_histogram`]: MemoryRecorder::register_histogram
#[derive(Debug, Clone, Default)]
pub struct MemoryRecorder {
    counters: BTreeMap<&'static str, u64>,
    values: BTreeMap<&'static str, ValueStat>,
    timers: BTreeMap<&'static str, (u64, u64)>,
    histograms: BTreeMap<&'static str, HistogramData>,
    bucketed: BTreeMap<&'static str, HistogramData>,
    events: Vec<RecordedEvent>,
    echo_warnings: bool,
}

impl MemoryRecorder {
    /// Creates an empty recorder.
    pub fn new() -> MemoryRecorder {
        MemoryRecorder::default()
    }

    /// Also prints `Warn` events to stderr as they arrive (for long runs
    /// where the summary only appears at the end).
    pub fn echo_warnings(mut self, echo: bool) -> MemoryRecorder {
        self.echo_warnings = echo;
        self
    }

    /// Attaches a fixed-bin histogram to the value series `name`: every
    /// later [`Recorder::value`] sample for that series is also bucketed
    /// into `bins` equal bins spanning `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics when `lo >= hi` or `bins == 0`.
    pub fn register_histogram(&mut self, name: &'static str, lo: f64, hi: f64, bins: usize) {
        assert!(lo < hi, "histogram range must be non-empty");
        assert!(bins > 0, "histogram needs at least one bin");
        self.bucketed.insert(
            name,
            HistogramData {
                lo,
                hi,
                counts: vec![0; bins],
                under: 0,
                over: 0,
            },
        );
    }

    /// The events recorded so far, in arrival order.
    pub fn events(&self) -> &[RecordedEvent] {
        &self.events
    }

    /// Folds another recorder's aggregates into this one (counters and
    /// timers add; value stats combine; histograms add bin-wise when the
    /// shapes match, otherwise the other's replaces this one's; events
    /// append).
    pub fn merge(&mut self, other: &MemoryRecorder) {
        for (name, v) in &other.counters {
            *self.counters.entry(name).or_insert(0) += v;
        }
        for (name, v) in &other.values {
            self.values
                .entry(name)
                .or_insert_with(ValueStat::new)
                .merge(v);
        }
        for (name, (count, ns)) in &other.timers {
            let slot = self.timers.entry(name).or_insert((0, 0));
            slot.0 += count;
            slot.1 += ns;
        }
        for (name, h) in other.histograms.iter().chain(&other.bucketed) {
            merge_histogram(&mut self.histograms, name, h);
        }
        self.events.extend(other.events.iter().cloned());
    }

    /// Produces the plain-data view for export.
    pub fn snapshot(&self) -> Snapshot {
        let mut histograms: BTreeMap<&'static str, HistogramData> = self.histograms.clone();
        for (name, h) in &self.bucketed {
            if h.total() > 0 {
                merge_histogram(&mut histograms, name, h);
            }
        }
        Snapshot {
            counters: self
                .counters
                .iter()
                .map(|(&name, &value)| CounterSnapshot {
                    name: name.to_string(),
                    value,
                })
                .collect(),
            values: self
                .values
                .iter()
                .map(|(&name, v)| ValueSnapshot {
                    name: name.to_string(),
                    count: v.count,
                    sum: v.sum,
                    min: v.min,
                    max: v.max,
                })
                .collect(),
            timers: self
                .timers
                .iter()
                .map(|(&name, &(count, total_ns))| TimerSnapshot {
                    name: name.to_string(),
                    count,
                    total_ns,
                })
                .collect(),
            histograms: histograms
                .iter()
                .map(|(&name, h)| HistogramSnapshot {
                    name: name.to_string(),
                    lo: h.lo,
                    hi: h.hi,
                    counts: h.counts.clone(),
                    under: h.under,
                    over: h.over,
                })
                .collect(),
        }
    }
}

fn merge_histogram(
    into: &mut BTreeMap<&'static str, HistogramData>,
    name: &'static str,
    h: &HistogramData,
) {
    match into.get_mut(name) {
        Some(existing)
            if existing.counts.len() == h.counts.len()
                && existing.lo == h.lo
                && existing.hi == h.hi =>
        {
            for (a, b) in existing.counts.iter_mut().zip(&h.counts) {
                *a += b;
            }
            existing.under += h.under;
            existing.over += h.over;
        }
        _ => {
            into.insert(name, h.clone());
        }
    }
}

impl Recorder for MemoryRecorder {
    fn counter(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    fn value(&mut self, name: &'static str, sample: f64) {
        self.values
            .entry(name)
            .or_insert_with(ValueStat::new)
            .push(sample);
        if let Some(h) = self.bucketed.get_mut(name) {
            if sample < h.lo {
                h.under += 1;
            } else if sample >= h.hi {
                h.over += 1;
            } else {
                let bins = h.counts.len();
                let idx = ((sample - h.lo) / (h.hi - h.lo) * bins as f64) as usize;
                h.counts[idx.min(bins - 1)] += 1;
            }
        }
    }

    fn timer_ns(&mut self, name: &'static str, nanos: u64) {
        let slot = self.timers.entry(name).or_insert((0, 0));
        slot.0 += 1;
        slot.1 += nanos;
    }

    fn histogram(&mut self, name: &'static str, data: HistogramData) {
        // Accumulate, matching `merge` semantics: same-shape histograms
        // add bin-wise, a different shape replaces.
        merge_histogram(&mut self.histograms, name, &data);
    }

    fn event(&mut self, level: Level, topic: &'static str, message: &str) {
        if self.echo_warnings && level == Level::Warn {
            crate::warn(topic, message);
        }
        self.events.push(RecordedEvent {
            level,
            topic,
            message: message.to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut r = MemoryRecorder::new();
        r.counter("a", 3);
        r.counter("a", 4);
        r.counter("b", 1);
        let s = r.snapshot();
        assert_eq!(s.counter("a"), Some(7));
        assert_eq!(s.counter("b"), Some(1));
    }

    #[test]
    fn value_stats_track_min_max_mean() {
        let mut r = MemoryRecorder::new();
        for v in [1.0, 2.0, 6.0] {
            r.value("x", v);
        }
        let s = r.snapshot();
        let v = s.value("x").unwrap();
        assert_eq!(v.count, 3);
        assert_eq!(v.min, 1.0);
        assert_eq!(v.max, 6.0);
        assert!((v.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn registered_histogram_buckets_samples() {
        let mut r = MemoryRecorder::new();
        r.register_histogram("v", 0.0, 1.0, 4);
        for v in [-0.1, 0.1, 0.3, 0.6, 0.6, 0.99, 1.5] {
            r.value("v", v);
        }
        let s = r.snapshot();
        let h = s.histogram("v").unwrap();
        assert_eq!(h.counts, vec![1, 1, 2, 1]);
        assert_eq!(h.under, 1);
        assert_eq!(h.over, 1);
        assert_eq!(h.total(), 7);
        assert_eq!(h.total(), s.value("v").unwrap().count);
    }

    #[test]
    fn timers_accumulate_spans() {
        let mut r = MemoryRecorder::new();
        r.timer_ns("t", 100);
        r.timer_ns("t", 300);
        let s = r.snapshot();
        let t = s.timer("t").unwrap();
        assert_eq!(t.count, 2);
        assert_eq!(t.total_ns, 400);
        assert!((t.mean_ns() - 200.0).abs() < 1e-12);
    }

    #[test]
    fn merge_combines_all_channels() {
        let mut a = MemoryRecorder::new();
        a.counter("c", 1);
        a.value("v", 1.0);
        a.timer_ns("t", 10);
        a.event(Level::Info, "e", "one");
        let mut b = MemoryRecorder::new();
        b.counter("c", 2);
        b.value("v", 3.0);
        b.timer_ns("t", 20);
        b.event(Level::Warn, "e", "two");
        a.merge(&b);
        let s = a.snapshot();
        assert_eq!(s.counter("c"), Some(3));
        assert_eq!(s.value("v").unwrap().count, 2);
        assert_eq!(s.timer("t").unwrap().total_ns, 30);
        assert_eq!(a.events().len(), 2);
    }

    #[test]
    fn merge_adds_matching_histograms() {
        let h = |counts: Vec<u64>| HistogramData {
            lo: 0.0,
            hi: 1.0,
            counts,
            under: 0,
            over: 1,
        };
        let mut a = MemoryRecorder::new();
        a.histogram("h", h(vec![1, 0]));
        let mut b = MemoryRecorder::new();
        b.histogram("h", h(vec![2, 5]));
        a.merge(&b);
        let s = a.snapshot();
        let got = s.histogram("h").unwrap();
        assert_eq!(got.counts, vec![3, 5]);
        assert_eq!(got.over, 2);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn degenerate_histogram_range_rejected() {
        MemoryRecorder::new().register_histogram("x", 1.0, 1.0, 4);
    }

    #[test]
    fn repeated_histogram_records_accumulate() {
        let mut r = MemoryRecorder::new();
        for _ in 0..2 {
            r.histogram(
                "h",
                HistogramData {
                    lo: 0.0,
                    hi: 1.0,
                    counts: vec![1, 2],
                    under: 1,
                    over: 0,
                },
            );
        }
        let s = r.snapshot();
        let h = s.histogram("h").unwrap();
        assert_eq!(h.counts, vec![2, 4]);
        assert_eq!(h.under, 2);
    }
}
