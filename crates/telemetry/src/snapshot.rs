//! Plain-data views of an aggregated telemetry run.
//!
//! A [`Snapshot`] is what exporters consume: it owns its strings, is
//! cheap to clone, and is decoupled from the recorder that produced it so
//! snapshots can be merged, diffed, or serialized after the simulation
//! state is gone.

/// One monotonic counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Metric name (dot-separated, e.g. `loop.cycles_in_low`).
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// Summary statistics of one sampled value series.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueSnapshot {
    /// Metric name.
    pub name: String,
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl ValueSnapshot {
    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// One wall-clock timer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimerSnapshot {
    /// Timer name.
    pub name: String,
    /// Number of recorded spans.
    pub count: u64,
    /// Total nanoseconds across spans.
    pub total_ns: u64,
}

impl TimerSnapshot {
    /// Mean span length in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }
}

/// One fixed-bin histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Histogram name.
    pub name: String,
    /// Lower edge of the first bin.
    pub lo: f64,
    /// Upper edge of the last bin.
    pub hi: f64,
    /// Per-bin counts.
    pub counts: Vec<u64>,
    /// Samples below `lo`.
    pub under: u64,
    /// Samples above `hi`.
    pub over: u64,
}

impl HistogramSnapshot {
    /// Total samples including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.under + self.over
    }

    /// The `(center, count)` pairs of the in-range bins.
    pub fn centers(&self) -> Vec<(f64, u64)> {
        let n = self.counts.len().max(1);
        let width = (self.hi - self.lo) / n as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + (i as f64 + 0.5) * width, c))
            .collect()
    }
}

/// Everything a recorder aggregated, ready for export.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// Value series, sorted by name.
    pub values: Vec<ValueSnapshot>,
    /// Timers, sorted by name.
    pub timers: Vec<TimerSnapshot>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl Snapshot {
    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.values.is_empty()
            && self.timers.is_empty()
            && self.histograms.is_empty()
    }

    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Looks up a value series by name.
    pub fn value(&self, name: &str) -> Option<&ValueSnapshot> {
        self.values.iter().find(|v| v.name == name)
    }

    /// Looks up a timer by name.
    pub fn timer(&self, name: &str) -> Option<&TimerSnapshot> {
        self.timers.iter().find(|t| t.name == name)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_mean_handles_empty() {
        let v = ValueSnapshot {
            name: "x".into(),
            count: 0,
            sum: 0.0,
            min: f64::MAX,
            max: f64::MIN,
        };
        assert_eq!(v.mean(), 0.0);
    }

    #[test]
    fn histogram_centers_are_midpoints() {
        let h = HistogramSnapshot {
            name: "h".into(),
            lo: 0.0,
            hi: 1.0,
            counts: vec![1, 2],
            under: 0,
            over: 0,
        };
        let c = h.centers();
        assert!((c[0].0 - 0.25).abs() < 1e-12);
        assert!((c[1].0 - 0.75).abs() < 1e-12);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn lookup_by_name() {
        let snap = Snapshot {
            counters: vec![CounterSnapshot {
                name: "a".into(),
                value: 7,
            }],
            ..Default::default()
        };
        assert_eq!(snap.counter("a"), Some(7));
        assert_eq!(snap.counter("b"), None);
        assert!(!snap.is_empty());
        assert!(Snapshot::default().is_empty());
    }
}
