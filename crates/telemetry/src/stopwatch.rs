//! Wall-clock spans and a registry-free micro-benchmark harness.
//!
//! [`Stopwatch`] is the span primitive the closed loop uses around its
//! sub-steps; [`bench`] is the minimal Criterion replacement the
//! `crates/bench` `[[bench]]` targets run on (the build environment
//! cannot fetch Criterion).

use crate::recorder::{MetricId, Recorder};
use std::time::Instant;

/// A started span that reports into a [`Recorder`] timer when stopped.
///
/// Construction is free when the target recorder is disabled: no clock
/// read happens and `stop` is a no-op.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Option<Instant>,
}

impl Stopwatch {
    /// Starts a span destined for a recorder of type `R` (reads the clock
    /// only when `R::ENABLED`).
    pub fn start_for<R: Recorder>() -> Stopwatch {
        Stopwatch {
            start: if R::ENABLED {
                Some(Instant::now())
            } else {
                None
            },
        }
    }

    /// Starts a span unconditionally.
    pub fn start() -> Stopwatch {
        Stopwatch {
            start: Some(Instant::now()),
        }
    }

    /// Starts a span only when `sample` is true (reads no clock
    /// otherwise). The hot loop uses this to stride-sample sub-step
    /// timers instead of paying two clock reads every cycle.
    pub fn started_if(sample: bool) -> Stopwatch {
        Stopwatch {
            start: if sample { Some(Instant::now()) } else { None },
        }
    }

    /// Stops the span, crediting its duration to `rec`'s timer `name`.
    pub fn stop<R: Recorder>(self, rec: &mut R, name: &'static str) {
        if let Some(start) = self.start {
            rec.timer_ns(name, start.elapsed().as_nanos() as u64);
        }
    }

    /// Stops the span, crediting its duration to the pre-resolved timer
    /// `id` (the zero-lookup variant of [`stop`](Stopwatch::stop)).
    pub fn stop_id<R: Recorder>(self, rec: &mut R, id: MetricId) {
        if let Some(start) = self.start {
            rec.timer_id(id, start.elapsed().as_nanos() as u64);
        }
    }

    /// Elapsed nanoseconds so far (0 for a disabled span).
    pub fn elapsed_ns(&self) -> u64 {
        self.start.map_or(0, |s| s.elapsed().as_nanos() as u64)
    }
}

/// One micro-benchmark measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchResult {
    /// Iterations per sample.
    pub iters: u64,
    /// Best (minimum) nanoseconds per iteration across samples.
    pub best_ns_per_iter: f64,
    /// Median nanoseconds per iteration across samples.
    pub median_ns_per_iter: f64,
}

impl BenchResult {
    /// Iterations per second at the median.
    pub fn median_per_sec(&self) -> f64 {
        if self.median_ns_per_iter <= 0.0 {
            0.0
        } else {
            1e9 / self.median_ns_per_iter
        }
    }
}

/// Times `f` (which should run one iteration and return a value to keep
/// the optimizer honest) `iters` times per sample for `samples` samples,
/// reporting best and median ns/iter.
pub fn bench<T, F: FnMut() -> T>(name: &str, samples: usize, iters: u64, mut f: F) -> BenchResult {
    let samples = samples.max(1);
    let iters = iters.max(1);
    // One warm-up iteration outside measurement.
    std::hint::black_box(f());
    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        per_iter.push(t0.elapsed().as_nanos() as f64 / iters as f64);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let result = BenchResult {
        iters,
        best_ns_per_iter: per_iter[0],
        median_ns_per_iter: per_iter[per_iter.len() / 2],
    };
    println!(
        "bench {name:<40} {:>12.1} ns/iter (best {:>12.1}, {} samples x {} iters, {:.2e}/s)",
        result.median_ns_per_iter,
        result.best_ns_per_iter,
        samples,
        iters,
        result.median_per_sec()
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryRecorder;
    use crate::recorder::NullRecorder;

    #[test]
    fn disabled_stopwatch_never_reads_clock() {
        let sw = Stopwatch::start_for::<NullRecorder>();
        assert_eq!(sw.elapsed_ns(), 0);
        let mut rec = NullRecorder;
        sw.stop(&mut rec, "x");
    }

    #[test]
    fn enabled_stopwatch_credits_timer() {
        let mut rec = MemoryRecorder::new();
        let sw = Stopwatch::start_for::<MemoryRecorder>();
        std::hint::black_box((0..1000).sum::<u64>());
        sw.stop(&mut rec, "span");
        let t = rec.snapshot();
        let timer = t.timer("span").unwrap();
        assert_eq!(timer.count, 1);
    }

    #[test]
    fn bench_measures_something() {
        let r = bench("test.noop", 3, 100, || std::hint::black_box(1 + 1));
        assert!(r.median_ns_per_iter >= 0.0);
        assert!(r.best_ns_per_iter <= r.median_ns_per_iter);
    }
}
