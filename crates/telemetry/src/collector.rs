//! Thread-safe aggregation of [`MemoryRecorder`]s.
//!
//! The experiment engine (`voltctl-exp`) runs independent grid cells on
//! worker threads; each cell records into a private [`MemoryRecorder`]
//! and hands it off to a shared [`Collector`] when it finishes. The
//! collector wraps the existing [`MemoryRecorder::merge`] aggregation in
//! a mutex so hand-off is safe from any thread, while the hot recording
//! path stays lock-free (each worker owns its recorder exclusively until
//! the hand-off).
//!
//! Merge-order caveat: counters, value statistics, timers, and
//! same-shape histogram bins are associative and commutative (see the
//! property tests in `tests/merge_properties.rs`), but the *event log*
//! is an append-only sequence. Callers that need a deterministic event
//! order regardless of thread scheduling should merge per-cell recorders
//! in a canonical order themselves (as the experiment engine does) and
//! use the collector only for order-insensitive aggregates.

use crate::memory::MemoryRecorder;
use std::sync::Mutex;

/// A mutex-guarded [`MemoryRecorder`] that worker threads fold their
/// finished recorders into.
#[derive(Debug, Default)]
pub struct Collector {
    inner: Mutex<MemoryRecorder>,
}

impl Collector {
    /// Creates an empty collector.
    pub fn new() -> Collector {
        Collector::default()
    }

    /// Folds a finished recorder into the aggregate.
    ///
    /// # Panics
    ///
    /// Panics if a previous holder of the lock panicked (poisoning); the
    /// experiment engine treats a panicking cell as fatal anyway.
    pub fn merge(&self, rec: &MemoryRecorder) {
        self.inner
            .lock()
            .expect("telemetry collector poisoned")
            .merge(rec);
    }

    /// A plain-data snapshot of the aggregate so far.
    pub fn snapshot(&self) -> crate::Snapshot {
        self.inner
            .lock()
            .expect("telemetry collector poisoned")
            .snapshot()
    }

    /// Removes and returns the aggregate, leaving the collector empty.
    pub fn take(&self) -> MemoryRecorder {
        std::mem::take(&mut *self.inner.lock().expect("telemetry collector poisoned"))
    }

    /// Whether anything has been recorded yet.
    pub fn is_empty(&self) -> bool {
        let snap = self.snapshot();
        snap.counters.is_empty()
            && snap.values.is_empty()
            && snap.timers.is_empty()
            && snap.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    #[test]
    fn merges_from_multiple_threads() {
        let collector = Collector::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let collector = &collector;
                s.spawn(move || {
                    let mut rec = MemoryRecorder::new();
                    rec.counter("cells", 1);
                    rec.value("metric", t as f64);
                    collector.merge(&rec);
                });
            }
        });
        let snap = collector.snapshot();
        assert_eq!(snap.counter("cells"), Some(4));
        let v = snap.value("metric").unwrap();
        assert_eq!(v.count, 4);
        assert_eq!(v.min, 0.0);
        assert_eq!(v.max, 3.0);
    }

    #[test]
    fn take_drains() {
        let collector = Collector::new();
        assert!(collector.is_empty());
        let mut rec = MemoryRecorder::new();
        rec.counter("c", 2);
        collector.merge(&rec);
        assert!(!collector.is_empty());
        let taken = collector.take();
        assert_eq!(taken.snapshot().counter("c"), Some(2));
        assert!(collector.is_empty());
    }
}
