//! A leak-once intern pool for metric names decoded from snapshots.
//!
//! The recorder keys its channels by `&'static str` because every live
//! call site uses string literals. Deserializing a checkpoint hands us
//! owned `String`s instead; this pool turns each *distinct* name into a
//! `&'static str` by leaking exactly one copy for the life of the
//! process. The leak is bounded by the number of distinct metric names
//! ever decoded — a few dozen in practice — and repeated restores of
//! the same snapshot reuse the pooled copy.

use std::collections::BTreeSet;
use std::sync::{Mutex, OnceLock};

static POOL: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();

/// Returns a `&'static str` equal to `s`, leaking at most one copy per
/// distinct string for the life of the process.
pub fn intern_static(s: &str) -> &'static str {
    let pool = POOL.get_or_init(|| Mutex::new(BTreeSet::new()));
    let mut pool = pool.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(&found) = pool.get(s) {
        return found;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    pool.insert(leaked);
    leaked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = intern_static("intern-test-alpha");
        let b = intern_static("intern-test-alpha");
        assert_eq!(a, "intern-test-alpha");
        assert!(std::ptr::eq(a, b), "same pooled copy both times");
    }

    #[test]
    fn distinct_strings_stay_distinct() {
        assert_ne!(intern_static("intern-x"), intern_static("intern-y"));
    }
}
