//! Process-wide live metrics: striped atomic counters, gauges, and
//! log-linear histograms behind a labeled-family registry with
//! Prometheus text exposition.
//!
//! This is the *service health* plane, distinct from
//! [`MemoryRecorder`](crate::MemoryRecorder): the recorder aggregates
//! per-run *simulation* metrics (cycles, voltages, band occupancy) that
//! are merged deterministically and exported once per run, while the
//! registry holds *live* operational state — request counts, latency
//! distributions, queue depth — that any thread updates lock-free and a
//! scraper reads at any moment without quiescing the process.
//!
//! # Design constraints
//!
//! * **Updates are boundary-cost only.** Handles ([`Counter`],
//!   [`Gauge`], [`Histogram`]) are `Arc`s resolved once at setup; the
//!   hot update is one or two relaxed atomic RMWs. Registry lookups
//!   (mutex + map walk) happen only when a handle is first created —
//!   at request/shard boundaries in the serve stack, never inside the
//!   simulation loop.
//! * **Deterministic structure.** Histogram bucket bounds are a pure
//!   function of the bucket index ([`bucket_lo`]/[`bucket_hi`]), so two
//!   processes — or two halves of a merge — always agree on the layout,
//!   and snapshots merge by elementwise addition.
//! * **Bounded cardinality.** Families and label sets are created by
//!   code, not by request contents; the serve layer normalizes routes
//!   to templates before labeling so an adversarial client cannot grow
//!   the exposition.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Stripes per [`Counter`]: enough to keep 8-ish worker threads off each
/// other's cache lines without bloating every counter.
const STRIPES: usize = 8;

/// One cache line per stripe so concurrent increments from different
/// threads do not false-share.
#[repr(align(64))]
#[derive(Debug, Default)]
struct Stripe(AtomicU64);

/// Returns this thread's stripe index (assigned round-robin on first
/// use, stable for the thread's lifetime).
fn stripe_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static IDX: usize = NEXT.fetch_add(1, Ordering::Relaxed) % STRIPES;
    }
    IDX.with(|i| *i)
}

/// A monotone counter striped across cache lines. `add` is one relaxed
/// `fetch_add` on the calling thread's stripe; `get` sums the stripes.
#[derive(Debug, Default)]
pub struct Counter {
    stripes: [Stripe; STRIPES],
}

impl Counter {
    /// A fresh zero counter (registry use; tests may hold one directly).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Increments by 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.stripes[stripe_index()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Current total across stripes.
    pub fn get(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A settable signed gauge (current queue depth, busy workers, …).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A fresh zero gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds (possibly negative) `delta`.
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Exact buckets for values `0..LINEAR_BUCKETS`; beyond that, octaves of
/// 4 sub-buckets each.
const LINEAR_BUCKETS: usize = 8;
/// Sub-buckets per power-of-two octave (log-linear resolution: worst
/// relative error within a bucket is 1/4 + a bit).
const SUB_BUCKETS: usize = 4;
/// Total bucket count: 8 exact + 4 per octave for octaves 3..=63.
pub const NUM_BUCKETS: usize = LINEAR_BUCKETS + (64 - 4) * SUB_BUCKETS + SUB_BUCKETS;

/// The bucket index holding `v`. Total over all of `u64`; deterministic
/// by construction (pure bit arithmetic, no floats).
pub fn bucket_of(v: u64) -> usize {
    if v < LINEAR_BUCKETS as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize; // >= 3
    let sub = ((v >> (msb - 2)) & (SUB_BUCKETS as u64 - 1)) as usize;
    LINEAR_BUCKETS + (msb - 3) * SUB_BUCKETS + sub
}

/// Smallest value landing in bucket `idx`.
///
/// # Panics
///
/// Panics if `idx >= NUM_BUCKETS`.
pub fn bucket_lo(idx: usize) -> u64 {
    assert!(idx < NUM_BUCKETS, "bucket index {idx} out of range");
    if idx < LINEAR_BUCKETS {
        return idx as u64;
    }
    let octave = (idx - LINEAR_BUCKETS) / SUB_BUCKETS + 3;
    let sub = ((idx - LINEAR_BUCKETS) % SUB_BUCKETS) as u64;
    (1u64 << octave) + sub * (1u64 << (octave - 2))
}

/// Largest value landing in bucket `idx` (inclusive upper bound; the
/// last bucket tops out at `u64::MAX`).
///
/// # Panics
///
/// Panics if `idx >= NUM_BUCKETS`.
pub fn bucket_hi(idx: usize) -> u64 {
    if idx + 1 == NUM_BUCKETS {
        return u64::MAX;
    }
    bucket_lo(idx + 1) - 1
}

/// A log-linear histogram of `u64` observations (latencies in
/// nanoseconds throughout the serve stack). Bucket bounds are fixed at
/// compile time; `observe` is two relaxed atomic adds.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// A fresh empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts. (Concurrent observers
    /// may land between the bucket reads; each bucket read is atomic, so
    /// the snapshot is a valid histogram of a *set* of observations even
    /// if it straddles an update.)
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A plain-data copy of a [`Histogram`], mergeable by elementwise
/// addition (commutative and associative, pinned by the property suite).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket observation counts (`NUM_BUCKETS` long).
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: u64,
}

impl Default for HistSnapshot {
    fn default() -> HistSnapshot {
        HistSnapshot::empty()
    }
}

impl HistSnapshot {
    /// The zero histogram (merge identity).
    pub fn empty() -> HistSnapshot {
        HistSnapshot {
            counts: vec![0; NUM_BUCKETS],
            sum: 0,
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Folds `other` in (elementwise bucket addition).
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.sum += other.sum;
    }

    /// The bucket `(lo, hi)` bounds containing the `q`-quantile
    /// observation (rank `ceil(q * count)`, clamped to `1..=count`).
    /// `None` on an empty histogram.
    pub fn quantile_bounds(&self, q: f64) -> Option<(u64, u64)> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some((bucket_lo(idx), bucket_hi(idx)));
            }
        }
        None // unreachable: seen reaches total
    }

    /// The upper bucket bound of the `q`-quantile — the conservative
    /// scalar estimate `top` and the exposition consumers use.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        self.quantile_bounds(q).map(|(_, hi)| hi)
    }
}

/// What a family's series measure (maps to the Prometheus `# TYPE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn name(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Debug)]
enum Series {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

#[derive(Debug)]
struct Family {
    help: &'static str,
    kind: Kind,
    /// Keyed by the rendered label string (`route="/jobs",status="200"`;
    /// empty for unlabeled series), so exposition order is
    /// deterministic.
    series: BTreeMap<String, Series>,
}

/// A named, labeled metrics registry.
///
/// Handle creation takes the registry lock; updates through the
/// returned `Arc` handles never do. One process-wide instance lives
/// behind [`Registry::global`]; tests build private ones.
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<BTreeMap<&'static str, Family>>,
}

/// Escapes a label value per the Prometheus text format (backslash,
/// double quote, newline).
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders a label set to its canonical string form.
fn label_key(labels: &[(&str, &str)]) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    parts.sort();
    parts.join(",")
}

impl Registry {
    /// A fresh private registry (tests; the daemon uses
    /// [`Registry::global`]).
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The process-wide registry.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<&'static str, Family>> {
        // Poison-tolerant: a panicking thread can only have completed or
        // not-completed a map insertion; either state is valid.
        self.families.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn series<T>(
        &self,
        name: &'static str,
        help: &'static str,
        kind: Kind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Series,
        extract: impl FnOnce(&Series) -> Option<Arc<T>>,
    ) -> Arc<T> {
        let mut families = self.lock();
        let family = families.entry(name).or_insert_with(|| Family {
            help,
            kind,
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric family {name} registered as {} and re-requested as {}",
            family.kind.name(),
            kind.name()
        );
        let series = family.series.entry(label_key(labels)).or_insert_with(make);
        extract(series).expect("kind checked above")
    }

    /// The counter `name{labels}`, created on first request.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered with a different kind.
    pub fn counter(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Counter> {
        self.series(
            name,
            help,
            Kind::Counter,
            labels,
            || Series::Counter(Arc::new(Counter::new())),
            |s| match s {
                Series::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    /// The gauge `name{labels}`, created on first request.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered with a different kind.
    pub fn gauge(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Gauge> {
        self.series(
            name,
            help,
            Kind::Gauge,
            labels,
            || Series::Gauge(Arc::new(Gauge::new())),
            |s| match s {
                Series::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
        )
    }

    /// The histogram `name{labels}`, created on first request.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered with a different kind.
    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        self.series(
            name,
            help,
            Kind::Histogram,
            labels,
            || Series::Histogram(Arc::new(Histogram::new())),
            |s| match s {
                Series::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )
    }

    /// Registered family names, sorted (tests and cardinality gates).
    pub fn family_names(&self) -> Vec<&'static str> {
        self.lock().keys().copied().collect()
    }

    /// Renders the whole registry in Prometheus text exposition format
    /// (version 0.0.4): `# HELP` / `# TYPE` per family, one line per
    /// series, histograms as cumulative `_bucket{le=…}` + `_sum` +
    /// `_count`. Only non-empty buckets are emitted (plus `+Inf`), so
    /// exposition size scales with observed spread, not with
    /// [`NUM_BUCKETS`].
    pub fn render_prometheus(&self) -> String {
        let families = self.lock();
        let mut out = String::new();
        for (name, family) in families.iter() {
            out.push_str(&format!("# HELP {name} {}\n", family.help));
            out.push_str(&format!("# TYPE {name} {}\n", family.kind.name()));
            for (labels, series) in &family.series {
                match series {
                    Series::Counter(c) => {
                        out.push_str(&render_line(name, labels, &[], c.get() as f64));
                    }
                    Series::Gauge(g) => {
                        out.push_str(&render_line(name, labels, &[], g.get() as f64));
                    }
                    Series::Histogram(h) => {
                        let snap = h.snapshot();
                        let mut cumulative = 0u64;
                        for (idx, &count) in snap.counts.iter().enumerate() {
                            if count == 0 {
                                continue;
                            }
                            cumulative += count;
                            let le = format!("{}", bucket_hi(idx));
                            out.push_str(&render_line(
                                &format!("{name}_bucket"),
                                labels,
                                &[("le", &le)],
                                cumulative as f64,
                            ));
                        }
                        out.push_str(&render_line(
                            &format!("{name}_bucket"),
                            labels,
                            &[("le", "+Inf")],
                            cumulative as f64,
                        ));
                        out.push_str(&render_line(
                            &format!("{name}_sum"),
                            labels,
                            &[],
                            snap.sum as f64,
                        ));
                        out.push_str(&render_line(
                            &format!("{name}_count"),
                            labels,
                            &[],
                            cumulative as f64,
                        ));
                    }
                }
            }
        }
        out
    }
}

/// One exposition line: `name{labels,extra} value`.
fn render_line(name: &str, labels: &str, extra: &[(&str, &str)], value: f64) -> String {
    let mut all = String::from(labels);
    for (k, v) in extra {
        if !all.is_empty() {
            all.push(',');
        }
        all.push_str(&format!("{k}=\"{}\"", escape_label(v)));
    }
    let value = if value.fract() == 0.0 && value.abs() < 1e15 {
        format!("{}", value as i64)
    } else {
        format!("{value}")
    };
    if all.is_empty() {
        format!("{name} {value}\n")
    } else {
        format!("{name}{{{all}}} {value}\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_partition_u64() {
        // Every bucket's hi + 1 is the next bucket's lo; bucket_of maps
        // both endpoints back to the bucket.
        for idx in 0..NUM_BUCKETS {
            let (lo, hi) = (bucket_lo(idx), bucket_hi(idx));
            assert!(lo <= hi, "bucket {idx}: lo {lo} > hi {hi}");
            assert_eq!(bucket_of(lo), idx, "lo of bucket {idx}");
            assert_eq!(bucket_of(hi), idx, "hi of bucket {idx}");
            if idx + 1 < NUM_BUCKETS {
                assert_eq!(bucket_lo(idx + 1), hi + 1, "gap after bucket {idx}");
            } else {
                assert_eq!(hi, u64::MAX);
            }
        }
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn counter_sums_across_stripes_and_threads() {
        let c = Arc::new(Counter::new());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }

    #[test]
    fn gauge_set_add_get() {
        let g = Gauge::new();
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn histogram_quantiles_are_bucket_bounded() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 1000);
        assert_eq!(snap.sum, 500500);
        let (lo, hi) = snap.quantile_bounds(0.5).unwrap();
        assert!(lo <= 500 && 500 <= hi, "p50 bucket [{lo},{hi}] misses 500");
        let (lo, hi) = snap.quantile_bounds(0.99).unwrap();
        assert!(lo <= 990 && 990 <= hi, "p99 bucket [{lo},{hi}] misses 990");
        assert!(HistSnapshot::empty().quantile(0.5).is_none());
    }

    #[test]
    fn snapshot_merge_matches_combined_observation() {
        let (a, b) = (Histogram::new(), Histogram::new());
        let combined = Histogram::new();
        for v in [0u64, 1, 7, 8, 100, 1_000_000, u64::MAX] {
            a.observe(v);
            combined.observe(v);
        }
        for v in [3u64, 8, 255, 1 << 40] {
            b.observe(v);
            combined.observe(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, combined.snapshot());
    }

    #[test]
    fn registry_renders_prometheus_text() {
        let reg = Registry::new();
        reg.counter("test_requests_total", "requests", &[("route", "/x")])
            .add(3);
        reg.gauge("test_depth", "queue depth", &[]).set(7);
        reg.histogram("test_latency_ns", "latency", &[])
            .observe(100);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE test_requests_total counter"));
        assert!(text.contains("test_requests_total{route=\"/x\"} 3"));
        assert!(text.contains("# TYPE test_depth gauge"));
        assert!(text.contains("test_depth 7"));
        assert!(text.contains("# TYPE test_latency_ns histogram"));
        assert!(text.contains("test_latency_ns_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("test_latency_ns_sum 100"));
        assert!(text.contains("test_latency_ns_count 1"));
        assert_eq!(
            reg.family_names(),
            vec!["test_depth", "test_latency_ns", "test_requests_total"]
        );
    }

    #[test]
    fn same_handle_is_returned_for_same_series() {
        let reg = Registry::new();
        let a = reg.counter("test_total", "t", &[("k", "v")]);
        let b = reg.counter("test_total", "t", &[("k", "v")]);
        a.inc();
        assert_eq!(b.get(), 1);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    #[should_panic(expected = "registered as counter")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("test_kind", "t", &[]);
        reg.gauge("test_kind", "t", &[]);
    }
}
