//! A deterministic, zero-dependency pseudo-random generator.
//!
//! The build environment has no registry access, so this SplitMix64
//! generator replaces the `rand` crate throughout the workspace: sensor
//! noise, workload shuffling, and the randomized (property-style) tests.
//! SplitMix64 passes BigCrush, is seedable from any `u64` (including 0),
//! and is four lines of arithmetic — exactly enough for simulation noise.

/// SplitMix64 (Steele, Lea & Flood 2014).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// The raw generator state, for checkpointing. Restoring with
    /// [`from_state`](Rng::from_state) resumes the exact stream.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Rebuilds a generator mid-stream from a captured [`state`](Rng::state).
    pub fn from_state(state: u64) -> Rng {
        Rng { state }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `bool`.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A uniform integer in `[0, n)` via Lemire's multiply-shift
    /// reduction (no modulo bias worth caring about at simulation scale).
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// A uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range");
        lo.wrapping_add(self.below(hi.wrapping_sub(lo) as u64) as i64)
    }

    /// A uniform `f64` in `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics when `lo > hi` or either bound is non-finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi, "bad range");
        lo + self.next_f64() * (hi - lo)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

impl voltctl_snap::Pack for Rng {
    fn pack(&self, w: &mut voltctl_snap::ByteWriter) {
        w.put_u64(self.state);
    }
}

impl voltctl_snap::Unpack for Rng {
    fn unpack(r: &mut voltctl_snap::ByteReader<'_>) -> Result<Self, voltctl_snap::SnapError> {
        Ok(Rng::from_state(r.get_u64()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        assert!((0..10).any(|_| a.next_u64() != b.next_u64()));
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut r = Rng::new(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Rng::new(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[r.below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_f64_respects_bounds() {
        let mut r = Rng::new(11);
        for _ in 0..1000 {
            let x = r.range_f64(-0.02, 0.02);
            assert!((-0.02..=0.02).contains(&x));
        }
    }

    #[test]
    fn range_i64_handles_negative_bounds() {
        let mut r = Rng::new(5);
        for _ in 0..1000 {
            let x = r.range_i64(-10, 10);
            assert!((-10..10).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::new(9);
        let mut v: Vec<u32> = (0..64).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "64 elements virtually never shuffle to identity");
    }

    #[test]
    #[should_panic(expected = "meaningless")]
    fn below_zero_rejected() {
        Rng::new(0).below(0);
    }
}
