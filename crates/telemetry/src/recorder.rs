//! The [`Recorder`] trait: the metric/event sink the simulation layers
//! write into.
//!
//! Instrumented hot paths are generic over `R: Recorder` and guard any
//! work with non-zero cost (wall-clock reads, histogram pushes) behind
//! `R::ENABLED`. [`NullRecorder`] sets `ENABLED = false` and inherits the
//! empty default methods, so the disabled configuration compiles to the
//! uninstrumented loop.

/// Severity of a telemetry event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Level {
    /// Informational progress marker.
    Info,
    /// A recoverable anomaly the user should see.
    Warn,
}

impl Level {
    /// The lowercase label used in exports.
    pub fn name(self) -> &'static str {
        match self {
            Level::Info => "info",
            Level::Warn => "warn",
        }
    }
}

/// A plain-data fixed-bin histogram handed to a recorder wholesale
/// (used for pre-aggregated data such as the PDN's voltage histogram).
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramData {
    /// Lower edge of the first bin.
    pub lo: f64,
    /// Upper edge of the last bin.
    pub hi: f64,
    /// Per-bin sample counts.
    pub counts: Vec<u64>,
    /// Samples below `lo`.
    pub under: u64,
    /// Samples above `hi`.
    pub over: u64,
}

impl HistogramData {
    /// Total samples including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.under + self.over
    }
}

impl voltctl_snap::Pack for Level {
    fn pack(&self, w: &mut voltctl_snap::ByteWriter) {
        w.put_u8(match self {
            Level::Info => 0,
            Level::Warn => 1,
        });
    }
}

impl voltctl_snap::Unpack for Level {
    fn unpack(r: &mut voltctl_snap::ByteReader<'_>) -> Result<Self, voltctl_snap::SnapError> {
        match r.get_u8()? {
            0 => Ok(Level::Info),
            1 => Ok(Level::Warn),
            other => Err(voltctl_snap::SnapError::Corrupt(format!(
                "unknown event level {other}"
            ))),
        }
    }
}

impl voltctl_snap::Pack for HistogramData {
    fn pack(&self, w: &mut voltctl_snap::ByteWriter) {
        w.put_f64(self.lo);
        w.put_f64(self.hi);
        voltctl_snap::Pack::pack(&self.counts, w);
        w.put_u64(self.under);
        w.put_u64(self.over);
    }
}

impl voltctl_snap::Unpack for HistogramData {
    fn unpack(r: &mut voltctl_snap::ByteReader<'_>) -> Result<Self, voltctl_snap::SnapError> {
        let lo = r.get_f64()?;
        let hi = r.get_f64()?;
        let counts = voltctl_snap::Unpack::unpack(r)?;
        let under = r.get_u64()?;
        let over = r.get_u64()?;
        if !lo.is_finite() || !hi.is_finite() || lo >= hi {
            return Err(voltctl_snap::SnapError::Corrupt(format!(
                "histogram range [{lo}, {hi}) is empty or non-finite"
            )));
        }
        Ok(HistogramData {
            lo,
            hi,
            counts,
            under,
            over,
        })
    }
}

/// A pre-resolved handle to one metric name.
///
/// Hot paths that record the same metric millions of times resolve the
/// name to an id once (via [`Recorder::metric_id`], typically at loop
/// setup) and then record through the `*_id` methods, which index flat
/// storage directly instead of re-hashing the name per sample.
///
/// Ids are only meaningful for the recorder that issued them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct MetricId(pub u32);

/// A sink for counters, sampled values, timers, histograms, and events.
///
/// All methods default to no-ops so implementors opt into exactly the
/// channels they aggregate; `ENABLED` lets generic call sites skip
/// argument construction entirely.
///
/// The `*_id` methods are the zero-lookup hot-path variants: callers
/// resolve a [`MetricId`] once with [`metric_id`] and record through it.
/// They also default to no-ops, so implementors that want to observe
/// id-recorded streams (as the closed loop emits) must implement them.
///
/// [`metric_id`]: Recorder::metric_id
pub trait Recorder {
    /// Whether this recorder observes anything at all. Generic hot paths
    /// guard expensive instrumentation (e.g. `Instant::now`) behind this
    /// constant so the disabled case folds away at compile time.
    const ENABLED: bool = true;

    /// Resolves `name` to a stable [`MetricId`] for the `*_id` methods.
    /// The default returns a dummy id (matching the no-op defaults).
    fn metric_id(&mut self, name: &'static str) -> MetricId {
        let _ = name;
        MetricId::default()
    }

    /// Adds `delta` to the monotonic counter `name`.
    fn counter(&mut self, name: &'static str, delta: u64) {
        let _ = (name, delta);
    }

    /// Id-resolved variant of [`counter`](Recorder::counter).
    fn counter_id(&mut self, id: MetricId, delta: u64) {
        let _ = (id, delta);
    }

    /// Records one sample of the value series `name`.
    fn value(&mut self, name: &'static str, sample: f64) {
        let _ = (name, sample);
    }

    /// Id-resolved variant of [`value`](Recorder::value).
    fn value_id(&mut self, id: MetricId, sample: f64) {
        let _ = (id, sample);
    }

    /// Adds `nanos` of wall-clock time to the timer `name`.
    fn timer_ns(&mut self, name: &'static str, nanos: u64) {
        let _ = (name, nanos);
    }

    /// Id-resolved variant of [`timer_ns`](Recorder::timer_ns).
    fn timer_id(&mut self, id: MetricId, nanos: u64) {
        let _ = (id, nanos);
    }

    /// Stores a pre-aggregated histogram under `name` (replacing any
    /// previous one with the same name).
    fn histogram(&mut self, name: &'static str, data: HistogramData) {
        let _ = (name, data);
    }

    /// Emits a discrete event.
    fn event(&mut self, level: Level, topic: &'static str, message: &str) {
        let _ = (level, topic, message);
    }
}

/// The disabled recorder: drops everything, `ENABLED == false`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    const ENABLED: bool = false;
}

/// Forwarding so call sites can hand out `&mut R` sub-borrows.
impl<R: Recorder + ?Sized> Recorder for &mut R {
    const ENABLED: bool = R::ENABLED;

    fn metric_id(&mut self, name: &'static str) -> MetricId {
        (**self).metric_id(name)
    }

    fn counter(&mut self, name: &'static str, delta: u64) {
        (**self).counter(name, delta);
    }

    fn counter_id(&mut self, id: MetricId, delta: u64) {
        (**self).counter_id(id, delta);
    }

    fn value(&mut self, name: &'static str, sample: f64) {
        (**self).value(name, sample);
    }

    fn value_id(&mut self, id: MetricId, sample: f64) {
        (**self).value_id(id, sample);
    }

    fn timer_ns(&mut self, name: &'static str, nanos: u64) {
        (**self).timer_ns(name, nanos);
    }

    fn timer_id(&mut self, id: MetricId, nanos: u64) {
        (**self).timer_id(id, nanos);
    }

    fn histogram(&mut self, name: &'static str, data: HistogramData) {
        (**self).histogram(name, data);
    }

    fn event(&mut self, level: Level, topic: &'static str, message: &str) {
        (**self).event(level, topic, message);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enabled_of<R: Recorder>() -> bool {
        R::ENABLED
    }

    #[test]
    fn null_recorder_is_disabled_and_inert() {
        assert!(!enabled_of::<NullRecorder>());
        let mut r = NullRecorder;
        r.counter("a", 1);
        r.value("b", 2.0);
        r.timer_ns("c", 3);
        r.event(Level::Warn, "d", "e");
        let id = r.metric_id("a");
        assert_eq!(id, MetricId::default(), "null ids are dummies");
        r.counter_id(id, 1);
        r.value_id(id, 2.0);
        r.timer_id(id, 3);
        r.histogram(
            "h",
            HistogramData {
                lo: 0.0,
                hi: 1.0,
                counts: vec![1],
                under: 0,
                over: 0,
            },
        );
    }

    #[test]
    fn histogram_data_totals() {
        let h = HistogramData {
            lo: 0.0,
            hi: 1.0,
            counts: vec![2, 3],
            under: 1,
            over: 4,
        };
        assert_eq!(h.total(), 10);
    }

    #[test]
    fn mut_ref_forwards_enabled() {
        fn enabled<R: Recorder>(_: &R) -> bool {
            R::ENABLED
        }
        let mut n = NullRecorder;
        assert!(!enabled(&&mut n));
    }
}
