//! The observability plane, end to end against a live daemon.
//!
//! Three contracts:
//!
//! * `GET /metrics` is valid Prometheus text exposition — it parses
//!   with the same parser `voltctl-serve top` uses, and every family in
//!   [`voltctl_serve::DECLARED_FAMILIES`] appears with a `# TYPE` line.
//! * `GET /stats?verbose=1` is a byte-compatible superset of the plain
//!   `/stats` body: same leading fields, plus worker/cache/event-log
//!   extras.
//! * The request id minted at HTTP accept threads through the event
//!   log: the submit's `r{N}` id shows up on the `http.request` line
//!   and on every `job.*` line for that job, from `queued` through the
//!   terminal `done`.

use voltctl_check::Json;
use voltctl_serve::top::parse_exposition;
use voltctl_serve::{request, spawn, ServeConfig, DECLARED_FAMILIES};

#[test]
fn metrics_exposition_and_event_log_cover_a_job_lifecycle() {
    let root = std::env::temp_dir().join(format!("voltctl-serve-metrics-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let handle = spawn(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_bound: 4,
        root: root.clone(),
        read_timeout: std::time::Duration::from_secs(5),
        default_shards: 1,
    })
    .expect("daemon must start");
    let addr = handle.addr;

    // Drive one job to completion so every metric family has data.
    let submit = request(
        addr,
        "POST",
        "/jobs",
        Some(br#"{"scenario":"fig01_itrs","smoke":true,"telemetry":"summary"}"#),
    )
    .unwrap();
    assert_eq!(submit.status, 202);
    let id = Json::parse(&submit.text())
        .unwrap()
        .get("id")
        .and_then(Json::as_f64)
        .unwrap() as u64;
    let stream = request(addr, "GET", &format!("/jobs/{id}/stream"), None).unwrap();
    assert_eq!(stream.status, 200);
    assert!(
        stream.text().lines().last().unwrap().contains("\"done\""),
        "stream must end in a terminal event"
    );

    // -- /metrics: parses, and every declared family is present. ------
    let scrape = request(addr, "GET", "/metrics", None).unwrap();
    assert_eq!(scrape.status, 200);
    assert!(
        scrape
            .headers
            .iter()
            .any(|(k, v)| k.eq_ignore_ascii_case("content-type") && v.starts_with("text/plain")),
        "metrics content type must be text exposition: {:?}",
        scrape.headers
    );
    let body = scrape.text();
    let exp = parse_exposition(&body).expect("exposition must parse");
    for family in DECLARED_FAMILIES {
        assert!(
            exp.families.contains_key(*family),
            "family {family} must carry a # TYPE line"
        );
        let present = exp.samples.iter().any(|s| {
            s.name == *family
                || s.name == format!("{family}_bucket")
                || s.name == format!("{family}_sum")
                || s.name == format!("{family}_count")
        });
        assert!(present, "family {family} has no samples:\n{body}");
    }
    // The one finished job is visible in the accumulated counters.
    assert!(exp.sum("voltctl_serve_jobs_submitted_total", |_| true) >= 1.0);
    assert!(exp.sum("voltctl_http_requests_total", |_| true) >= 2.0);
    assert!(
        exp.sum("voltctl_http_request_duration_ns_count", |s| s
            .label("route")
            == Some("/jobs"))
            >= 1.0,
        "submit latency must be attributed to the /jobs route"
    );

    // -- /stats?verbose=1 is a superset of /stats. --------------------
    let base = request(addr, "GET", "/stats", None).unwrap().text();
    let verbose = request(addr, "GET", "/stats?verbose=1", None)
        .unwrap()
        .text();
    let prefix = base.trim_end().trim_end_matches('}');
    assert!(
        verbose.starts_with(prefix),
        "verbose stats must extend the plain body byte-for-byte:\n{base}\n{verbose}"
    );
    let verbose = Json::parse(&verbose).expect("verbose stats parse");
    for key in ["workers", "workers_busy", "caches", "event_log"] {
        assert!(verbose.get(key).is_some(), "verbose stats must carry {key}");
    }
    for cache in ["kernel", "solve"] {
        let stats = verbose.get("caches").and_then(|c| c.get(cache));
        let stats = stats.unwrap_or_else(|| panic!("caches must report {cache}"));
        for key in ["hits", "misses", "evictions", "len", "capacity"] {
            assert!(
                stats.get(key).and_then(Json::as_f64).is_some(),
                "cache {cache} must report numeric {key}"
            );
        }
    }

    // -- Request id threads from accept to terminal state. ------------
    let snap = request(addr, "GET", &format!("/jobs/{id}"), None).unwrap();
    let req_id = Json::parse(&snap.text())
        .unwrap()
        .get("request_id")
        .and_then(Json::as_str)
        .map(str::to_string)
        .expect("snapshot must echo the originating request id");
    assert!(
        req_id.starts_with('r'),
        "HTTP-minted ids look like r1: {req_id}"
    );
    handle.join();

    let log = std::fs::read_to_string(root.join("events.jsonl")).expect("event log must exist");
    let mut seen = Vec::new();
    for line in log.lines() {
        let event = Json::parse(line)
            .unwrap_or_else(|e| panic!("event log line is not JSON ({e}): {line}"));
        if event.get("req").and_then(Json::as_str) == Some(&req_id) {
            seen.push(
                event
                    .get("event")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string(),
            );
        }
    }
    for expected in [
        "http.request",
        "job.queued",
        "job.running",
        "job.shard",
        "job.done",
    ] {
        assert!(
            seen.iter().any(|e| e == expected),
            "event log must carry {expected} for {req_id}; saw {seen:?}"
        );
    }
    // Daemon lifecycle lines land in the same log.
    for expected in ["daemon.listening", "daemon.stopped"] {
        assert!(
            log.lines().any(|l| l.contains(expected)),
            "event log must record {expected}"
        );
    }

    let _ = std::fs::remove_dir_all(&root);
}
