//! Every JSON body the daemon emits must actually parse as JSON.
//!
//! Regression pin for a double-quoting bug: `voltctl_check::json::
//! escape` returns the string *with* surrounding quotes, and several
//! render sites wrapped it in another pair, producing bodies like
//! `"scenario":""fig01_itrs""` that no parser accepts. This walks the
//! whole read surface of a live daemon — listing, stats, snapshots,
//! submit echoes, artifact listings, and error responses — and feeds
//! each body back through the JSON parser, checking the string-typed
//! fields land as strings.

use voltctl_check::Json;
use voltctl_serve::{request, spawn, ServeConfig};

fn parsed(label: &str, body: &str) -> Json {
    Json::parse(body).unwrap_or_else(|e| panic!("{label} body is not JSON ({e}): {body}"))
}

#[test]
fn every_endpoint_emits_parseable_json() {
    let root = std::env::temp_dir().join(format!("voltctl-serve-json-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let handle = spawn(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_bound: 4,
        root: root.clone(),
        read_timeout: std::time::Duration::from_secs(5),
        default_shards: 1,
    })
    .expect("daemon must start");
    let addr = handle.addr;

    let health = request(addr, "GET", "/healthz", None).unwrap();
    assert_eq!(health.status, 200);

    let listing = request(addr, "GET", "/scenarios", None).unwrap();
    let listing = parsed("scenarios", &listing.text());
    let rows = match listing.get("scenarios") {
        Some(Json::Arr(rows)) => rows,
        other => panic!("scenarios must be an array, got {other:?}"),
    };
    assert!(!rows.is_empty());
    for row in rows {
        for key in ["id", "runtime", "title"] {
            assert!(
                row.get(key).and_then(Json::as_str).is_some(),
                "scenario row field {key:?} must be a JSON string: {row:?}"
            );
        }
    }

    // A completed job: snapshot spec/state round-trip as strings.
    let submit = request(
        addr,
        "POST",
        "/jobs",
        Some(br#"{"scenario":"fig01_itrs","smoke":true,"telemetry":"summary"}"#),
    )
    .unwrap();
    assert_eq!(submit.status, 202);
    let id = parsed("submit", &submit.text())
        .get("id")
        .and_then(Json::as_f64)
        .unwrap() as u64;
    let stream = request(addr, "GET", &format!("/jobs/{id}/stream"), None).unwrap();
    for line in stream.text().lines() {
        parsed("stream event", line);
    }
    let snap = request(addr, "GET", &format!("/jobs/{id}"), None).unwrap();
    let snap = parsed("job snapshot", &snap.text());
    assert_eq!(snap.get("state").and_then(Json::as_str), Some("done"));
    let spec = snap.get("spec").expect("snapshot carries the spec");
    assert_eq!(
        spec.get("scenario").and_then(Json::as_str),
        Some("fig01_itrs"),
        "spec echo must be a plain JSON string"
    );
    assert_eq!(
        spec.get("telemetry").and_then(Json::as_str),
        Some("summary")
    );

    let artifacts = request(addr, "GET", &format!("/jobs/{id}/artifacts"), None).unwrap();
    let artifacts = parsed("artifact listing", &artifacts.text());
    match artifacts.get("artifacts") {
        Some(Json::Arr(names)) => {
            assert!(!names.is_empty(), "summary telemetry leaves artifacts");
            for name in names {
                assert!(
                    name.as_str().is_some(),
                    "artifact names are strings: {name:?}"
                );
            }
        }
        other => panic!("artifacts must be an array, got {other:?}"),
    }

    let stats = request(addr, "GET", "/stats", None).unwrap();
    parsed("stats", &stats.text());

    // Error responses are JSON too, with the detail as a string field.
    let bad = request(addr, "POST", "/jobs", Some(b"{\"scenario\":42}")).unwrap();
    assert_eq!(bad.status, 400);
    let bad = parsed("error response", &bad.text());
    assert!(bad.get("error").and_then(Json::as_str).is_some());
    let missing = request(addr, "GET", "/jobs/999999", None).unwrap();
    assert_eq!(missing.status, 404);
    parsed("missing job", &missing.text());

    handle.join();
    let _ = std::fs::remove_dir_all(&root);
}
