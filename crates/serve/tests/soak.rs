//! Soak test: the daemon under sustained mixed load with random
//! cancellations.
//!
//! A fixed request budget is driven through a live (in-process) daemon
//! by concurrent closed-loop clients over a mixed scenario set, with a
//! fraction of jobs cancelled at random points in their lifecycle. The
//! oracles:
//!
//! - **No job lost or duplicated** — every submitted job id is unique,
//!   every accepted job reaches exactly one terminal state, and the
//!   daemon's accounting conserves: done + failed + cancelled equals
//!   the number of accepted submissions once the queue drains.
//! - **Queue depth bounded** — the high-water mark never exceeds the
//!   configured bound; overload surfaces as 429 + `Retry-After`, which
//!   clients absorb by retrying.
//! - **Byte-identity across the wire** — every completed job's report
//!   equals the byte-exact output of a fresh single-threaded
//!   `run_scenario` render (what the CLI prints), regardless of
//!   concurrency, queueing, cancel pressure, or checkpoint reuse.
//! - **Zero failures** — nothing in the mix may land in `Failed`.

use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use voltctl_check::Json;
use voltctl_serve::{request, spawn, ServeConfig};

/// Cheap, instant-runtime scenarios: the soak is about service
/// behaviour, not simulation depth, so each job should take
/// milliseconds in smoke mode.
const MIX: &[&str] = &[
    "fig01_itrs",
    "fig02_response",
    "fig03_narrow_spike",
    "fig04_wide_spike",
    "fig05_notched_spike",
    "fig06_resonant_train",
    "table3_thresholds",
    "ablation_grid",
    "ablation_ladder",
];

const CLIENTS: usize = 6;
const REQUESTS_PER_CLIENT: usize = 10;
const QUEUE_BOUND: usize = 4;

fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[test]
fn soak_mixed_load_with_random_cancellations() {
    let root = std::env::temp_dir().join(format!("voltctl-serve-soak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let handle = spawn(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 3,
        queue_bound: QUEUE_BOUND,
        root: root.clone(),
        read_timeout: std::time::Duration::from_secs(10),
        default_shards: 2,
    })
    .expect("daemon must start");
    let addr = handle.addr;

    // The single-threaded CLI renders every response will be compared
    // against, computed up front (also warms the process caches the
    // daemon's workers share).
    let ctx = voltctl_exp::Ctx {
        smoke: true,
        ..voltctl_exp::Ctx::default()
    };
    let expected: BTreeMap<&str, Vec<u8>> = MIX
        .iter()
        .map(|&id| {
            let scenario = voltctl_exp::find(id).expect("mix ids are registry ids");
            (
                id,
                voltctl_exp::run_scenario(scenario, &ctx, 1)
                    .report
                    .into_bytes(),
            )
        })
        .collect();

    let accepted_ids: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    let retries_429 = AtomicU64::new(0);
    let cancels_sent = AtomicU64::new(0);
    let mismatches: Mutex<Vec<String>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for client in 0..CLIENTS as u64 {
            let accepted_ids = &accepted_ids;
            let retries_429 = &retries_429;
            let cancels_sent = &cancels_sent;
            let mismatches = &mismatches;
            let expected = &expected;
            scope.spawn(move || {
                for req in 0..REQUESTS_PER_CLIENT as u64 {
                    let roll = splitmix64(client * 1_000 + req);
                    let scenario = MIX[(roll % MIX.len() as u64) as usize];
                    let body = format!("{{\"scenario\":\"{scenario}\",\"smoke\":true}}");

                    // Submit, absorbing backpressure by retrying.
                    let id = loop {
                        let resp = request(addr, "POST", "/jobs", Some(body.as_bytes()))
                            .expect("submit must not error at the socket level");
                        match resp.status {
                            202 => {
                                let json = Json::parse(&resp.text()).expect("submit body parses");
                                break json.get("id").and_then(Json::as_f64).unwrap() as u64;
                            }
                            429 => {
                                assert!(
                                    resp.header("retry-after").is_some(),
                                    "429 must carry Retry-After"
                                );
                                retries_429.fetch_add(1, Ordering::Relaxed);
                                std::thread::sleep(std::time::Duration::from_millis(5));
                            }
                            other => panic!("submit got {other}: {}", resp.text()),
                        }
                    };
                    accepted_ids.lock().unwrap().push(id);

                    // ~25% of jobs get a cancel at a random point.
                    let cancel = roll.is_multiple_of(4);
                    if cancel {
                        std::thread::sleep(std::time::Duration::from_millis(splitmix64(roll) % 4));
                        let resp = request(addr, "DELETE", &format!("/jobs/{id}"), None)
                            .expect("cancel must not error");
                        assert_eq!(resp.status, 200, "cancel of a live id: {}", resp.text());
                        cancels_sent.fetch_add(1, Ordering::Relaxed);
                    }

                    // Stream to the terminal state.
                    let stream = request(addr, "GET", &format!("/jobs/{id}/stream"), None)
                        .expect("stream must not error");
                    assert_eq!(stream.status, 200);
                    let events = stream.text();
                    let terminal_events = [
                        "\"event\":\"done\"",
                        "\"event\":\"failed\"",
                        "\"event\":\"cancelled\"",
                    ]
                    .iter()
                    .filter(|marker| events.contains(*marker))
                    .count();
                    assert_eq!(terminal_events, 1, "exactly one terminal event: {events}");

                    // Completed jobs must render byte-identically to the CLI.
                    if events.contains("\"event\":\"done\"") {
                        let report = request(addr, "GET", &format!("/jobs/{id}/report"), None)
                            .expect("report fetch must not error");
                        assert_eq!(report.status, 200);
                        if report.body != expected[scenario] {
                            mismatches.lock().unwrap().push(format!(
                                "job {id} ({scenario}): {} served vs {} expected bytes",
                                report.body.len(),
                                expected[scenario].len()
                            ));
                        }
                    } else {
                        assert!(
                            !events.contains("\"event\":\"failed\""),
                            "no job in the mix may fail: {events}"
                        );
                    }
                }
            });
        }
    });

    // No duplicated ids: every 202 handed out a distinct job.
    let ids = accepted_ids.into_inner().unwrap();
    let distinct: HashSet<u64> = ids.iter().copied().collect();
    assert_eq!(distinct.len(), ids.len(), "job ids must be unique");
    assert_eq!(ids.len(), CLIENTS * REQUESTS_PER_CLIENT);

    assert_eq!(
        mismatches.into_inner().unwrap(),
        Vec::<String>::new(),
        "every served report must be byte-identical to the CLI render"
    );

    // Conservation + bounds, after the queue has fully drained (each
    // client blocked on its own jobs, so it already has).
    let stats_resp = request(addr, "GET", "/stats", None).unwrap();
    assert_eq!(stats_resp.status, 200);
    let stats = Json::parse(&stats_resp.text()).unwrap();
    let get = |k: &str| stats.get(k).and_then(Json::as_f64).unwrap() as u64;
    assert_eq!(get("submitted"), ids.len() as u64);
    assert_eq!(get("failed"), 0, "no failed jobs allowed");
    assert_eq!(get("queued") + get("running"), 0, "queue must drain");
    assert_eq!(
        get("done") + get("cancelled"),
        ids.len() as u64,
        "every accepted job reaches exactly one terminal state"
    );
    assert!(
        get("queue_depth_max") <= QUEUE_BOUND as u64,
        "queue depth {} exceeded bound {QUEUE_BOUND}",
        get("queue_depth_max")
    );
    // A job only lands in Cancelled because some client asked for it.
    let cancels = cancels_sent.load(Ordering::Relaxed);
    assert!(
        get("cancelled") <= cancels,
        "{} cancelled jobs from {cancels} cancel requests",
        get("cancelled")
    );
    println!(
        "soak: {} accepted, {} done, {} cancelled ({cancels} cancels sent), {} 429 retries, queue depth max {}",
        ids.len(),
        get("done"),
        get("cancelled"),
        retries_429.load(Ordering::Relaxed),
        get("queue_depth_max")
    );

    // Every job the table knows is individually consistent too.
    for &id in &ids {
        let snap = request(addr, "GET", &format!("/jobs/{id}"), None).unwrap();
        assert_eq!(snap.status, 200, "job {id} must still be addressable");
        let json = Json::parse(&snap.text()).unwrap();
        let state = json
            .get("state")
            .and_then(Json::as_str)
            .unwrap()
            .to_string();
        assert!(
            state == "done" || state == "cancelled",
            "job {id} ended as {state}"
        );
    }

    handle.join();
    let _ = std::fs::remove_dir_all(&root);
}
