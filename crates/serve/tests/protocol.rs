//! Protocol robustness: property-based fuzz of the HTTP/JSONL surface.
//!
//! The daemon's parser faces the raw network, so its contract is
//! adversarial: for *any* byte string — random garbage, truncations of
//! valid requests, single-byte corruptions, oversized dimensions — it
//! must return quickly with a parse, an `Incomplete`, or a 4xx-classed
//! error. Never a panic (the `voltctl-check` runner treats caught
//! panics as failures and shrinks the input), never an accepted
//! mangled request masquerading as the original, and — at the socket
//! level — never a hung connection.

use std::sync::atomic::{AtomicU64, Ordering};
use voltctl_check::{check, ensure, i64_in, map, usize_in, vec_of, Config};
use voltctl_serve::job::JobSpec;
use voltctl_serve::{parse_request, request, spawn, HttpError, Parse, ServeConfig};

fn byte_gen() -> impl voltctl_check::gen::Gen<Value = u8> {
    map(i64_in(0, 256), |b| b as u8)
}

/// A well-formed request assembled from generated parts: method,
/// path characters, extra header value, and body bytes.
fn valid_request(method_idx: usize, path_salt: &[u8], body: &[u8]) -> Vec<u8> {
    let method = ["GET", "POST", "DELETE", "HEAD"][method_idx % 4];
    let path: String = path_salt
        .iter()
        .map(|b| (b'a' + (b % 26)) as char)
        .collect();
    let mut raw = format!(
        "{method} /{path} HTTP/1.1\r\nhost: fuzz\r\nx-salt: {}\r\ncontent-length: {}\r\n\r\n",
        path_salt.len(),
        body.len()
    )
    .into_bytes();
    raw.extend_from_slice(body);
    raw
}

/// Any byte string: the parser returns (never panics, never loops), and
/// rejections are always 4xx.
#[test]
fn arbitrary_bytes_never_panic_and_reject_with_4xx() {
    check(
        "serve.http.total",
        &Config::cases(256, 0x5EAF_0001),
        &vec_of(byte_gen(), 0, 512),
        |bytes| {
            match parse_request(bytes) {
                Ok(Parse::Complete(_, consumed)) => {
                    ensure!(consumed <= bytes.len(), "consumed past the buffer")
                }
                Ok(Parse::Incomplete) => {}
                Err(e) => {
                    let status = e.status();
                    ensure!(
                        (400..500).contains(&status),
                        "{e:?} maps to {status}, not 4xx"
                    );
                }
            }
            Ok(())
        },
    );
}

/// Every proper prefix of a valid request is `Incomplete` — truncation
/// is indistinguishable from a slow client, so it must neither error
/// nor produce a bogus complete parse.
#[test]
fn truncations_of_valid_requests_are_incomplete() {
    check(
        "serve.http.truncate",
        &Config::cases(128, 0x5EAF_0002),
        &(
            usize_in(0, 4),
            vec_of(byte_gen(), 0, 24),
            vec_of(byte_gen(), 0, 64),
            usize_in(0, 4096),
        ),
        |(method_idx, path_salt, body, cut_salt)| {
            let raw = valid_request(*method_idx, path_salt, body);
            match parse_request(&raw) {
                Ok(Parse::Complete(_, consumed)) => {
                    ensure!(consumed == raw.len(), "must consume the whole request")
                }
                other => return Err(format!("valid request failed to parse: {other:?}")),
            }
            let cut = cut_salt % raw.len();
            match parse_request(&raw[..cut]) {
                Ok(Parse::Incomplete) => Ok(()),
                other => Err(format!(
                    "prefix of {cut}/{} bytes gave {other:?}",
                    raw.len()
                )),
            }
        },
    );
}

/// Flipping one byte of a valid request never panics the parser and
/// never yields a parse that silently consumed more than the buffer.
/// (A flip may still parse — e.g. in the body or a header value — or
/// become `Incomplete` by corrupting `content-length` upward; what it
/// must not do is crash or produce an out-of-bounds consume.)
#[test]
fn single_byte_corruption_is_handled() {
    check(
        "serve.http.byteflip",
        &Config::cases(256, 0x5EAF_0003),
        &(
            usize_in(0, 4),
            vec_of(byte_gen(), 0, 24),
            vec_of(byte_gen(), 0, 64),
            usize_in(0, 4096),
            i64_in(1, 256),
        ),
        |(method_idx, path_salt, body, pos_salt, flip)| {
            let mut raw = valid_request(*method_idx, path_salt, body);
            let pos = pos_salt % raw.len();
            raw[pos] ^= *flip as u8;
            match parse_request(&raw) {
                Ok(Parse::Complete(_, consumed)) => {
                    ensure!(consumed <= raw.len(), "consumed past the buffer")
                }
                Ok(Parse::Incomplete) => {}
                Err(e) => ensure!((400..500).contains(&e.status())),
            }
            Ok(())
        },
    );
}

/// Oversized dimensions map to their specific 4xx: long request lines
/// to 414, fat declared bodies to 413, header floods to 431.
#[test]
fn oversized_requests_get_specific_4xx_statuses() {
    check(
        "serve.http.oversize",
        &Config::cases(64, 0x5EAF_0004),
        &usize_in(1, 2048),
        |&extra| {
            let line = vec![b'G'; voltctl_serve::http::MAX_REQUEST_LINE + extra];
            ensure!(parse_request(&line) == Err(HttpError::UriTooLong));

            let fat = format!(
                "POST /jobs HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
                voltctl_serve::http::MAX_BODY + extra
            );
            match parse_request(fat.as_bytes()) {
                Err(e @ HttpError::BodyTooLarge(_)) => ensure!(e.status() == 413),
                other => return Err(format!("fat body gave {other:?}")),
            }

            let mut flood = String::from("GET /x HTTP/1.1\r\n");
            for i in 0..=(voltctl_serve::http::MAX_HEADERS + extra % 8) {
                flood.push_str(&format!("h{i}: v\r\n"));
            }
            flood.push_str("\r\n");
            ensure!(parse_request(flood.as_bytes()) == Err(HttpError::HeadersTooLarge));
            Ok(())
        },
    );
}

/// The JSONL job-spec parser is total over arbitrary bytes: parse or a
/// readable error, never a panic.
#[test]
fn job_spec_parse_is_total_over_arbitrary_bytes() {
    check(
        "serve.jsonl.total",
        &Config::cases(256, 0x5EAF_0005),
        &vec_of(byte_gen(), 0, 256),
        |bytes| {
            let _ = JobSpec::from_json_body(bytes);
            Ok(())
        },
    );
}

/// Corrupting one byte of a valid spec body never panics and, when it
/// still parses, yields a spec whose scenario string is non-empty (the
/// required-field invariant survives corruption).
#[test]
fn job_spec_survives_byte_flips() {
    check(
        "serve.jsonl.byteflip",
        &Config::cases(256, 0x5EAF_0006),
        &(usize_in(0, 4096), i64_in(1, 256)),
        |(pos_salt, flip)| {
            let mut body =
                br#"{"scenario":"fig01_itrs","scale":1.5,"smoke":true,"telemetry":"jsonl","shards":2}"#
                    .to_vec();
            let pos = pos_salt % body.len();
            body[pos] ^= *flip as u8;
            if let Ok(spec) = JobSpec::from_json_body(&body) {
                ensure!(!spec.scenario.is_empty(), "required field lost in parse");
            }
            Ok(())
        },
    );
}

/// Socket-level robustness: a live daemon answers malformed requests
/// with 4xx, times out truncated ones with 408, and stays healthy —
/// the connection always terminates (reads here would hang forever on
/// a wedged server; the client's own timeout would fail the test).
#[test]
fn live_daemon_survives_malformed_and_truncated_connections() {
    use std::io::{Read, Write};

    let handle = spawn(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_bound: 2,
        root: std::env::temp_dir().join(format!("voltctl-serve-proto-{}", std::process::id())),
        read_timeout: std::time::Duration::from_millis(200),
        default_shards: 1,
    })
    .expect("daemon must start");
    let addr = handle.addr;

    // Malformed request line: 400, connection closes.
    {
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        s.write_all(b"NOT A REQUEST\r\n\r\n").unwrap();
        let mut out = String::new();
        s.set_read_timeout(Some(std::time::Duration::from_secs(10)))
            .unwrap();
        s.read_to_string(&mut out).expect("connection must close");
        assert!(out.starts_with("HTTP/1.1 400 "), "got: {out}");
    }

    // Truncated request: server's read timeout turns it into 408.
    {
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        s.write_all(b"POST /jobs HTTP/1.1\r\ncontent-length: 50\r\n\r\nshort")
            .unwrap();
        let mut out = String::new();
        s.set_read_timeout(Some(std::time::Duration::from_secs(10)))
            .unwrap();
        s.read_to_string(&mut out).expect("connection must close");
        assert!(out.starts_with("HTTP/1.1 408 "), "got: {out}");
    }

    // A pile of random garbage connections, concurrently.
    let hung = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for seed in 0..8u64 {
            let hung = &hung;
            scope.spawn(move || {
                let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
                let mut garbage = Vec::new();
                for _ in 0..64 {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    garbage.push(state as u8);
                }
                let Ok(mut s) = std::net::TcpStream::connect(addr) else {
                    hung.fetch_add(1, Ordering::Relaxed);
                    return;
                };
                let _ = s.write_all(&garbage);
                let mut out = Vec::new();
                let _ = s.set_read_timeout(Some(std::time::Duration::from_secs(10)));
                if s.read_to_end(&mut out).is_err() {
                    hung.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(hung.load(Ordering::Relaxed), 0, "no connection may hang");

    // The daemon is still alive and serving.
    let health = request(addr, "GET", "/healthz", None).unwrap();
    assert_eq!(health.status, 200);
    handle.join();
}
