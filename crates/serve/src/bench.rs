//! The `voltctl-serve bench` load generator.
//!
//! A closed-loop client: `connections` threads each submit a job, wait
//! for it over the JSONL stream, fetch the report, and immediately move
//! to the next request from a seeded scenario mix. The same mix then
//! runs through the batch engine in-process at the same parallelism
//! (N threads × `run_scenario(…, jobs=1)` — exactly the daemon's worker
//! shape minus HTTP, queueing, and streaming), so the suite's
//! `serve_vs_batch_ratio` isolates pure service overhead over identical
//! work. The acceptance gate is ≥ 0.9 (service overhead ≤ 10%) at full
//! scale; smoke runs gate only on zero failed requests and the presence
//! of latency percentiles (smoke jobs are too short for the ratio to
//! mean anything — HTTP round-trips dominate microsecond simulations).
//!
//! The artifact is `BENCH_serve.json` (schema 6, shared with the other
//! bench suites): a `serve` and a `batch` point whose `cycles` count
//! grid cells completed — a work proxy that is identical on both sides
//! by construction, making the aggregate cycles/sec ratio equal the
//! wall-clock ratio — plus latency percentiles (p50/p90/p99/p999) in
//! the summary.
//! Baselines are regenerate-in-place under `results/perf/`, with
//! provenance in `manifest_serve.json` (a separate file so the batch
//! bench's `manifest.json` survives).

use crate::client::request;
use crate::server::{spawn, ServeConfig};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};
use voltctl_check::Json;
use voltctl_exp::bench::DEFAULT_PERF_DIR;
use voltctl_exp::{find, run_scenario, BenchPoint, BenchSuite, Ctx};

/// The seeded request mix: a spread of instant analytic scenarios and
/// seconds-class control-loop scenarios, so full-scale runs are
/// dominated by engine work (the regime the overhead gate is about)
/// while smoke runs still cover many distinct request shapes.
pub const MIX: &[&str] = &[
    "fig01_itrs",
    "fig02_response",
    "fig03_narrow_spike",
    "fig04_wide_spike",
    "fig05_notched_spike",
    "fig06_resonant_train",
    "table3_thresholds",
    "ablation_grid",
    "fig08_stressmark",
    "fig09_stressmark_vs_worst",
    "fig11_controller_trace",
];

/// Load-generator options.
#[derive(Debug, Clone)]
pub struct BenchOpts {
    /// Daemon to drive; `None` spawns one in-process (workers =
    /// `connections`) against a temp root.
    pub addr: Option<SocketAddr>,
    /// Smoke budgets (CI plumbing): tiny jobs, no overhead-ratio gate.
    pub smoke: bool,
    /// Artifact directory (`results/perf` by default).
    pub out: PathBuf,
    /// Total requests to issue.
    pub requests: usize,
    /// Concurrent closed-loop client connections (and, for an
    /// in-process daemon, its worker count).
    pub connections: usize,
    /// Mix seed: request `i` runs `MIX[splitmix64(seed + i) % MIX.len()]`.
    pub seed: u64,
}

impl Default for BenchOpts {
    fn default() -> BenchOpts {
        BenchOpts {
            addr: None,
            smoke: false,
            out: PathBuf::from(DEFAULT_PERF_DIR),
            requests: 24,
            connections: 4,
            seed: 0x5EED_C0DE,
        }
    }
}

/// What a bench run produced, for callers that gate on it.
#[derive(Debug)]
pub struct BenchReport {
    /// The rendered suite (also written to `BENCH_serve.json`).
    pub suite: BenchSuite,
    /// Requests that did not complete with a 200 report.
    pub failed: u64,
    /// 429 rejections absorbed by retry (not failures).
    pub retries: u64,
    /// Files written.
    pub paths: Vec<PathBuf>,
}

fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The scenario for request `i` under `seed`.
pub fn mixed_scenario(seed: u64, i: usize) -> &'static str {
    MIX[(splitmix64(seed.wrapping_add(i as u64)) % MIX.len() as u64) as usize]
}

fn percentile(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return f64::NAN;
    }
    let rank = ((q * sorted_ns.len() as f64).ceil() as usize).clamp(1, sorted_ns.len());
    sorted_ns[rank - 1] as f64 / 1e6 // ms
}

fn submit_body(scenario: &str, smoke: bool) -> Vec<u8> {
    // Checkpoints off: repeated identical requests must measure real
    // work, not checkpoint reads. One shard: the batch side has no
    // per-shard seams either.
    format!("{{\"scenario\":\"{scenario}\",\"smoke\":{smoke},\"shards\":1,\"checkpoints\":false}}")
        .into_bytes()
}

/// One closed-loop request: submit (retrying 429s), stream to terminal,
/// fetch the report. Returns the latency on success.
fn drive_request(
    addr: SocketAddr,
    scenario: &str,
    smoke: bool,
    retries: &AtomicU64,
) -> Result<Duration, String> {
    let body = submit_body(scenario, smoke);
    let started = Instant::now();
    let id = loop {
        let resp = request(addr, "POST", "/jobs", Some(&body))
            .map_err(|e| format!("submit failed: {e}"))?;
        match resp.status {
            202 => {
                let json = Json::parse(&resp.text())
                    .map_err(|e| format!("submit response unparseable: {e}"))?;
                break json
                    .get("id")
                    .and_then(Json::as_f64)
                    .ok_or("submit response has no id")? as u64;
            }
            429 => {
                retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(10));
            }
            other => return Err(format!("submit got {other}: {}", resp.text())),
        }
    };
    let stream = request(addr, "GET", &format!("/jobs/{id}/stream"), None)
        .map_err(|e| format!("stream failed: {e}"))?;
    if stream.status != 200 {
        return Err(format!("stream got {}", stream.status));
    }
    let events = stream.text();
    if !events.contains("\"event\":\"done\"") {
        return Err(format!("job {id} did not finish: {events}"));
    }
    let elapsed = started.elapsed();
    let report = request(addr, "GET", &format!("/jobs/{id}/report"), None)
        .map_err(|e| format!("report fetch failed: {e}"))?;
    if report.status != 200 || report.body.is_empty() {
        return Err(format!(
            "report got {} ({} bytes)",
            report.status,
            report.body.len()
        ));
    }
    Ok(elapsed)
}

/// Fans `opts.requests` indices over `opts.connections` threads,
/// running `work(i)` closed-loop.
fn closed_loop(requests: usize, connections: usize, work: impl Fn(usize) + Sync) {
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..connections.max(1) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= requests {
                    return;
                }
                work(i);
            });
        }
    });
}

/// Runs the load generator, writes `BENCH_serve.json` +
/// `manifest_serve.json`, and applies the gates: zero failed requests
/// always; `serve_vs_batch_ratio >= 0.9` at full scale.
///
/// # Errors
///
/// Gate violations and I/O failures, with the suite already written so
/// CI can upload it for diagnosis.
pub fn run_bench(opts: &BenchOpts) -> Result<BenchReport, String> {
    let started = Instant::now();
    let connections = opts.connections.max(1);
    let requests = opts.requests.max(1);

    // Spawn an in-process daemon unless pointed at a live one.
    let mut local = None;
    let addr = match opts.addr {
        Some(addr) => addr,
        None => {
            let root =
                std::env::temp_dir().join(format!("voltctl-serve-bench-{}", std::process::id()));
            let handle = spawn(ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                workers: connections,
                queue_bound: connections * 2,
                root,
                ..ServeConfig::default()
            })
            .map_err(|e| format!("cannot spawn daemon: {e}"))?;
            let addr = handle.addr;
            local = Some(handle);
            addr
        }
    };

    // Warm both sides' process-wide caches (calibration, threshold
    // solves, kernel derivations, stressmark tuning) so neither side
    // pays first-touch costs inside the measured window.
    let distinct: Vec<&str> = {
        let mut seen = Vec::new();
        for i in 0..requests {
            let s = mixed_scenario(opts.seed, i);
            if !seen.contains(&s) {
                seen.push(s);
            }
        }
        seen
    };
    let warm_failures = AtomicU64::new(0);
    let retries = AtomicU64::new(0);
    closed_loop(distinct.len(), connections, |i| {
        if drive_request(addr, distinct[i], opts.smoke, &retries).is_err() {
            warm_failures.fetch_add(1, Ordering::Relaxed);
        }
    });
    let ctx = Ctx {
        smoke: opts.smoke,
        ..Ctx::default()
    };
    let mut cells_total: u64 = 0;
    for i in 0..requests {
        let scenario = find(mixed_scenario(opts.seed, i)).expect("mix ids are registry ids");
        cells_total += scenario.cells(&ctx).len() as u64;
        if i < distinct.len() {
            // In-process warm for the batch side (memoized, so cheap
            // when the daemon shares this process).
            let _ = run_scenario(find(distinct[i]).unwrap(), &ctx, 1);
        }
    }

    // Measured serve pass.
    let failed = AtomicU64::new(0);
    let latencies: Vec<AtomicU64> = (0..requests).map(|_| AtomicU64::new(0)).collect();
    retries.store(0, Ordering::Relaxed);
    let serve_started = Instant::now();
    closed_loop(requests, connections, |i| {
        match drive_request(addr, mixed_scenario(opts.seed, i), opts.smoke, &retries) {
            Ok(latency) => latencies[i].store(latency.as_nanos() as u64, Ordering::Relaxed),
            Err(reason) => {
                voltctl_telemetry::warn("serve.bench", &format!("request {i}: {reason}"));
                failed.fetch_add(1, Ordering::Relaxed);
            }
        }
    });
    let serve_wall = serve_started.elapsed();

    // Batch reference: same request assignment, same parallelism, no
    // service layer.
    let batch_started = Instant::now();
    closed_loop(requests, connections, |i| {
        let scenario = find(mixed_scenario(opts.seed, i)).expect("mix ids are registry ids");
        let _ = run_scenario(scenario, &ctx, 1);
    });
    let batch_wall = batch_started.elapsed();

    if let Some(handle) = local {
        handle.join();
    }

    let failed = failed.load(Ordering::Relaxed) + warm_failures.load(Ordering::Relaxed);
    let retries = retries.load(Ordering::Relaxed);
    let mut sorted: Vec<u64> = latencies
        .iter()
        .map(|l| l.load(Ordering::Relaxed))
        .filter(|&ns| ns > 0)
        .collect();
    sorted.sort_unstable();

    let serve_ns = serve_wall.as_nanos() as f64;
    let batch_ns = batch_wall.as_nanos() as f64;
    let ratio = batch_ns / serve_ns;
    let point = |path: &'static str, wall_ns: f64| BenchPoint {
        path,
        kernel_taps: 0,
        cycles: cells_total,
        wall_ns,
        best_ns: wall_ns,
        cycles_per_sec: cells_total as f64 * 1e9 / wall_ns,
        ns_per_cycle: wall_ns / cells_total as f64,
    };
    let suite = BenchSuite {
        name: "serve",
        smoke: opts.smoke,
        points: vec![point("serve", serve_ns), point("batch", batch_ns)],
        summary: vec![
            ("requests", requests as f64),
            ("connections", connections as f64),
            ("failed_requests", failed as f64),
            ("backpressure_retries", retries as f64),
            ("latency_p50_ms", percentile(&sorted, 0.50)),
            ("latency_p90_ms", percentile(&sorted, 0.90)),
            ("latency_p99_ms", percentile(&sorted, 0.99)),
            ("latency_p999_ms", percentile(&sorted, 0.999)),
            ("serve_wall_ms", serve_ns / 1e6),
            ("batch_wall_ms", batch_ns / 1e6),
            ("serve_vs_batch_ratio", ratio),
        ],
    };

    // Regenerate-in-place artifacts + provenance.
    std::fs::create_dir_all(&opts.out).map_err(|e| format!("cannot create out dir: {e}"))?;
    let suite_path =
        voltctl_telemetry::export::write_file(&opts.out, "BENCH_serve.json", &suite.to_json())
            .map_err(|e| format!("cannot write BENCH_serve.json: {e}"))?;
    let mut manifest = voltctl_exp::Manifest::new(format!(
        "serve bench --requests {requests} --connections {connections} --seed {}",
        opts.seed
    ));
    manifest.smoke = opts.smoke;
    manifest.wall(started.elapsed());
    manifest.artifact(&suite_path);
    let manifest_path = voltctl_telemetry::export::write_file(
        &opts.out,
        "manifest_serve.json",
        &manifest.to_json(&opts.out),
    )
    .map_err(|e| format!("cannot write manifest_serve.json: {e}"))?;

    let report = BenchReport {
        suite,
        failed,
        retries,
        paths: vec![suite_path, manifest_path],
    };
    if failed > 0 {
        return Err(format!("{failed} request(s) failed (artifacts written)"));
    }
    if sorted.is_empty() {
        return Err("no latency samples recorded".to_string());
    }
    if !opts.smoke && ratio < 0.9 {
        return Err(format!(
            "serve_vs_batch_ratio {ratio:.3} < 0.9: service overhead exceeds 10%"
        ));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_seed_deterministic_and_in_registry() {
        for i in 0..64 {
            let a = mixed_scenario(7, i);
            let b = mixed_scenario(7, i);
            assert_eq!(a, b);
            assert!(find(a).is_some(), "{a} must be a registry id");
        }
        // Different seeds reorder the mix.
        let same = (0..32)
            .filter(|&i| mixed_scenario(1, i) == mixed_scenario(2, i))
            .count();
        assert!(same < 32, "seed must influence the mix");
    }

    #[test]
    fn percentiles_pick_rank_order_statistics() {
        let sorted: Vec<u64> = (1..=100).map(|i| i * 1_000_000).collect();
        assert_eq!(percentile(&sorted, 0.50), 50.0);
        assert_eq!(percentile(&sorted, 0.99), 99.0);
        assert_eq!(percentile(&sorted, 1.0), 100.0);
        assert!(percentile(&[], 0.5).is_nan());
    }
}
