//! The daemon's structured event log.
//!
//! One JSONL line per meaningful state transition — HTTP request
//! served, job queued/running/shard-completed/terminal, daemon
//! lifecycle — appended to `<root>/events.jsonl`. Every line carries a
//! timestamp, a level, an event name, and (for anything tied to a
//! request) the request id assigned at HTTP accept, so one job's whole
//! lifecycle is grep-able end to end:
//!
//! ```text
//! grep '"req":"r17"' events.jsonl
//! {"ts_ms":…,"level":"debug","event":"http.request","req":"r17",…}
//! {"ts_ms":…,"level":"debug","event":"job.queued","req":"r17","job":9}
//! {"ts_ms":…,"level":"debug","event":"job.shard","req":"r17","job":9,…}
//! {"ts_ms":…,"level":"debug","event":"job.done","req":"r17","job":9,…}
//! ```
//!
//! # Two sinks, two formats
//!
//! The JSONL file gets *everything* (including per-request `debug`
//! lines); stderr stays human-readable and low-volume — only
//! `info`-and-up lines are mirrored there, in the workspace's
//! established `voltctl-serve[level] event key=value` shape. This is
//! what replaced the daemon's ad-hoc `eprintln!`/`println!` startup and
//! error lines: same channel, one consistent format.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};
use std::time::{SystemTime, UNIX_EPOCH};
use voltctl_check::json::escape;

/// Event severity. `Debug` is file-only; `Info` and up also mirror to
/// stderr in human-readable form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventLevel {
    /// High-volume per-request/per-job transitions (file only).
    Debug,
    /// Daemon lifecycle (listening, shutdown).
    Info,
    /// Degraded-but-running conditions (checkpoint write failed, …).
    Warn,
    /// Failures worth an operator's attention.
    Error,
}

impl EventLevel {
    /// The wire name of this level.
    pub fn name(self) -> &'static str {
        match self {
            EventLevel::Debug => "debug",
            EventLevel::Info => "info",
            EventLevel::Warn => "warn",
            EventLevel::Error => "error",
        }
    }
}

/// One typed field value on an event line.
#[derive(Debug, Clone)]
pub enum F {
    /// A JSON string (escaped on render).
    S(String),
    /// An unsigned integer.
    U(u64),
    /// A float (rendered as JSON number; non-finite becomes `null`).
    N(f64),
    /// A boolean.
    B(bool),
}

impl F {
    /// A string field.
    pub fn s(v: impl Into<String>) -> F {
        F::S(v.into())
    }

    fn render(&self) -> String {
        match self {
            F::S(v) => escape(v),
            F::U(v) => format!("{v}"),
            F::N(v) if v.is_finite() => format!("{v}"),
            F::N(_) => "null".to_string(),
            F::B(v) => format!("{v}"),
        }
    }

    /// The human-readable (stderr) form: like JSON but without quotes
    /// around simple strings.
    fn render_human(&self) -> String {
        match self {
            F::S(v) if !v.contains(|c: char| c.is_whitespace() || c == '"') => v.clone(),
            other => other.render(),
        }
    }
}

/// Milliseconds since the Unix epoch (wall clock; events are for
/// operators, so they get real timestamps, not cycle counts).
fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// The structured event sink shared by the accept loop, the job table,
/// and the workers.
#[derive(Debug)]
pub struct EventLog {
    file: Mutex<Option<BufWriter<File>>>,
    path: Option<PathBuf>,
    /// Minimum level mirrored to stderr (`Info` for the daemon; tests
    /// raise it to keep output quiet).
    stderr_level: EventLevel,
}

impl EventLog {
    /// An event log appending to `dir/events.jsonl`. Falls back to a
    /// stderr-only log (with a warning) if the file cannot be opened —
    /// observability must never take the daemon down.
    pub fn open(dir: &Path) -> EventLog {
        let path = dir.join("events.jsonl");
        match OpenOptions::new().create(true).append(true).open(&path) {
            Ok(file) => EventLog {
                file: Mutex::new(Some(BufWriter::new(file))),
                path: Some(path),
                stderr_level: EventLevel::Info,
            },
            Err(e) => {
                eprintln!(
                    "voltctl-serve[warn] eventlog.open_failed path={} error={e}",
                    path.display()
                );
                EventLog::stderr_only()
            }
        }
    }

    /// A log with no file sink: `Info`-and-up still reach stderr.
    pub fn stderr_only() -> EventLog {
        EventLog {
            file: Mutex::new(None),
            path: None,
            stderr_level: EventLevel::Info,
        }
    }

    /// A log that writes nowhere (unit tests).
    pub fn disabled() -> EventLog {
        EventLog {
            file: Mutex::new(None),
            path: None,
            stderr_level: EventLevel::Error,
        }
    }

    /// Where the JSONL file lives, if one is open.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Appends one event line. `fields` render in the given order after
    /// the standard `ts_ms`/`level`/`event` prefix.
    pub fn emit(&self, level: EventLevel, event: &str, fields: &[(&str, F)]) {
        let mut line = format!(
            "{{\"ts_ms\":{},\"level\":\"{}\",\"event\":{}",
            now_ms(),
            level.name(),
            escape(event)
        );
        for (key, value) in fields {
            line.push_str(&format!(",{}:{}", escape(key), value.render()));
        }
        line.push('}');

        {
            let mut file = self.file.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(w) = file.as_mut() {
                let _ = writeln!(w, "{line}");
                let _ = w.flush();
            }
        }
        if level >= self.stderr_level {
            let mut human = format!("voltctl-serve[{}] {event}", level.name());
            for (key, value) in fields {
                human.push_str(&format!(" {key}={}", value.render_human()));
            }
            eprintln!("{human}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltctl_check::Json;

    #[test]
    fn emits_parseable_jsonl_with_ordered_fields() {
        let dir = std::env::temp_dir().join(format!("voltctl-eventlog-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let log = EventLog::open(&dir);
        log.emit(
            EventLevel::Debug,
            "job.queued",
            &[
                ("req", F::s("r1")),
                ("job", F::U(7)),
                ("ratio", F::N(0.5)),
                ("resumed", F::B(false)),
                ("nan", F::N(f64::NAN)),
            ],
        );
        let text = std::fs::read_to_string(log.path().unwrap()).unwrap();
        let line = text.lines().next().unwrap();
        let json = Json::parse(line).expect("event line must be valid JSON");
        assert_eq!(json.get("event").and_then(Json::as_str), Some("job.queued"));
        assert_eq!(json.get("req").and_then(Json::as_str), Some("r1"));
        assert_eq!(json.get("job").and_then(Json::as_f64), Some(7.0));
        assert_eq!(json.get("ratio").and_then(Json::as_f64), Some(0.5));
        assert_eq!(json.get("resumed").and_then(Json::as_bool), Some(false));
        assert!(json.get("nan").map(Json::is_null).unwrap_or(false));
        assert!(json.get("ts_ms").and_then(Json::as_f64).unwrap_or(0.0) > 0.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_log_is_silent_and_pathless() {
        let log = EventLog::disabled();
        assert!(log.path().is_none());
        log.emit(EventLevel::Info, "noop", &[]);
    }
}
