//! `voltctl-serve`: the simulation engine as a long-running service.
//!
//! The paper's control loops are meant to run continuously on live
//! processors; this crate is the repo's step from "batch CLI" to
//! "serves traffic". It wraps the `voltctl-exp` engine in a hand-rolled
//! HTTP/1.1 + JSONL daemon (std only — `std::net::TcpListener`, no
//! framework) with:
//!
//! - a bounded job queue with backpressure (`429` + `Retry-After`),
//! - cooperative cancellation at checkpoint-shard boundaries,
//! - crash-safe jobs through the shard checkpoint container (a killed
//!   daemon resumes a resubmitted job from its surviving shards),
//! - JSONL progress streaming and artifact retrieval per job, and
//! - a closed-loop load-generator client (`voltctl-serve bench`) that
//!   measures service overhead against the in-process batch engine and
//!   emits `BENCH_serve.json`.
//!
//! The determinism contract extends across the wire: a job's report
//! bytes are identical to the equivalent `voltctl-exp run` invocation,
//! because the daemon executes jobs through the very same
//! `plan_shards` → `run_cells` → `assemble_run` primitives.

pub mod bench;
pub mod client;
pub mod event;
pub mod http;
pub mod job;
pub mod metrics;
pub mod runner;
pub mod server;
pub mod top;

pub use bench::{run_bench, BenchOpts, BenchReport};
pub use client::{request, HttpResponse};
pub use event::{EventLevel, EventLog, F};
pub use http::{parse_request, HttpError, Parse, Request, Response};
pub use job::{Claimed, JobSpec, JobState, JobTable, Stats, SubmitError};
pub use metrics::{route_label, ServeMetrics, DECLARED_FAMILIES};
pub use server::{spawn, ServeConfig, ServerHandle};
pub use top::{run_top, TopOpts};
