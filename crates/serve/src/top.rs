//! `voltctl-serve top`: a std-only terminal dashboard over `GET
//! /metrics`.
//!
//! Each frame scrapes the daemon's Prometheus exposition, parses it
//! with the in-repo parser below (no dependencies — the same parser
//! the integration tests use to validate the exposition), and renders
//! queue depth, request latency quantiles, cache hit rates, and worker
//! occupancy. The dashboard is a pure client: it sees exactly what any
//! external scraper sees, so what `top` shows is what Prometheus would
//! ingest.
//!
//! Latency quantiles are recovered from the cumulative `_bucket{le=…}`
//! lines the server emits. Buckets from different routes share the
//! histogram's deterministic bounds, so summing cumulative counts per
//! `le` across routes yields the all-routes distribution exactly.

use crate::client::request;
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::time::Duration;

/// One parsed sample line: family name, labels, value.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    pub name: String,
    pub labels: Vec<(String, String)>,
    pub value: f64,
}

impl Sample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A parsed exposition: every sample plus the set of `# TYPE`-declared
/// family names.
#[derive(Debug, Clone, Default)]
pub struct Exposition {
    pub samples: Vec<Sample>,
    /// family name -> declared type ("counter", "gauge", "histogram").
    pub families: BTreeMap<String, String>,
}

impl Exposition {
    /// Sums every sample of `name` whose labels satisfy `pred`.
    pub fn sum(&self, name: &str, pred: impl Fn(&Sample) -> bool) -> f64 {
        // The empty f64 sum is -0.0, which `{:.0}` renders as "-0";
        // adding +0.0 normalizes the sign without changing any total.
        self.samples
            .iter()
            .filter(|s| s.name == name && pred(s))
            .map(|s| s.value)
            .sum::<f64>()
            + 0.0
    }

    /// The single value of `name` (first match), if present.
    pub fn value(&self, name: &str) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.value)
    }

    /// An upper bound for quantile `q` of histogram `name`, aggregated
    /// across all label sets, from the cumulative `_bucket` samples.
    pub fn histogram_quantile(&self, name: &str, q: f64) -> Option<f64> {
        let bucket = format!("{name}_bucket");
        // le -> summed cumulative count across label sets.
        let mut by_le: BTreeMap<u64, f64> = BTreeMap::new();
        let mut inf = 0.0f64;
        for s in self.samples.iter().filter(|s| s.name == bucket) {
            match s.label("le") {
                Some("+Inf") => inf += s.value,
                Some(le) => {
                    let le: f64 = le.parse().ok()?;
                    *by_le.entry(le as u64).or_insert(0.0) += s.value;
                }
                None => {}
            }
        }
        let total = inf;
        if total <= 0.0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * total).ceil().max(1.0);
        for (le, cum) in &by_le {
            if *cum >= rank {
                return Some(*le as f64);
            }
        }
        // Rank falls in the +Inf bucket: report the largest finite bound.
        by_le.keys().next_back().map(|le| *le as f64)
    }
}

/// Parses a Prometheus text-format 0.0.4 exposition.
///
/// # Errors
///
/// A human-readable reason naming the first malformed line. Unknown
/// comment directives are skipped; every sample line must be
/// `name[{labels}] value`.
pub fn parse_exposition(text: &str) -> Result<Exposition, String> {
    let mut out = Exposition::default();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            if let (Some(name), Some(kind)) = (parts.next(), parts.next()) {
                out.families.insert(name.to_string(), kind.to_string());
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let sample =
            parse_sample(line).map_err(|e| format!("line {}: {e}: {line:?}", lineno + 1))?;
        out.samples.push(sample);
    }
    Ok(out)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let (head, value) = match line.find('{') {
        Some(open) => {
            let close = line.rfind('}').ok_or("unterminated label set")?;
            (
                (&line[..open], parse_labels(&line[open + 1..close])?),
                line[close + 1..].trim(),
            )
        }
        None => {
            let (name, value) = line
                .rsplit_once(char::is_whitespace)
                .ok_or("sample has no value")?;
            ((name, Vec::new()), value)
        }
    };
    let value: f64 = value
        .parse()
        .map_err(|_| format!("value {value:?} is not a number"))?;
    Ok(Sample {
        name: head.0.trim().to_string(),
        labels: head.1,
        value,
    })
}

fn parse_labels(raw: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = raw.trim();
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or("label without '='")?;
        let key = rest[..eq].trim().to_string();
        let after = rest[eq + 1..].trim_start();
        let inner = after.strip_prefix('"').ok_or("label value not quoted")?;
        // Scan to the closing quote honoring backslash escapes.
        let mut value = String::new();
        let mut chars = inner.char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, escaped)) => value.push(escaped),
                    None => return Err("dangling escape in label value".into()),
                },
                '"' => {
                    end = Some(i);
                    break;
                }
                c => value.push(c),
            }
        }
        let end = end.ok_or("unterminated label value")?;
        labels.push((key, value));
        rest = inner[end + 1..].trim_start().trim_start_matches(',');
        rest = rest.trim_start();
    }
    Ok(labels)
}

/// Dashboard options.
#[derive(Debug, Clone)]
pub struct TopOpts {
    /// The daemon to scrape.
    pub addr: SocketAddr,
    /// Delay between frames.
    pub interval: Duration,
    /// Frames to render; 0 means until the scrape fails (daemon gone).
    pub frames: usize,
    /// Clear the terminal between frames (off when piping to a file).
    pub clear: bool,
}

impl Default for TopOpts {
    fn default() -> TopOpts {
        TopOpts {
            addr: "127.0.0.1:7643".parse().expect("static addr"),
            interval: Duration::from_millis(1000),
            frames: 0,
            clear: true,
        }
    }
}

fn fmt_ms(ns: Option<f64>) -> String {
    match ns {
        Some(ns) => format!("{:.2}ms", ns / 1e6),
        None => "-".to_string(),
    }
}

fn hit_rate(exp: &Exposition, cache: &str) -> String {
    let hits = exp.sum("voltctl_cache_hits_total", |s| {
        s.label("cache") == Some(cache)
    });
    let misses = exp.sum("voltctl_cache_misses_total", |s| {
        s.label("cache") == Some(cache)
    });
    if hits + misses <= 0.0 {
        "-".to_string()
    } else {
        format!("{:.0}%", 100.0 * hits / (hits + misses))
    }
}

/// Renders one dashboard frame from a parsed exposition.
pub fn render_frame(exp: &Exposition, addr: &SocketAddr) -> String {
    let mut out = String::new();
    let requests = exp.sum("voltctl_http_requests_total", |_| true);
    let errors = exp.sum("voltctl_http_requests_total", |s| {
        s.label("status")
            .map(|v| !v.starts_with('2'))
            .unwrap_or(false)
    });
    out.push_str(&format!(
        "voltctl-serve top — {addr}\n\
         \n\
         requests  total {requests:>8.0}   non-2xx {errors:>6.0}   \
         p50 {p50}   p99 {p99}\n",
        p50 = fmt_ms(exp.histogram_quantile("voltctl_http_request_duration_ns", 0.50)),
        p99 = fmt_ms(exp.histogram_quantile("voltctl_http_request_duration_ns", 0.99)),
    ));
    out.push_str(&format!(
        "queue     depth {depth:>8.0}   max {max:>10.0}   \
         bound {bound:>5.0}   wait p99 {wait}\n",
        depth = exp.value("voltctl_serve_queue_depth").unwrap_or(0.0),
        max = exp.value("voltctl_serve_queue_depth_max").unwrap_or(0.0),
        bound = exp.value("voltctl_serve_queue_bound").unwrap_or(0.0),
        wait = fmt_ms(exp.histogram_quantile("voltctl_serve_queue_wait_ns", 0.99)),
    ));
    let workers = exp.value("voltctl_serve_workers").unwrap_or(0.0);
    let busy = exp.value("voltctl_serve_workers_busy").unwrap_or(0.0);
    let occupancy = if workers > 0.0 {
        format!("{:.0}%", 100.0 * busy / workers)
    } else {
        "-".to_string()
    };
    out.push_str(&format!(
        "workers   busy {busy:>9.0} / {workers:.0}   occupancy {occupancy:>4}   \
         run p99 {run}\n",
        run = fmt_ms(exp.histogram_quantile("voltctl_serve_job_run_ns", 0.99)),
    ));
    let state = |s: &str| exp.sum("voltctl_serve_jobs", |x| x.label("state") == Some(s));
    out.push_str(&format!(
        "jobs      queued {:>7.0}   running {:>6.0}   done {:>6.0}   \
         failed {:>4.0}   cancelled {:>4.0}\n",
        state("queued"),
        state("running"),
        state("done"),
        state("failed"),
        state("cancelled"),
    ));
    out.push_str(&format!(
        "caches    kernel hit {kernel:>4}   solve hit {solve:>6}\n",
        kernel = hit_rate(exp, "kernel"),
        solve = hit_rate(exp, "solve"),
    ));
    out
}

/// Runs the dashboard loop: scrape, render, sleep.
///
/// # Errors
///
/// The first scrape must succeed (otherwise the daemon address is
/// wrong and the error says so); later scrape failures end the loop
/// quietly when `frames == 0` (daemon shut down) and error otherwise.
pub fn run_top(opts: &TopOpts) -> Result<(), String> {
    let mut rendered = 0usize;
    loop {
        let scrape = request(opts.addr, "GET", "/metrics", None);
        let resp = match scrape {
            Ok(resp) if resp.status == 200 => resp,
            Ok(resp) => return Err(format!("GET /metrics returned {}", resp.status)),
            Err(e) if rendered == 0 => {
                return Err(format!("cannot scrape {}: {e}", opts.addr));
            }
            Err(_) => return Ok(()), // daemon went away mid-watch
        };
        let exp = parse_exposition(&resp.text())
            .map_err(|e| format!("malformed exposition from {}: {e}", opts.addr))?;
        if opts.clear {
            print!("\x1b[2J\x1b[H");
        }
        print!("{}", render_frame(&exp, &opts.addr));
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        rendered += 1;
        if opts.frames != 0 && rendered >= opts.frames {
            return Ok(());
        }
        std::thread::sleep(opts.interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# HELP voltctl_http_requests_total HTTP requests served\n\
# TYPE voltctl_http_requests_total counter\n\
voltctl_http_requests_total{route=\"/healthz\",status=\"200\"} 10\n\
voltctl_http_requests_total{route=\"/jobs\",status=\"429\"} 2\n\
# TYPE voltctl_http_request_duration_ns histogram\n\
voltctl_http_request_duration_ns_bucket{le=\"1024\",route=\"/healthz\"} 6\n\
voltctl_http_request_duration_ns_bucket{le=\"4096\",route=\"/healthz\"} 10\n\
voltctl_http_request_duration_ns_bucket{le=\"+Inf\",route=\"/healthz\"} 10\n\
voltctl_http_request_duration_ns_sum{route=\"/healthz\"} 12345\n\
voltctl_http_request_duration_ns_count{route=\"/healthz\"} 10\n\
# TYPE voltctl_serve_queue_depth gauge\n\
voltctl_serve_queue_depth 3\n";

    #[test]
    fn parses_samples_labels_and_families() {
        let exp = parse_exposition(SAMPLE).unwrap();
        assert_eq!(
            exp.families
                .get("voltctl_http_requests_total")
                .map(String::as_str),
            Some("counter")
        );
        assert_eq!(exp.sum("voltctl_http_requests_total", |_| true), 12.0);
        assert_eq!(
            exp.sum("voltctl_http_requests_total", |s| s.label("status")
                == Some("429")),
            2.0
        );
        assert_eq!(exp.value("voltctl_serve_queue_depth"), Some(3.0));
    }

    #[test]
    fn quantiles_come_from_cumulative_buckets() {
        let exp = parse_exposition(SAMPLE).unwrap();
        // rank(p50) = 5 of 10 -> first bucket (le 1024); p99 -> le 4096.
        assert_eq!(
            exp.histogram_quantile("voltctl_http_request_duration_ns", 0.50),
            Some(1024.0)
        );
        assert_eq!(
            exp.histogram_quantile("voltctl_http_request_duration_ns", 0.99),
            Some(4096.0)
        );
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_exposition("metric_without_value\n").is_err());
        assert!(parse_exposition("m{le=\"unterminated} 1\n").is_err());
        assert!(parse_exposition("m{le=nope} 1\n").is_err());
    }

    #[test]
    fn frame_renders_every_section() {
        let exp = parse_exposition(SAMPLE).unwrap();
        let frame = render_frame(&exp, &"127.0.0.1:7643".parse().unwrap());
        for needle in ["requests", "queue", "workers", "jobs", "caches"] {
            assert!(frame.contains(needle), "missing {needle}:\n{frame}");
        }
    }
}
