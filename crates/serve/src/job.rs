//! Job specifications, states, and the bounded job table.
//!
//! The [`JobTable`] is the daemon's single source of truth: every
//! submitted job lives in it from `POST /jobs` until process exit, so
//! accounting is conservation-checked — the soak test asserts that
//! submitted = done + failed + cancelled + queued + running at every
//! observation point, i.e. no job is ever lost or duplicated.
//!
//! # Queueing and backpressure
//!
//! Admission is bounded: at most `bound` jobs may sit in `Queued` at
//! once. A submit against a full queue is rejected immediately (the
//! server turns that into `429` + `Retry-After`) rather than blocking
//! the accept loop — a closed-loop client retries, an open-loop client
//! sheds load. Workers block on a [`Condvar`] and drain the queue in
//! FIFO order.
//!
//! # Cancellation
//!
//! Every job carries an `Arc<AtomicBool>` cancel flag. Cancelling a
//! `Queued` job removes it from the queue synchronously; cancelling a
//! `Running` job raises the flag, which the runner checks at shard
//! boundaries — the job winds down cooperatively, keeping the
//! checkpoints it already wrote (a resubmitted identical job resumes
//! from them).

use crate::event::{EventLevel, EventLog, F};
use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use voltctl_check::json::escape;
use voltctl_check::Json;
use voltctl_exp::telemetry::Mode;
use voltctl_exp::{Ctx, TraceSpec};

/// Everything a client can ask for on one job: the scenario plus the
/// options the `voltctl-exp run` CLI exposes.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Scenario id (must exist in the registry; validated at submit).
    pub scenario: String,
    /// Cycle-budget scale factor (`--scale`).
    pub scale: f64,
    /// Smoke mode (`--smoke`): tiny budgets, shape assertions off.
    pub smoke: bool,
    /// Event tracing (`--trace`): flight recorders + trace artifacts.
    pub trace: bool,
    /// Telemetry export mode (`--telemetry off|summary|jsonl|csv`).
    pub telemetry: Mode,
    /// Checkpoint shard count (`--shards`); `0` means the server
    /// default. Also the cancellation granularity.
    pub shards: usize,
    /// Whether to load/write checkpoints. The bench client disables
    /// this so repeated identical requests measure real work.
    pub checkpoints: bool,
}

impl Default for JobSpec {
    fn default() -> JobSpec {
        JobSpec {
            scenario: String::new(),
            scale: 1.0,
            smoke: false,
            trace: false,
            telemetry: Mode::Off,
            shards: 0,
            checkpoints: true,
        }
    }
}

impl JobSpec {
    /// Parses a spec from a `POST /jobs` JSON body.
    ///
    /// # Errors
    ///
    /// Human-readable reasons for malformed JSON, missing/unknown
    /// fields, or out-of-range values. (Scenario *existence* is checked
    /// by the server against the registry, keeping this module free of
    /// a registry dependency.)
    pub fn from_json_body(body: &[u8]) -> Result<JobSpec, String> {
        let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
        let json = Json::parse(text).map_err(|e| format!("body is not valid JSON: {e}"))?;
        let mut spec = JobSpec {
            scenario: json
                .get("scenario")
                .and_then(Json::as_str)
                .ok_or("missing required string field \"scenario\"")?
                .to_string(),
            ..JobSpec::default()
        };
        if let Some(v) = json.get("scale") {
            let s = v.as_f64().ok_or("\"scale\" must be a number")?;
            if !(s.is_finite() && s > 0.0) {
                return Err(format!("\"scale\" {s} is not a positive number"));
            }
            spec.scale = s;
        }
        if let Some(v) = json.get("smoke") {
            spec.smoke = v.as_bool().ok_or("\"smoke\" must be a boolean")?;
        }
        if let Some(v) = json.get("trace") {
            spec.trace = v.as_bool().ok_or("\"trace\" must be a boolean")?;
        }
        if let Some(v) = json.get("telemetry") {
            let raw = v.as_str().ok_or("\"telemetry\" must be a string")?;
            spec.telemetry = match raw.trim().to_ascii_lowercase().as_str() {
                "" | "off" => Mode::Off,
                "summary" => Mode::Summary,
                "jsonl" => Mode::Jsonl,
                "csv" => Mode::Csv,
                other => return Err(format!("unknown telemetry mode {other:?}")),
            };
        }
        if let Some(v) = json.get("shards") {
            let n = v.as_f64().ok_or("\"shards\" must be a number")?;
            if n.fract() != 0.0 || !(0.0..=4096.0).contains(&n) {
                return Err(format!("\"shards\" {n} is not an integer in 0..=4096"));
            }
            spec.shards = n as usize;
        }
        if let Some(v) = json.get("checkpoints") {
            spec.checkpoints = v.as_bool().ok_or("\"checkpoints\" must be a boolean")?;
        }
        Ok(spec)
    }

    /// The engine context this spec denotes — exactly what the CLI
    /// builds for the equivalent `voltctl-exp run` invocation, so the
    /// rendered report is byte-identical. `telemetry_out` points at the
    /// job's artifact directory.
    pub fn ctx(&self, artifact_dir: PathBuf) -> Ctx {
        Ctx {
            scale: self.scale,
            smoke: self.smoke,
            telemetry: self.telemetry != Mode::Off,
            telemetry_out: artifact_dir,
            trace: self.trace.then(TraceSpec::default),
            lanes: true,
        }
    }

    /// Serializes the options back out (for `GET /jobs/<id>` echoes).
    pub fn to_json(&self) -> String {
        let telemetry = match self.telemetry {
            Mode::Off => "off",
            Mode::Summary => "summary",
            Mode::Jsonl => "jsonl",
            Mode::Csv => "csv",
        };
        format!(
            "{{\"scenario\":{},\"scale\":{},\"smoke\":{},\"trace\":{},\
             \"telemetry\":\"{}\",\"shards\":{},\"checkpoints\":{}}}",
            escape(&self.scenario),
            self.scale,
            self.smoke,
            self.trace,
            telemetry,
            self.shards,
            self.checkpoints
        )
    }
}

/// Lifecycle of one job. `Done`, `Failed`, and `Cancelled` are
/// terminal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    Queued,
    Running,
    Done,
    Failed,
    Cancelled,
}

impl JobState {
    /// The wire name of this state.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// True once the job can no longer change state.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }
}

/// One job's record: spec, state, progress events, and outputs.
#[derive(Debug)]
struct JobRecord {
    spec: JobSpec,
    state: JobState,
    cancel: Arc<AtomicBool>,
    /// The request id assigned where the job entered the system (the
    /// HTTP accept loop, or synthesized for direct table use). Threaded
    /// into every event line the job emits.
    request_id: String,
    /// When the job entered the queue (for the queue-wait histogram).
    queued_at: Instant,
    /// When a worker claimed it (for the run-duration histogram).
    running_since: Option<Instant>,
    /// JSONL progress events, one line each, in emission order.
    events: Vec<String>,
    /// The rendered report (byte-identical to the CLI), once `Done`.
    report: Option<Vec<u8>>,
    /// Failure reason, once `Failed`.
    error: Option<String>,
    /// Artifact directory (allocated when the job starts running).
    artifact_dir: Option<PathBuf>,
    /// Grid cells completed (== total on `Done`).
    cells_done: usize,
}

/// Aggregate counters for `GET /stats` and the soak oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stats {
    pub submitted: u64,
    pub queued: usize,
    pub running: usize,
    pub done: usize,
    pub failed: usize,
    pub cancelled: usize,
    pub queue_bound: usize,
    /// High-water mark of queue depth since startup.
    pub queue_depth_max: usize,
}

impl Stats {
    /// Renders the stats JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"submitted\":{},\"queued\":{},\"running\":{},\"done\":{},\
             \"failed\":{},\"cancelled\":{},\"queue_bound\":{},\"queue_depth_max\":{}}}",
            self.submitted,
            self.queued,
            self.running,
            self.done,
            self.failed,
            self.cancelled,
            self.queue_bound,
            self.queue_depth_max
        )
    }
}

/// A point-in-time copy of one job's externally visible state.
#[derive(Debug, Clone)]
pub struct JobSnapshot {
    pub id: u64,
    pub spec: JobSpec,
    pub state: JobState,
    pub request_id: String,
    pub error: Option<String>,
    pub cells_done: usize,
    pub has_report: bool,
    pub artifact_dir: Option<PathBuf>,
}

impl JobSnapshot {
    /// Renders the `GET /jobs/<id>` JSON object.
    pub fn to_json(&self) -> String {
        let error = match &self.error {
            Some(e) => escape(e),
            None => "null".to_string(),
        };
        format!(
            "{{\"id\":{},\"state\":\"{}\",\"request_id\":{},\"spec\":{},\"cells_done\":{},\
             \"has_report\":{},\"error\":{}}}",
            self.id,
            self.state.name(),
            escape(&self.request_id),
            self.spec.to_json(),
            self.cells_done,
            self.has_report,
            error
        )
    }
}

/// What a worker receives from [`JobTable::claim`]: the job plus the
/// request id to thread into shard events and the measured queue wait.
#[derive(Debug)]
pub struct Claimed {
    pub id: u64,
    pub spec: JobSpec,
    pub cancel: Arc<AtomicBool>,
    /// Request id assigned at HTTP accept (or synthesized for direct
    /// table use).
    pub request_id: String,
    /// Submit-to-claim wait (already observed into the queue-wait
    /// histogram by `claim`).
    pub queue_wait: Duration,
}

/// Outcome the runner reports when a job leaves `Running`.
#[derive(Debug)]
pub enum JobOutcome {
    /// Report bytes + cells completed.
    Done(Vec<u8>, usize),
    /// Failure reason.
    Failed(String),
    /// Cooperative cancellation observed (cells completed so far).
    Cancelled(usize),
}

#[derive(Debug)]
struct TableInner {
    jobs: BTreeMap<u64, JobRecord>,
    queue: VecDeque<u64>,
    next_id: u64,
    submitted: u64,
    queue_depth_max: usize,
    shutdown: bool,
}

/// The bounded, condvar-signalled job table shared by the accept loop,
/// the workers, and the streaming handlers.
#[derive(Debug)]
pub struct JobTable {
    inner: Mutex<TableInner>,
    changed: Condvar,
    bound: usize,
    /// Structured event sink; every state transition mirrors there at
    /// `Debug` with the job's request id.
    log: Arc<EventLog>,
}

/// Why a submit was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// Queue is at its bound; retry later (the server sends 429).
    QueueFull,
    /// The daemon is shutting down.
    ShuttingDown,
}

impl JobTable {
    /// A table admitting at most `queue_bound` queued jobs at once,
    /// with no event-log sink (tests, embedded use).
    pub fn new(queue_bound: usize) -> JobTable {
        JobTable::with_log(queue_bound, Arc::new(EventLog::disabled()))
    }

    /// A table that mirrors every job state transition to `log`.
    pub fn with_log(queue_bound: usize, log: Arc<EventLog>) -> JobTable {
        JobTable {
            inner: Mutex::new(TableInner {
                jobs: BTreeMap::new(),
                queue: VecDeque::new(),
                next_id: 1,
                submitted: 0,
                queue_depth_max: 0,
                shutdown: false,
            }),
            changed: Condvar::new(),
            bound: queue_bound.max(1),
            log,
        }
    }

    /// The event sink shared with this table (the runner threads shard
    /// events through it).
    pub fn log(&self) -> &Arc<EventLog> {
        &self.log
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TableInner> {
        self.inner.lock().expect("job table poisoned")
    }

    /// Admits a job, returning its id, or refuses with backpressure.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] at the bound, [`SubmitError::ShuttingDown`]
    /// after [`shutdown`](JobTable::shutdown).
    pub fn submit(&self, spec: JobSpec) -> Result<u64, SubmitError> {
        self.submit_with_request(spec, None)
    }

    /// [`submit`](JobTable::submit) with the HTTP request id that
    /// carried the job in. `None` synthesizes a `local-<id>` id so
    /// direct table users still get traceable event lines.
    pub fn submit_with_request(
        &self,
        spec: JobSpec,
        request_id: Option<&str>,
    ) -> Result<u64, SubmitError> {
        let mut inner = self.lock();
        if inner.shutdown {
            return Err(SubmitError::ShuttingDown);
        }
        if inner.queue.len() >= self.bound {
            return Err(SubmitError::QueueFull);
        }
        let id = inner.next_id;
        inner.next_id += 1;
        inner.submitted += 1;
        let request_id = match request_id {
            Some(r) => r.to_string(),
            None => format!("local-{id}"),
        };
        let scenario = spec.scenario.clone();
        let mut record = JobRecord {
            spec,
            state: JobState::Queued,
            cancel: Arc::new(AtomicBool::new(false)),
            request_id: request_id.clone(),
            queued_at: Instant::now(),
            running_since: None,
            events: Vec::new(),
            report: None,
            error: None,
            artifact_dir: None,
            cells_done: 0,
        };
        record.events.push(format!(
            "{{\"job\":{id},\"event\":\"queued\",\"req\":{}}}",
            escape(&request_id)
        ));
        inner.jobs.insert(id, record);
        inner.queue.push_back(id);
        let depth = inner.queue.len();
        inner.queue_depth_max = inner.queue_depth_max.max(depth);
        drop(inner);
        self.log.emit(
            EventLevel::Debug,
            "job.queued",
            &[
                ("req", F::s(&request_id)),
                ("job", F::U(id)),
                ("scenario", F::s(scenario)),
                ("queue_depth", F::U(depth as u64)),
            ],
        );
        self.changed.notify_all();
        Ok(id)
    }

    /// Blocks until a job is available (returning it moved to
    /// `Running`) or the table shuts down (returning `None`). Observes
    /// the job's queue wait into the metrics plane.
    pub fn claim(&self) -> Option<Claimed> {
        let mut inner = self.lock();
        loop {
            if let Some(id) = inner.queue.pop_front() {
                let record = inner.jobs.get_mut(&id).expect("queued job must exist");
                record.state = JobState::Running;
                let now = Instant::now();
                let queue_wait = now.duration_since(record.queued_at);
                record.running_since = Some(now);
                record.events.push(format!(
                    "{{\"job\":{id},\"event\":\"running\",\"req\":{}}}",
                    escape(&record.request_id)
                ));
                let out = Claimed {
                    id,
                    spec: record.spec.clone(),
                    cancel: Arc::clone(&record.cancel),
                    request_id: record.request_id.clone(),
                    queue_wait,
                };
                drop(inner);
                crate::metrics::global()
                    .queue_wait_ns
                    .observe(queue_wait.as_nanos() as u64);
                self.log.emit(
                    EventLevel::Debug,
                    "job.running",
                    &[
                        ("req", F::s(&out.request_id)),
                        ("job", F::U(id)),
                        ("queue_wait_ns", F::U(queue_wait.as_nanos() as u64)),
                    ],
                );
                self.changed.notify_all();
                return Some(out);
            }
            if inner.shutdown {
                return None;
            }
            inner = self
                .changed
                .wait(inner)
                .expect("job table condvar poisoned");
        }
    }

    /// Appends a JSONL progress event to a running job and updates its
    /// completed-cell count.
    pub fn progress(&self, id: u64, event: String, cells_done: usize) {
        let mut inner = self.lock();
        if let Some(record) = inner.jobs.get_mut(&id) {
            record.events.push(event);
            record.cells_done = record.cells_done.max(cells_done);
        }
        drop(inner);
        self.changed.notify_all();
    }

    /// Records the artifact directory allocated for a job.
    pub fn set_artifact_dir(&self, id: u64, dir: PathBuf) {
        let mut inner = self.lock();
        if let Some(record) = inner.jobs.get_mut(&id) {
            record.artifact_dir = Some(dir);
        }
    }

    /// Moves a running job to its terminal state, recording the
    /// outcome counter and run-duration histogram.
    pub fn finish(&self, id: u64, outcome: JobOutcome) {
        let mut inner = self.lock();
        let mut finished: Option<(JobState, Duration, String, Option<String>)> = None;
        if let Some(record) = inner.jobs.get_mut(&id) {
            let req = escape(&record.request_id);
            match outcome {
                JobOutcome::Done(report, cells) => {
                    record.state = JobState::Done;
                    record.report = Some(report);
                    record.cells_done = cells;
                    record.events.push(format!(
                        "{{\"job\":{id},\"event\":\"done\",\"cells\":{cells},\"req\":{req}}}"
                    ));
                }
                JobOutcome::Failed(reason) => {
                    record.state = JobState::Failed;
                    record.events.push(format!(
                        "{{\"job\":{id},\"event\":\"failed\",\"error\":{},\"req\":{req}}}",
                        escape(&reason)
                    ));
                    record.error = Some(reason);
                }
                JobOutcome::Cancelled(cells) => {
                    record.state = JobState::Cancelled;
                    record.cells_done = cells;
                    record.events.push(format!(
                        "{{\"job\":{id},\"event\":\"cancelled\",\"req\":{req}}}"
                    ));
                }
            }
            let ran_for = record
                .running_since
                .map(|t| t.elapsed())
                .unwrap_or(Duration::ZERO);
            finished = Some((
                record.state,
                ran_for,
                record.request_id.clone(),
                record.error.clone(),
            ));
        }
        drop(inner);
        if let Some((state, ran_for, request_id, error)) = finished {
            crate::metrics::global().record_job_finished(state.name(), ran_for);
            let mut fields = vec![
                ("req", F::s(&request_id)),
                ("job", F::U(id)),
                ("run_ns", F::U(ran_for.as_nanos() as u64)),
            ];
            if let Some(e) = &error {
                fields.push(("error", F::s(e)));
            }
            let level = if error.is_some() {
                EventLevel::Warn
            } else {
                EventLevel::Debug
            };
            self.log
                .emit(level, &format!("job.{}", state.name()), &fields);
        }
        self.changed.notify_all();
    }

    /// Cancels a job. Queued jobs terminate synchronously; running jobs
    /// get their flag raised and wind down at the next shard boundary.
    /// Returns the state observed *before* cancellation, or `None` for
    /// an unknown id.
    pub fn cancel(&self, id: u64) -> Option<JobState> {
        let mut inner = self.lock();
        let record = inner.jobs.get(&id)?;
        let before = record.state;
        let request_id = record.request_id.clone();
        match before {
            JobState::Queued => {
                inner.queue.retain(|&q| q != id);
                let record = inner.jobs.get_mut(&id).expect("checked above");
                record.state = JobState::Cancelled;
                record.cancel.store(true, Ordering::Relaxed);
                record.events.push(format!(
                    "{{\"job\":{id},\"event\":\"cancelled\",\"req\":{}}}",
                    escape(&request_id)
                ));
            }
            JobState::Running => {
                record.cancel.store(true, Ordering::Relaxed);
            }
            _ => {}
        }
        drop(inner);
        if before == JobState::Queued {
            // Never ran: count the outcome with a zero run duration.
            crate::metrics::global().record_job_finished("cancelled", Duration::ZERO);
        }
        self.log.emit(
            EventLevel::Debug,
            "job.cancel_requested",
            &[
                ("req", F::s(&request_id)),
                ("job", F::U(id)),
                ("was", F::s(before.name())),
            ],
        );
        self.changed.notify_all();
        Some(before)
    }

    /// A copy of one job's externally visible state.
    pub fn snapshot(&self, id: u64) -> Option<JobSnapshot> {
        let inner = self.lock();
        let record = inner.jobs.get(&id)?;
        Some(JobSnapshot {
            id,
            spec: record.spec.clone(),
            state: record.state,
            request_id: record.request_id.clone(),
            error: record.error.clone(),
            cells_done: record.cells_done,
            has_report: record.report.is_some(),
            artifact_dir: record.artifact_dir.clone(),
        })
    }

    /// The rendered report bytes for a `Done` job.
    pub fn report(&self, id: u64) -> Option<Vec<u8>> {
        self.lock().jobs.get(&id)?.report.clone()
    }

    /// Copies progress events from index `from` on, waiting up to
    /// `timeout` for news when none are pending. Returns the events and
    /// whether the job has reached a terminal state. `None` for an
    /// unknown id.
    pub fn wait_events(
        &self,
        id: u64,
        from: usize,
        timeout: Duration,
    ) -> Option<(Vec<String>, bool)> {
        let mut inner = self.lock();
        inner.jobs.get(&id)?;
        loop {
            let record = inner.jobs.get(&id).expect("jobs are never removed");
            let terminal = record.state.is_terminal();
            if record.events.len() > from || terminal {
                return Some((
                    record.events[from.min(record.events.len())..].to_vec(),
                    terminal,
                ));
            }
            let (guard, wait) = self
                .changed
                .wait_timeout(inner, timeout)
                .expect("job table condvar poisoned");
            inner = guard;
            if wait.timed_out() {
                let record = inner.jobs.get(&id).expect("jobs are never removed");
                let terminal = record.state.is_terminal();
                return Some((
                    record.events[from.min(record.events.len())..].to_vec(),
                    terminal,
                ));
            }
        }
    }

    /// Aggregate counters (the soak oracle's conservation check reads
    /// these).
    pub fn stats(&self) -> Stats {
        let inner = self.lock();
        let mut stats = Stats {
            submitted: inner.submitted,
            queued: 0,
            running: 0,
            done: 0,
            failed: 0,
            cancelled: 0,
            queue_bound: self.bound,
            queue_depth_max: inner.queue_depth_max,
        };
        for record in inner.jobs.values() {
            match record.state {
                JobState::Queued => stats.queued += 1,
                JobState::Running => stats.running += 1,
                JobState::Done => stats.done += 1,
                JobState::Failed => stats.failed += 1,
                JobState::Cancelled => stats.cancelled += 1,
            }
        }
        stats
    }

    /// Stops admission and wakes every blocked worker so they can exit.
    pub fn shutdown(&self) {
        self.lock().shutdown = true;
        self.changed.notify_all();
    }

    /// Whether [`shutdown`](JobTable::shutdown) has been called.
    pub fn is_shutdown(&self) -> bool {
        self.lock().shutdown
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(scenario: &str) -> JobSpec {
        JobSpec {
            scenario: scenario.to_string(),
            smoke: true,
            ..JobSpec::default()
        }
    }

    #[test]
    fn submit_claim_finish_roundtrip() {
        let table = JobTable::new(4);
        let id = table.submit(spec("fig01_itrs")).unwrap();
        let claimed = table.claim().unwrap();
        assert_eq!(claimed.id, id);
        assert_eq!(claimed.spec.scenario, "fig01_itrs");
        assert_eq!(claimed.request_id, format!("local-{id}"));
        assert_eq!(table.snapshot(id).unwrap().state, JobState::Running);
        table.finish(id, JobOutcome::Done(b"report".to_vec(), 3));
        let snap = table.snapshot(id).unwrap();
        assert_eq!(snap.state, JobState::Done);
        assert_eq!(snap.cells_done, 3);
        assert_eq!(table.report(id).unwrap(), b"report");
    }

    #[test]
    fn queue_bound_rejects_with_queue_full() {
        let table = JobTable::new(2);
        table.submit(spec("a")).unwrap();
        table.submit(spec("b")).unwrap();
        assert_eq!(table.submit(spec("c")), Err(SubmitError::QueueFull));
        assert_eq!(table.stats().queue_depth_max, 2);
        // Draining one admits one more.
        table.claim().unwrap();
        table.submit(spec("c")).unwrap();
    }

    #[test]
    fn cancel_queued_job_never_reaches_a_worker() {
        let table = JobTable::new(4);
        let a = table.submit(spec("a")).unwrap();
        let b = table.submit(spec("b")).unwrap();
        assert_eq!(table.cancel(a), Some(JobState::Queued));
        assert_eq!(table.snapshot(a).unwrap().state, JobState::Cancelled);
        assert_eq!(
            table.claim().unwrap().id,
            b,
            "cancelled job must be skipped"
        );
    }

    #[test]
    fn cancel_running_job_raises_flag_only() {
        let table = JobTable::new(4);
        let id = table.submit(spec("a")).unwrap();
        let cancel = table.claim().unwrap().cancel;
        assert!(!cancel.load(Ordering::Relaxed));
        assert_eq!(table.cancel(id), Some(JobState::Running));
        assert!(cancel.load(Ordering::Relaxed));
        assert_eq!(table.snapshot(id).unwrap().state, JobState::Running);
        table.finish(id, JobOutcome::Cancelled(1));
        assert_eq!(table.snapshot(id).unwrap().state, JobState::Cancelled);
    }

    #[test]
    fn shutdown_unblocks_claim() {
        let table = Arc::new(JobTable::new(1));
        let t2 = Arc::clone(&table);
        let waiter = std::thread::spawn(move || t2.claim());
        std::thread::sleep(Duration::from_millis(20));
        table.shutdown();
        assert!(waiter.join().unwrap().is_none());
        assert_eq!(table.submit(spec("a")), Err(SubmitError::ShuttingDown));
    }

    #[test]
    fn events_stream_in_order_and_terminate() {
        let table = JobTable::new(4);
        let id = table.submit(spec("a")).unwrap();
        table.claim().unwrap();
        table.progress(id, format!("{{\"job\":{id},\"event\":\"shard\"}}"), 2);
        table.finish(id, JobOutcome::Done(Vec::new(), 4));
        let (events, terminal) = table.wait_events(id, 0, Duration::from_millis(10)).unwrap();
        assert!(terminal);
        assert_eq!(events.len(), 4);
        assert!(events[0].contains("queued"));
        assert!(events[1].contains("running"));
        assert!(events[2].contains("shard"));
        assert!(events[3].contains("done"));
        // Every table-emitted event carries the request id.
        for event in [&events[0], &events[1], &events[3]] {
            assert!(
                event.contains(&format!("\"req\":\"local-{id}\"")),
                "missing request id: {event}"
            );
        }
        // Streaming from an offset returns only the tail.
        let (tail, _) = table.wait_events(id, 3, Duration::from_millis(10)).unwrap();
        assert_eq!(tail.len(), 1);
    }

    #[test]
    fn spec_json_roundtrip_and_validation() {
        let spec = JobSpec::from_json_body(
            br#"{"scenario":"fig01_itrs","scale":2.5,"smoke":true,"telemetry":"jsonl","shards":3}"#,
        )
        .unwrap();
        assert_eq!(spec.scenario, "fig01_itrs");
        assert_eq!(spec.scale, 2.5);
        assert!(spec.smoke);
        assert_eq!(spec.telemetry, Mode::Jsonl);
        assert_eq!(spec.shards, 3);
        assert!(spec.checkpoints);

        assert!(JobSpec::from_json_body(b"not json").is_err());
        assert!(JobSpec::from_json_body(b"{}").is_err());
        assert!(JobSpec::from_json_body(br#"{"scenario":"x","scale":-1}"#).is_err());
        assert!(JobSpec::from_json_body(br#"{"scenario":"x","telemetry":"bogus"}"#).is_err());
        assert!(JobSpec::from_json_body(&[0xff, 0xfe]).is_err());
    }

    #[test]
    fn stats_conserve_jobs() {
        let table = JobTable::new(8);
        let a = table.submit(spec("a")).unwrap();
        let _b = table.submit(spec("b")).unwrap();
        let c = table.submit(spec("c")).unwrap();
        table.cancel(c);
        assert_eq!(table.claim().unwrap().id, a);
        table.finish(a, JobOutcome::Failed("boom".into()));
        let stats = table.stats();
        assert_eq!(stats.submitted, 3);
        assert_eq!(
            stats.queued + stats.running + stats.done + stats.failed + stats.cancelled,
            3
        );
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.cancelled, 1);
        assert_eq!(stats.queued, 1);
    }
}
