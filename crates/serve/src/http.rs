//! A hand-rolled, bounded HTTP/1.1 request parser and response writer.
//!
//! The daemon speaks just enough HTTP for its small API: one request
//! per connection, explicit `Content-Length` bodies, no chunked
//! transfer coding, no keep-alive. What it lacks in features it makes
//! up in auditability — the parser is a single pass over a byte buffer
//! with hard limits on every dimension (request-line length, header
//! count, header-line length, body size), and every malformed input
//! maps to a specific 4xx status. The protocol fuzz suite
//! (`tests/protocol.rs`) drives this module directly: for *any* byte
//! string, [`parse_request`] must return quickly with either a request,
//! `Incomplete`, or a 4xx-classed [`HttpError`] — never panic, never
//! loop.
//!
//! # Incremental parsing
//!
//! The connection loop reads chunks into a growing buffer and re-parses
//! after each read. [`Incomplete`](Parse::Incomplete) means "more bytes
//! could still complete this request"; the caller decides what an EOF
//! or a read timeout in that state means (400 and 408 respectively).
//! Limits are enforced *eagerly*: a request line that exceeds its
//! budget errors as soon as the buffer is long enough to prove the
//! violation, even though more bytes keep arriving.

use std::io::{self, Write};

/// Longest accepted request line (method + target + version).
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Longest accepted single header line.
pub const MAX_HEADER_LINE: usize = 8 * 1024;
/// Most headers accepted on one request.
pub const MAX_HEADERS: usize = 64;
/// Largest accepted request body.
pub const MAX_BODY: usize = 256 * 1024;

/// A parsed request: method, target path, headers (names lowercased),
/// and the raw body bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    pub method: String,
    pub target: String,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    /// First header with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Outcome of a parse attempt over a (possibly still-growing) buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Parse {
    /// A complete request, plus the number of buffer bytes it consumed.
    Complete(Request, usize),
    /// The buffer holds a valid prefix; more bytes could complete it.
    Incomplete,
}

/// Why a request was rejected. Every variant maps to a 4xx status:
/// client errors never take the daemon down and never hang the
/// connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Anything structurally wrong: bad request line, bad header syntax,
    /// non-ASCII where tokens are required, unsupported version or
    /// transfer coding, invalid `Content-Length`.
    BadRequest(String),
    /// Request line exceeded [`MAX_REQUEST_LINE`].
    UriTooLong,
    /// One header line exceeded [`MAX_HEADER_LINE`], or there were more
    /// than [`MAX_HEADERS`] headers.
    HeadersTooLarge,
    /// Declared `Content-Length` exceeded [`MAX_BODY`].
    BodyTooLarge(usize),
}

impl HttpError {
    /// The response status for this rejection (always 4xx).
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BadRequest(_) => 400,
            HttpError::UriTooLong => 414,
            HttpError::HeadersTooLarge => 431,
            HttpError::BodyTooLarge(_) => 413,
        }
    }

    /// Human-readable detail for the response body.
    pub fn detail(&self) -> String {
        match self {
            HttpError::BadRequest(msg) => msg.clone(),
            HttpError::UriTooLong => format!("request line exceeds {MAX_REQUEST_LINE} bytes"),
            HttpError::HeadersTooLarge => {
                format!("headers exceed {MAX_HEADERS} lines or {MAX_HEADER_LINE} bytes per line")
            }
            HttpError::BodyTooLarge(n) => format!("declared body of {n} bytes exceeds {MAX_BODY}"),
        }
    }
}

/// Finds the next line break in `buf` starting at `from`, tolerating
/// both CRLF and bare LF. Returns (line_end_exclusive, next_line_start).
fn find_line(buf: &[u8], from: usize) -> Option<(usize, usize)> {
    let nl = buf[from..].iter().position(|&b| b == b'\n')? + from;
    let end = if nl > from && buf[nl - 1] == b'\r' {
        nl - 1
    } else {
        nl
    };
    Some((end, nl + 1))
}

/// True for bytes allowed in the request line and header text: printable
/// ASCII plus horizontal tab.
fn is_line_byte(b: u8) -> bool {
    (0x20..0x7f).contains(&b) || b == b'\t'
}

fn ascii_line(bytes: &[u8], what: &str) -> Result<String, HttpError> {
    if let Some(&bad) = bytes.iter().find(|&&b| !is_line_byte(b)) {
        return Err(HttpError::BadRequest(format!(
            "{what} contains invalid byte 0x{bad:02x}"
        )));
    }
    Ok(String::from_utf8_lossy(bytes).into_owned())
}

/// Parses one HTTP/1.1 request from the front of `buf`.
///
/// Returns [`Parse::Incomplete`] when `buf` is a valid prefix of a
/// request that more bytes could complete, and an [`HttpError`] as soon
/// as the buffer *proves* the request malformed or over-limit.
///
/// # Errors
///
/// All structural violations map to 4xx via [`HttpError::status`].
pub fn parse_request(buf: &[u8]) -> Result<Parse, HttpError> {
    // Request line.
    let Some((line_end, mut pos)) = find_line(buf, 0) else {
        if buf.len() > MAX_REQUEST_LINE {
            return Err(HttpError::UriTooLong);
        }
        return Ok(Parse::Incomplete);
    };
    if line_end > MAX_REQUEST_LINE {
        return Err(HttpError::UriTooLong);
    }
    let line = ascii_line(&buf[..line_end], "request line")?;
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => {
            (m.to_string(), t.to_string(), v)
        }
        _ => {
            return Err(HttpError::BadRequest(
                "request line is not `METHOD TARGET HTTP/1.x`".into(),
            ))
        }
    };
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::BadRequest(format!(
            "method {method:?} is not an uppercase token"
        )));
    }
    if !target.starts_with('/') {
        return Err(HttpError::BadRequest(format!(
            "target {target:?} is not an absolute path"
        )));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::BadRequest(format!(
            "unsupported version {version:?}"
        )));
    }

    // Headers.
    let mut headers: Vec<(String, String)> = Vec::new();
    let body_start = loop {
        let Some((line_end, next)) = find_line(buf, pos) else {
            if buf.len() - pos > MAX_HEADER_LINE {
                return Err(HttpError::HeadersTooLarge);
            }
            return Ok(Parse::Incomplete);
        };
        if line_end - pos > MAX_HEADER_LINE {
            return Err(HttpError::HeadersTooLarge);
        }
        if line_end == pos {
            break next;
        }
        if headers.len() == MAX_HEADERS {
            return Err(HttpError::HeadersTooLarge);
        }
        let line = ascii_line(&buf[pos..line_end], "header line")?;
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest(format!(
                "header line {line:?} has no colon"
            )));
        };
        if name.is_empty() || name.contains(' ') || name.contains('\t') {
            return Err(HttpError::BadRequest(format!(
                "header name {name:?} is not a token"
            )));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        pos = next;
    };

    // Body length. Chunked (or any transfer-coding) is out of scope.
    let req = Request {
        method,
        target,
        headers,
        body: Vec::new(),
    };
    if req.header("transfer-encoding").is_some() {
        return Err(HttpError::BadRequest(
            "transfer-encoding is not supported; send content-length".into(),
        ));
    }
    let content_length = match req.header("content-length") {
        None => 0,
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) => n,
            Err(_) => {
                return Err(HttpError::BadRequest(format!(
                    "content-length {raw:?} is not a non-negative integer"
                )))
            }
        },
    };
    if content_length > MAX_BODY {
        return Err(HttpError::BodyTooLarge(content_length));
    }
    if buf.len() - body_start < content_length {
        return Ok(Parse::Incomplete);
    }
    let mut req = req;
    req.body = buf[body_start..body_start + content_length].to_vec();
    Ok(Parse::Complete(req, body_start + content_length))
}

/// Canonical reason phrase for the statuses the daemon emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        414 => "URI Too Long",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        _ => "Response",
    }
}

/// A response ready to serialize: status, extra headers, content type,
/// body bytes.
#[derive(Debug, Clone)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A plain-text response with the given status.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// The standard error envelope: a JSON body carrying the detail.
    pub fn error(status: u16, detail: &str) -> Response {
        Response::json(
            status,
            format!(
                "{{\"error\":{},\"status\":{status}}}",
                voltctl_check::json::escape(detail)
            ),
        )
    }

    /// Serializes head + body to `w`.
    ///
    /// # Errors
    ///
    /// Propagates socket write errors (the caller drops the connection).
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        w.write_all(head.as_bytes())?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(raw: &[u8]) -> Request {
        match parse_request(raw) {
            Ok(Parse::Complete(req, consumed)) => {
                assert_eq!(consumed, raw.len());
                req
            }
            other => panic!("expected complete request, got {other:?}"),
        }
    }

    #[test]
    fn parses_get_with_headers() {
        let req = complete(b"GET /jobs/7 HTTP/1.1\r\nHost: x\r\nAccept: */*\r\n\r\n");
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/jobs/7");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("ACCEPT"), Some("*/*"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_with_body_and_reports_consumed() {
        let raw = b"POST /jobs HTTP/1.1\r\ncontent-length: 4\r\n\r\nabcd";
        let req = complete(raw);
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn bare_lf_line_endings_are_tolerated() {
        let req = complete(b"GET /healthz HTTP/1.1\nhost: y\n\n");
        assert_eq!(req.target, "/healthz");
        assert_eq!(req.header("host"), Some("y"));
    }

    #[test]
    fn prefixes_are_incomplete_not_errors() {
        let raw = b"POST /jobs HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc";
        for cut in 0..raw.len() {
            assert_eq!(
                parse_request(&raw[..cut]),
                Ok(Parse::Incomplete),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn oversized_request_line_is_414() {
        let raw = vec![b'A'; MAX_REQUEST_LINE + 1];
        assert_eq!(parse_request(&raw), Err(HttpError::UriTooLong));
    }

    #[test]
    fn oversized_declared_body_is_413() {
        let raw = format!(
            "POST /jobs HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        match parse_request(raw.as_bytes()) {
            Err(e @ HttpError::BodyTooLarge(_)) => assert_eq!(e.status(), 413),
            other => panic!("expected 413, got {other:?}"),
        }
    }

    #[test]
    fn malformed_request_lines_are_400() {
        for raw in [
            &b"\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET /x\r\n\r\n",
            b"get /x HTTP/1.1\r\n\r\n",
            b"GET x HTTP/1.1\r\n\r\n",
            b"GET /x HTTP/2\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
        ] {
            match parse_request(raw) {
                Err(e) => assert_eq!(e.status(), 400, "raw {raw:?}"),
                other => panic!("expected 400 for {raw:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn header_without_colon_is_400() {
        let raw = b"GET /x HTTP/1.1\r\nnocolonhere\r\n\r\n";
        assert_eq!(parse_request(raw).unwrap_err().status(), 400);
    }

    #[test]
    fn too_many_headers_is_431() {
        let mut raw = String::from("GET /x HTTP/1.1\r\n");
        for i in 0..=MAX_HEADERS {
            raw.push_str(&format!("h{i}: v\r\n"));
        }
        raw.push_str("\r\n");
        assert_eq!(
            parse_request(raw.as_bytes()),
            Err(HttpError::HeadersTooLarge)
        );
    }

    #[test]
    fn response_serializes_with_length_and_close() {
        let mut out = Vec::new();
        let mut resp = Response::json(429, "{}".into());
        resp.headers.push(("retry-after".into(), "1".into()));
        resp.write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
