//! A minimal blocking HTTP/1.1 client for the daemon's own API.
//!
//! One request per connection, mirroring the server's
//! `connection: close` contract: connect, write, read to EOF, parse.
//! Used by the `bench` load generator and the soak/protocol test
//! harnesses — not a general-purpose client.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response: status code, headers (names lowercased), body.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// First header with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy — diagnostics only).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Performs one request and reads the full response (the server closes
/// the connection to delimit it, including for JSONL streams).
///
/// # Errors
///
/// Propagates connect/read/write errors and malformed response heads.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> io::Result<HttpResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    // Generous ceiling so a wedged server fails the test instead of
    // hanging it; streams idle far less than this between events.
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    let body = body.unwrap_or(&[]);
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: voltctl\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut raw = Vec::with_capacity(1024);
    let mut chunk = [0u8; 8192];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => raw.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(e),
        }
    }
    parse_response(&raw)
}

fn bad(reason: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, reason.to_string())
}

fn parse_response(raw: &[u8]) -> io::Result<HttpResponse> {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("response has no header terminator"))?;
    let head = std::str::from_utf8(&raw[..head_end]).map_err(|_| bad("head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| bad("empty response"))?;
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let headers = lines
        .filter_map(|line| {
            let (name, value) = line.split_once(':')?;
            Some((name.trim().to_ascii_lowercase(), value.trim().to_string()))
        })
        .collect();
    Ok(HttpResponse {
        status,
        headers,
        body: raw[head_end + 4..].to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_response_with_headers_and_body() {
        let raw = b"HTTP/1.1 202 Accepted\r\ncontent-type: application/json\r\n\r\n{\"id\":1}";
        let resp = parse_response(raw).unwrap();
        assert_eq!(resp.status, 202);
        assert_eq!(resp.header("Content-Type"), Some("application/json"));
        assert_eq!(resp.body, b"{\"id\":1}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http at all").is_err());
        assert!(parse_response(b"HTTP/1.1 nope\r\n\r\n").is_err());
    }
}
