//! TCP accept loop, request routing, and the daemon's HTTP API.
//!
//! One thread accepts connections; each connection gets a short-lived
//! handler thread (one request per connection, `connection: close`).
//! Workers run jobs from the shared [`JobTable`]. The API:
//!
//! | Method | Path | Meaning |
//! |---|---|---|
//! | GET | `/healthz` | liveness probe |
//! | GET | `/scenarios` | registry listing (id, runtime, cells, trace, title) |
//! | GET | `/stats` | queue/state counters |
//! | POST | `/jobs` | submit (JSON spec body) — 202, or 429 + `Retry-After` |
//! | GET | `/jobs/<id>` | job status |
//! | GET | `/jobs/<id>/report` | rendered report, byte-identical to the CLI |
//! | GET | `/jobs/<id>/stream` | JSONL progress events until terminal |
//! | GET | `/jobs/<id>/artifacts` | artifact file listing |
//! | GET | `/jobs/<id>/artifacts/<name>` | one artifact's bytes |
//! | DELETE | `/jobs/<id>` | cooperative cancel |
//! | POST | `/shutdown` | stop accepting, drain workers, exit |
//!
//! Read timeouts bound slowloris-style clients: a connection that goes
//! quiet mid-request gets a 408 and is dropped; it can never wedge the
//! daemon (the protocol fuzz suite pins this).

use crate::http::{parse_request, Parse, Request, Response};
use crate::job::{JobSpec, JobTable, SubmitError};
use crate::runner::{worker_loop, RunnerConfig};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use voltctl_check::json::escape;
use voltctl_exp::{find, listing, Ctx};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7643`. Port 0 picks a free port.
    pub addr: String,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Queued-job bound; submissions beyond it get 429.
    pub queue_bound: usize,
    /// State root for artifacts and checkpoints.
    pub root: PathBuf,
    /// Per-connection socket read timeout.
    pub read_timeout: Duration,
    /// Default checkpoint shard count for specs that leave it unset.
    pub default_shards: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:7643".to_string(),
            workers: 2,
            queue_bound: 64,
            root: std::env::temp_dir().join("voltctl-serve"),
            read_timeout: Duration::from_secs(5),
            default_shards: 4,
        }
    }
}

/// A running daemon: its bound address plus the handles needed to stop
/// it and join its threads.
#[derive(Debug)]
pub struct ServerHandle {
    /// The actual bound address (resolves port 0).
    pub addr: SocketAddr,
    table: Arc<JobTable>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The shared job table (tests observe stats through it).
    pub fn table(&self) -> &Arc<JobTable> {
        &self.table
    }

    /// True once `POST /shutdown` (or [`stop`](ServerHandle::stop)) has
    /// been seen.
    pub fn is_stopping(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    /// Requests shutdown without waiting.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
        self.table.shutdown();
    }

    /// Stops the daemon and joins every thread. In-flight jobs finish;
    /// queued jobs are still claimed and run before workers exit only
    /// if already popped — the queue itself is drained by shutdown
    /// semantics in [`JobTable::claim`] (remaining queued jobs are
    /// claimed until the queue is empty, then workers exit).
    pub fn join(mut self) {
        self.stop();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Binds, spawns the accept loop and `workers` worker threads, and
/// returns immediately.
///
/// # Errors
///
/// Propagates bind failures.
pub fn spawn(cfg: ServeConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    std::fs::create_dir_all(&cfg.root)?;

    let table = Arc::new(JobTable::new(cfg.queue_bound));
    let stop = Arc::new(AtomicBool::new(false));
    let runner_cfg = Arc::new(RunnerConfig {
        root: cfg.root.clone(),
        default_shards: cfg.default_shards.max(1),
    });

    let workers = (0..cfg.workers.max(1))
        .map(|_| {
            let table = Arc::clone(&table);
            let runner_cfg = Arc::clone(&runner_cfg);
            std::thread::spawn(move || worker_loop(table, runner_cfg))
        })
        .collect();

    let accept = {
        let table = Arc::clone(&table);
        let stop = Arc::clone(&stop);
        let read_timeout = cfg.read_timeout;
        std::thread::spawn(move || {
            accept_loop(listener, table, stop, read_timeout);
        })
    };

    Ok(ServerHandle {
        addr,
        table,
        stop,
        accept: Some(accept),
        workers,
    })
}

fn accept_loop(
    listener: TcpListener,
    table: Arc<JobTable>,
    stop: Arc<AtomicBool>,
    read_timeout: Duration,
) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let table = Arc::clone(&table);
                let stop = Arc::clone(&stop);
                handlers.push(std::thread::spawn(move || {
                    handle_connection(stream, &table, &stop, read_timeout);
                }));
                handlers.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                // 1ms poll: bounds per-connection accept latency well
                // below any real job's runtime while still noticing the
                // stop flag promptly.
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
    for handler in handlers {
        let _ = handler.join();
    }
}

/// Reads one request (incrementally, bounded, with timeout), routes it,
/// writes one response, closes.
fn handle_connection(
    mut stream: TcpStream,
    table: &Arc<JobTable>,
    stop: &Arc<AtomicBool>,
    read_timeout: Duration,
) {
    let _ = stream.set_read_timeout(Some(read_timeout));
    let _ = stream.set_nodelay(true);
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let request = loop {
        match parse_request(&buf) {
            Ok(Parse::Complete(req, _consumed)) => break req,
            Ok(Parse::Incomplete) => {}
            Err(e) => {
                let _ = Response::error(e.status(), &e.detail()).write_to(&mut stream);
                return;
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                if !buf.is_empty() {
                    let _ =
                        Response::error(400, "connection closed mid-request").write_to(&mut stream);
                }
                return;
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                let _ = Response::error(408, "request not completed in time").write_to(&mut stream);
                return;
            }
            Err(_) => return,
        }
    };
    route(&request, &mut stream, table, stop);
}

/// Splits `/jobs/<id>[/rest]` into the id and the remaining path.
fn job_path(target: &str) -> Option<(u64, &str)> {
    let rest = target.strip_prefix("/jobs/")?;
    let (id, tail) = match rest.split_once('/') {
        Some((id, tail)) => (id, tail),
        None => (rest, ""),
    };
    id.parse().ok().map(|id| (id, tail))
}

fn route(req: &Request, stream: &mut TcpStream, table: &Arc<JobTable>, stop: &Arc<AtomicBool>) {
    let response = match (req.method.as_str(), req.target.as_str()) {
        ("GET", "/healthz") => Response::text(200, "ok\n"),
        ("GET", "/scenarios") => scenarios_response(),
        ("GET", "/stats") => Response::json(200, table.stats().to_json()),
        ("POST", "/jobs") => submit(req, table),
        ("POST", "/shutdown") => {
            stop.store(true, Ordering::Relaxed);
            table.shutdown();
            Response::json(200, "{\"shutdown\":true}".into())
        }
        (method, target) if target.starts_with("/jobs/") => {
            let Some((id, tail)) = job_path(target) else {
                return finish(stream, Response::error(400, "job id is not an integer"));
            };
            match (method, tail) {
                ("GET", "") => match table.snapshot(id) {
                    Some(snap) => Response::json(200, snap.to_json()),
                    None => Response::error(404, "no such job"),
                },
                ("DELETE", "") => match table.cancel(id) {
                    Some(before) => Response::json(
                        200,
                        format!("{{\"id\":{id},\"was\":\"{}\"}}", before.name()),
                    ),
                    None => Response::error(404, "no such job"),
                },
                ("GET", "report") => match table.snapshot(id) {
                    None => Response::error(404, "no such job"),
                    Some(snap) => match table.report(id) {
                        Some(report) => Response {
                            status: 200,
                            content_type: "text/plain; charset=utf-8",
                            headers: Vec::new(),
                            body: report,
                        },
                        None => Response::error(
                            409,
                            &format!("job is {}, report not available", snap.state.name()),
                        ),
                    },
                },
                ("GET", "stream") => return stream_events(stream, table, id),
                ("GET", "artifacts") => artifact_listing(table, id),
                ("GET", name) if name.starts_with("artifacts/") => {
                    artifact_body(table, id, &name["artifacts/".len()..])
                }
                ("GET" | "DELETE", _) => Response::error(404, "no such endpoint"),
                _ => Response::error(405, "method not allowed"),
            }
        }
        ("GET" | "POST" | "DELETE" | "HEAD" | "PUT" | "PATCH" | "OPTIONS", _) => {
            Response::error(404, "no such endpoint")
        }
        _ => Response::error(405, "method not allowed"),
    };
    finish(stream, response);
}

fn finish(stream: &mut TcpStream, response: Response) {
    let _ = response.write_to(stream);
}

fn scenarios_response() -> Response {
    let rows = listing(&Ctx::default());
    let mut body = String::from("{\"scenarios\":[");
    for (i, [id, runtime, cells, trace, title]) in rows.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "{{\"id\":{},\"runtime\":{},\"cells\":{},\"trace\":{},\"title\":{}}}",
            escape(id),
            escape(runtime),
            cells,
            trace == "yes",
            escape(title)
        ));
    }
    body.push_str("]}");
    Response::json(200, body)
}

fn submit(req: &Request, table: &Arc<JobTable>) -> Response {
    let spec = match JobSpec::from_json_body(&req.body) {
        Ok(spec) => spec,
        Err(reason) => return Response::error(400, &reason),
    };
    if find(&spec.scenario).is_none() {
        return Response::error(
            400,
            &format!(
                "unknown scenario {:?}; GET /scenarios lists valid ids",
                spec.scenario
            ),
        );
    }
    match table.submit(spec) {
        Ok(id) => Response::json(202, format!("{{\"id\":{id},\"state\":\"queued\"}}")),
        Err(SubmitError::QueueFull) => {
            let mut resp = Response::error(429, "job queue is full; retry later");
            resp.headers.push(("retry-after".into(), "1".into()));
            resp
        }
        Err(SubmitError::ShuttingDown) => Response::error(409, "daemon is shutting down"),
    }
}

/// Streams JSONL progress events until the job is terminal and all
/// events are flushed. The response has no `content-length`; the
/// connection close delimits the stream (`connection: close` is already
/// the daemon-wide contract).
fn stream_events(stream: &mut TcpStream, table: &Arc<JobTable>, id: u64) {
    if table.snapshot(id).is_none() {
        return finish(stream, Response::error(404, "no such job"));
    }
    let head = "HTTP/1.1 200 OK\r\ncontent-type: application/jsonl\r\nconnection: close\r\n\r\n";
    if stream.write_all(head.as_bytes()).is_err() {
        return;
    }
    let mut from = 0;
    loop {
        let Some((events, terminal)) = table.wait_events(id, from, Duration::from_millis(250))
        else {
            return;
        };
        for event in &events {
            if stream
                .write_all(event.as_bytes())
                .and_then(|()| stream.write_all(b"\n"))
                .is_err()
            {
                return; // Client went away; the job keeps running.
            }
        }
        let _ = stream.flush();
        from += events.len();
        if terminal {
            return;
        }
    }
}

fn artifact_listing(table: &Arc<JobTable>, id: u64) -> Response {
    let Some(snap) = table.snapshot(id) else {
        return Response::error(404, "no such job");
    };
    let mut names: Vec<String> = Vec::new();
    if let Some(dir) = snap.artifact_dir {
        if let Ok(entries) = std::fs::read_dir(dir) {
            for entry in entries.flatten() {
                if entry.file_type().map(|t| t.is_file()).unwrap_or(false) {
                    names.push(entry.file_name().to_string_lossy().into_owned());
                }
            }
        }
    }
    names.sort();
    let listed: Vec<String> = names.iter().map(|n| escape(n)).collect();
    Response::json(
        200,
        format!("{{\"id\":{id},\"artifacts\":[{}]}}", listed.join(",")),
    )
}

fn artifact_body(table: &Arc<JobTable>, id: u64, name: &str) -> Response {
    if name.is_empty() || name.contains('/') || name.contains('\\') || name.contains("..") {
        return Response::error(400, "artifact name must be a plain file name");
    }
    let Some(snap) = table.snapshot(id) else {
        return Response::error(404, "no such job");
    };
    let Some(dir) = snap.artifact_dir else {
        return Response::error(404, "job has no artifacts yet");
    };
    match std::fs::read(dir.join(name)) {
        Ok(bytes) => Response {
            status: 200,
            content_type: "application/octet-stream",
            headers: Vec::new(),
            body: bytes,
        },
        Err(_) => Response::error(404, "no such artifact"),
    }
}
