//! TCP accept loop, request routing, and the daemon's HTTP API.
//!
//! One thread accepts connections; each connection gets a short-lived
//! handler thread (one request per connection, `connection: close`).
//! Workers run jobs from the shared [`JobTable`]. The API:
//!
//! | Method | Path | Meaning |
//! |---|---|---|
//! | GET | `/healthz` | liveness probe |
//! | GET | `/scenarios` | registry listing (id, runtime, cells, trace, title) |
//! | GET | `/stats` | queue/state counters |
//! | POST | `/jobs` | submit (JSON spec body) — 202, or 429 + `Retry-After` |
//! | GET | `/jobs/<id>` | job status |
//! | GET | `/jobs/<id>/report` | rendered report, byte-identical to the CLI |
//! | GET | `/jobs/<id>/stream` | JSONL progress events until terminal |
//! | GET | `/jobs/<id>/artifacts` | artifact file listing |
//! | GET | `/jobs/<id>/artifacts/<name>` | one artifact's bytes |
//! | DELETE | `/jobs/<id>` | cooperative cancel |
//! | POST | `/shutdown` | stop accepting, drain workers, exit |
//!
//! Read timeouts bound slowloris-style clients: a connection that goes
//! quiet mid-request gets a 408 and is dropped; it can never wedge the
//! daemon (the protocol fuzz suite pins this).
//!
//! # Observability
//!
//! Every connection is assigned a request id (`r1`, `r2`, …) at accept.
//! The id is threaded through the job table into every event a job
//! emits, recorded per-request into the metrics plane (latency by
//! normalized route, counts by route and status), and logged to the
//! structured event log at `<root>/events.jsonl`. `GET /metrics`
//! exposes the whole plane in Prometheus text format; `GET
//! /stats?verbose=1` is a JSON superset of the original `/stats` body.

use crate::event::{EventLevel, EventLog, F};
use crate::http::{parse_request, Parse, Request, Response};
use crate::job::{JobSpec, JobTable, SubmitError};
use crate::runner::{worker_loop, RunnerConfig};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use voltctl_check::json::escape;
use voltctl_exp::{find, listing, Ctx};

/// Process-wide request id counter: ids stay unique even when tests run
/// several daemons in one process.
static NEXT_REQUEST_ID: AtomicU64 = AtomicU64::new(1);

fn next_request_id() -> String {
    format!("r{}", NEXT_REQUEST_ID.fetch_add(1, Ordering::Relaxed))
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7643`. Port 0 picks a free port.
    pub addr: String,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Queued-job bound; submissions beyond it get 429.
    pub queue_bound: usize,
    /// State root for artifacts and checkpoints.
    pub root: PathBuf,
    /// Per-connection socket read timeout.
    pub read_timeout: Duration,
    /// Default checkpoint shard count for specs that leave it unset.
    pub default_shards: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:7643".to_string(),
            workers: 2,
            queue_bound: 64,
            root: std::env::temp_dir().join("voltctl-serve"),
            read_timeout: Duration::from_secs(5),
            default_shards: 4,
        }
    }
}

/// A running daemon: its bound address plus the handles needed to stop
/// it and join its threads.
#[derive(Debug)]
pub struct ServerHandle {
    /// The actual bound address (resolves port 0).
    pub addr: SocketAddr,
    table: Arc<JobTable>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The shared job table (tests observe stats through it).
    pub fn table(&self) -> &Arc<JobTable> {
        &self.table
    }

    /// The daemon's structured event log (file sink at
    /// `<root>/events.jsonl` when it could be opened).
    pub fn log(&self) -> &Arc<EventLog> {
        self.table.log()
    }

    /// True once `POST /shutdown` (or [`stop`](ServerHandle::stop)) has
    /// been seen.
    pub fn is_stopping(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    /// Requests shutdown without waiting.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
        self.table.shutdown();
    }

    /// Stops the daemon and joins every thread. In-flight jobs finish;
    /// queued jobs are still claimed and run before workers exit only
    /// if already popped — the queue itself is drained by shutdown
    /// semantics in [`JobTable::claim`] (remaining queued jobs are
    /// claimed until the queue is empty, then workers exit).
    pub fn join(mut self) {
        self.stop();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.table
            .log()
            .emit(EventLevel::Info, "daemon.stopped", &[]);
    }
}

/// Binds, spawns the accept loop and `workers` worker threads, and
/// returns immediately.
///
/// # Errors
///
/// Propagates bind failures.
pub fn spawn(cfg: ServeConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    std::fs::create_dir_all(&cfg.root)?;

    let log = Arc::new(EventLog::open(&cfg.root));
    let table = Arc::new(JobTable::with_log(cfg.queue_bound, Arc::clone(&log)));
    let stop = Arc::new(AtomicBool::new(false));
    crate::metrics::global()
        .workers
        .set(cfg.workers.max(1) as i64);
    log.emit(
        EventLevel::Info,
        "daemon.listening",
        &[
            ("addr", F::s(addr.to_string())),
            ("workers", F::U(cfg.workers.max(1) as u64)),
            ("queue_bound", F::U(cfg.queue_bound as u64)),
            ("root", F::s(cfg.root.display().to_string())),
        ],
    );
    let runner_cfg = Arc::new(RunnerConfig {
        root: cfg.root.clone(),
        default_shards: cfg.default_shards.max(1),
    });

    let workers = (0..cfg.workers.max(1))
        .map(|_| {
            let table = Arc::clone(&table);
            let runner_cfg = Arc::clone(&runner_cfg);
            std::thread::spawn(move || worker_loop(table, runner_cfg))
        })
        .collect();

    let accept = {
        let table = Arc::clone(&table);
        let stop = Arc::clone(&stop);
        let read_timeout = cfg.read_timeout;
        std::thread::spawn(move || {
            accept_loop(listener, table, stop, read_timeout);
        })
    };

    Ok(ServerHandle {
        addr,
        table,
        stop,
        accept: Some(accept),
        workers,
    })
}

fn accept_loop(
    listener: TcpListener,
    table: Arc<JobTable>,
    stop: Arc<AtomicBool>,
    read_timeout: Duration,
) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let table = Arc::clone(&table);
                let stop = Arc::clone(&stop);
                handlers.push(std::thread::spawn(move || {
                    handle_connection(stream, &table, &stop, read_timeout);
                }));
                handlers.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                // 1ms poll: bounds per-connection accept latency well
                // below any real job's runtime while still noticing the
                // stop flag promptly.
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
    for handler in handlers {
        let _ = handler.join();
    }
}

/// Reads one request (incrementally, bounded, with timeout), routes it,
/// writes one response, closes. Every outcome — including parse errors
/// and timeouts — lands in the request metrics and the event log.
fn handle_connection(
    mut stream: TcpStream,
    table: &Arc<JobTable>,
    stop: &Arc<AtomicBool>,
    read_timeout: Duration,
) {
    let started = Instant::now();
    let request_id = next_request_id();
    let _ = stream.set_read_timeout(Some(read_timeout));
    let _ = stream.set_nodelay(true);
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let request = loop {
        match parse_request(&buf) {
            Ok(Parse::Complete(req, _consumed)) => break req,
            Ok(Parse::Incomplete) => {}
            Err(e) => {
                let _ = Response::error(e.status(), &e.detail()).write_to(&mut stream);
                return record_request(table, &request_id, "-", "other", e.status(), started);
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                if !buf.is_empty() {
                    let _ =
                        Response::error(400, "connection closed mid-request").write_to(&mut stream);
                    record_request(table, &request_id, "-", "other", 400, started);
                }
                return;
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                let _ = Response::error(408, "request not completed in time").write_to(&mut stream);
                return record_request(table, &request_id, "-", "other", 408, started);
            }
            Err(_) => return,
        }
    };
    let route_name = crate::metrics::route_label(&request.target);
    let status = route(&request, &mut stream, table, stop, &request_id);
    record_request(
        table,
        &request_id,
        &request.method,
        route_name,
        status,
        started,
    );
}

/// One stop for the per-request boundary instrumentation: the
/// (route, status) counter, the latency histogram, and the `Debug`
/// event-log line carrying the request id.
fn record_request(
    table: &Arc<JobTable>,
    request_id: &str,
    method: &str,
    route: &'static str,
    status: u16,
    started: Instant,
) {
    let elapsed = started.elapsed();
    crate::metrics::global().record_request(route, status, elapsed);
    table.log().emit(
        EventLevel::Debug,
        "http.request",
        &[
            ("req", F::s(request_id)),
            ("method", F::s(method)),
            ("route", F::s(route)),
            ("status", F::U(status as u64)),
            ("duration_ns", F::U(elapsed.as_nanos() as u64)),
        ],
    );
}

/// Splits `/jobs/<id>[/rest]` into the id and the remaining path.
fn job_path(target: &str) -> Option<(u64, &str)> {
    let rest = target.strip_prefix("/jobs/")?;
    let (id, tail) = match rest.split_once('/') {
        Some((id, tail)) => (id, tail),
        None => (rest, ""),
    };
    id.parse().ok().map(|id| (id, tail))
}

/// Routes one parsed request, writes the response, and returns the
/// status code that went over the wire.
fn route(
    req: &Request,
    stream: &mut TcpStream,
    table: &Arc<JobTable>,
    stop: &Arc<AtomicBool>,
    request_id: &str,
) -> u16 {
    let (path, query) = match req.target.split_once('?') {
        Some((path, query)) => (path, query),
        None => (req.target.as_str(), ""),
    };
    let response = match (req.method.as_str(), path) {
        ("GET", "/healthz") => Response::text(200, "ok\n"),
        ("GET", "/scenarios") => scenarios_response(),
        ("GET", "/stats") => stats_response(table, query),
        ("GET", "/metrics") => metrics_response(table),
        ("POST", "/jobs") => submit(req, table, request_id),
        ("POST", "/shutdown") => {
            stop.store(true, Ordering::Relaxed);
            table.shutdown();
            table.log().emit(
                EventLevel::Info,
                "daemon.shutdown_requested",
                &[("req", F::s(request_id))],
            );
            Response::json(200, "{\"shutdown\":true}".into())
        }
        (method, target) if target.starts_with("/jobs/") => {
            let Some((id, tail)) = job_path(target) else {
                return finish(stream, Response::error(400, "job id is not an integer"));
            };
            match (method, tail) {
                ("GET", "") => match table.snapshot(id) {
                    Some(snap) => Response::json(200, snap.to_json()),
                    None => Response::error(404, "no such job"),
                },
                ("DELETE", "") => match table.cancel(id) {
                    Some(before) => Response::json(
                        200,
                        format!("{{\"id\":{id},\"was\":\"{}\"}}", before.name()),
                    ),
                    None => Response::error(404, "no such job"),
                },
                ("GET", "report") => match table.snapshot(id) {
                    None => Response::error(404, "no such job"),
                    Some(snap) => match table.report(id) {
                        Some(report) => Response {
                            status: 200,
                            content_type: "text/plain; charset=utf-8",
                            headers: Vec::new(),
                            body: report,
                        },
                        None => Response::error(
                            409,
                            &format!("job is {}, report not available", snap.state.name()),
                        ),
                    },
                },
                ("GET", "stream") => return stream_events(stream, table, id),
                ("GET", "artifacts") => artifact_listing(table, id),
                ("GET", name) if name.starts_with("artifacts/") => {
                    artifact_body(table, id, &name["artifacts/".len()..])
                }
                ("GET" | "DELETE", _) => Response::error(404, "no such endpoint"),
                _ => Response::error(405, "method not allowed"),
            }
        }
        ("GET" | "POST" | "DELETE" | "HEAD" | "PUT" | "PATCH" | "OPTIONS", _) => {
            Response::error(404, "no such endpoint")
        }
        _ => Response::error(405, "method not allowed"),
    };
    finish(stream, response)
}

fn finish(stream: &mut TcpStream, response: Response) -> u16 {
    let status = response.status;
    let _ = response.write_to(stream);
    status
}

fn scenarios_response() -> Response {
    let rows = listing(&Ctx::default());
    let mut body = String::from("{\"scenarios\":[");
    for (i, [id, runtime, cells, trace, title]) in rows.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "{{\"id\":{},\"runtime\":{},\"cells\":{},\"trace\":{},\"title\":{}}}",
            escape(id),
            escape(runtime),
            cells,
            trace == "yes",
            escape(title)
        ));
    }
    body.push_str("]}");
    Response::json(200, body)
}

/// `GET /stats`: the original compact body, or — with `verbose=1` in
/// the query — a superset that starts with the same fields byte-for-
/// byte and appends worker, cache, and event-log detail.
fn stats_response(table: &Arc<JobTable>, query: &str) -> Response {
    let base = table.stats().to_json();
    let verbose = query.split('&').any(|kv| kv == "verbose=1");
    if !verbose {
        return Response::json(200, base);
    }
    let metrics = crate::metrics::global();
    let kernel = voltctl_pdn::kernel_cache_stats();
    let solve = voltctl_exp::solve_cache_stats();
    let cache_json = |s: &voltctl_pdn::CacheStats| {
        format!(
            "{{\"hits\":{},\"misses\":{},\"evictions\":{},\"len\":{},\"capacity\":{}}}",
            s.hits, s.misses, s.evictions, s.len, s.capacity
        )
    };
    let log_path = match table.log().path() {
        Some(p) => escape(&p.display().to_string()),
        None => "null".to_string(),
    };
    let mut body = base;
    body.pop(); // replace the closing brace with the verbose tail
    body.push_str(&format!(
        ",\"workers\":{},\"workers_busy\":{},\"caches\":{{\"kernel\":{},\"solve\":{}}},\
         \"event_log\":{}}}",
        metrics.workers.get(),
        metrics.workers_busy.get(),
        cache_json(&kernel),
        cache_json(&solve),
        log_path
    ));
    Response::json(200, body)
}

/// `GET /metrics`: the full plane in Prometheus text exposition format.
fn metrics_response(table: &Arc<JobTable>) -> Response {
    Response {
        status: 200,
        content_type: "text/plain; version=0.0.4; charset=utf-8",
        headers: Vec::new(),
        body: crate::metrics::render_metrics(&table.stats()).into_bytes(),
    }
}

fn submit(req: &Request, table: &Arc<JobTable>, request_id: &str) -> Response {
    let spec = match JobSpec::from_json_body(&req.body) {
        Ok(spec) => spec,
        Err(reason) => return Response::error(400, &reason),
    };
    if find(&spec.scenario).is_none() {
        return Response::error(
            400,
            &format!(
                "unknown scenario {:?}; GET /scenarios lists valid ids",
                spec.scenario
            ),
        );
    }
    match table.submit_with_request(spec, Some(request_id)) {
        Ok(id) => Response::json(202, format!("{{\"id\":{id},\"state\":\"queued\"}}")),
        Err(SubmitError::QueueFull) => {
            let mut resp = Response::error(429, "job queue is full; retry later");
            resp.headers.push(("retry-after".into(), "1".into()));
            resp
        }
        Err(SubmitError::ShuttingDown) => Response::error(409, "daemon is shutting down"),
    }
}

/// Streams JSONL progress events until the job is terminal and all
/// events are flushed. The response has no `content-length`; the
/// connection close delimits the stream (`connection: close` is already
/// the daemon-wide contract).
fn stream_events(stream: &mut TcpStream, table: &Arc<JobTable>, id: u64) -> u16 {
    if table.snapshot(id).is_none() {
        return finish(stream, Response::error(404, "no such job"));
    }
    let head = "HTTP/1.1 200 OK\r\ncontent-type: application/jsonl\r\nconnection: close\r\n\r\n";
    if stream.write_all(head.as_bytes()).is_err() {
        return 200;
    }
    let mut from = 0;
    loop {
        let Some((events, terminal)) = table.wait_events(id, from, Duration::from_millis(250))
        else {
            return 200;
        };
        for event in &events {
            if stream
                .write_all(event.as_bytes())
                .and_then(|()| stream.write_all(b"\n"))
                .is_err()
            {
                return 200; // Client went away; the job keeps running.
            }
        }
        let _ = stream.flush();
        from += events.len();
        if terminal {
            return 200;
        }
    }
}

fn artifact_listing(table: &Arc<JobTable>, id: u64) -> Response {
    let Some(snap) = table.snapshot(id) else {
        return Response::error(404, "no such job");
    };
    let mut names: Vec<String> = Vec::new();
    if let Some(dir) = snap.artifact_dir {
        if let Ok(entries) = std::fs::read_dir(dir) {
            for entry in entries.flatten() {
                if entry.file_type().map(|t| t.is_file()).unwrap_or(false) {
                    names.push(entry.file_name().to_string_lossy().into_owned());
                }
            }
        }
    }
    names.sort();
    let listed: Vec<String> = names.iter().map(|n| escape(n)).collect();
    Response::json(
        200,
        format!("{{\"id\":{id},\"artifacts\":[{}]}}", listed.join(",")),
    )
}

fn artifact_body(table: &Arc<JobTable>, id: u64, name: &str) -> Response {
    if name.is_empty() || name.contains('/') || name.contains('\\') || name.contains("..") {
        return Response::error(400, "artifact name must be a plain file name");
    }
    let Some(snap) = table.snapshot(id) else {
        return Response::error(404, "no such job");
    };
    let Some(dir) = snap.artifact_dir else {
        return Response::error(404, "job has no artifacts yet");
    };
    match std::fs::read(dir.join(name)) {
        Ok(bytes) => Response {
            status: 200,
            content_type: "application/octet-stream",
            headers: Vec::new(),
            body: bytes,
        },
        Err(_) => Response::error(404, "no such artifact"),
    }
}
