//! The daemon's live metrics plane: registry handles, route
//! normalization, and the `GET /metrics` exposition assembly.
//!
//! Two kinds of series end up in the exposition:
//!
//! * **Accumulated** — counters and histograms updated as requests and
//!   jobs flow (`voltctl_http_*`, queue-wait / run-duration histograms,
//!   worker gauges). These live in the process-wide
//!   [`Registry`](voltctl_telemetry::registry::Registry); handles are
//!   resolved at request/shard boundaries, never inside the simulation
//!   hot path — the bench ratio gate (`serve_vs_batch_ratio ≥ 0.9`)
//!   pins that the instrumentation stays out of the measured loops.
//! * **Scrape-derived** — values that already have a single source of
//!   truth and are merely *read* at scrape time: queue depth and job
//!   state counts from the [`JobTable`](crate::job::JobTable), and
//!   hit/miss/eviction stats from the two process-wide caches (the
//!   `voltctl-pdn` kernel cache and the `voltctl-exp` threshold-solve
//!   memo). Deriving them at scrape keeps the job table the sole owner
//!   of queue accounting (no drift between `/stats` and `/metrics`).
//!
//! Label cardinality is bounded by construction: routes are normalized
//! to the fixed template set in [`route_label`] before labeling, status
//! codes come from the daemon's finite status vocabulary, and cache /
//! state labels are compile-time constants. CI gates on the total
//! series count staying small.

use crate::job::Stats;
use std::sync::Arc;
use std::sync::OnceLock;
use std::time::Duration;
use voltctl_pdn::CacheStats;
use voltctl_telemetry::registry::{Gauge, Histogram, Registry};

/// Every metric family `GET /metrics` declares, in exposition order.
/// The integration test and the CI smoke gate assert each is present.
pub const DECLARED_FAMILIES: &[&str] = &[
    "voltctl_cache_capacity",
    "voltctl_cache_entries",
    "voltctl_cache_evictions_total",
    "voltctl_cache_hits_total",
    "voltctl_cache_misses_total",
    "voltctl_http_request_duration_ns",
    "voltctl_http_requests_total",
    "voltctl_serve_job_run_ns",
    "voltctl_serve_jobs",
    "voltctl_serve_jobs_finished_total",
    "voltctl_serve_jobs_submitted_total",
    "voltctl_serve_queue_bound",
    "voltctl_serve_queue_depth",
    "voltctl_serve_queue_depth_max",
    "voltctl_serve_queue_wait_ns",
    "voltctl_serve_workers",
    "voltctl_serve_workers_busy",
];

/// Normalizes a request target to one of a fixed set of route
/// templates, so route labels cannot grow with client-chosen ids or
/// artifact names.
pub fn route_label(target: &str) -> &'static str {
    let path = target.split('?').next().unwrap_or(target);
    match path {
        "/healthz" => "/healthz",
        "/scenarios" => "/scenarios",
        "/stats" => "/stats",
        "/metrics" => "/metrics",
        "/jobs" => "/jobs",
        "/shutdown" => "/shutdown",
        _ if path.starts_with("/jobs/") => {
            let tail = &path["/jobs/".len()..];
            match tail.split_once('/').map(|(_, rest)| rest) {
                None => "/jobs/{id}",
                Some("report") => "/jobs/{id}/report",
                Some("stream") => "/jobs/{id}/stream",
                Some("artifacts") => "/jobs/{id}/artifacts",
                Some(rest) if rest.starts_with("artifacts/") => "/jobs/{id}/artifacts/{name}",
                Some(_) => "other",
            }
        }
        _ => "other",
    }
}

/// Pre-resolved handles for the accumulated series. One instance per
/// process ([`global`]); the registry behind it is
/// [`Registry::global`], so tests scraping a private daemon still see
/// the same families.
#[derive(Debug)]
pub struct ServeMetrics {
    registry: &'static Registry,
    /// Submit-to-claim wait per job.
    pub queue_wait_ns: Arc<Histogram>,
    /// Configured worker threads (set at spawn).
    pub workers: Arc<Gauge>,
    /// Workers currently executing a job.
    pub workers_busy: Arc<Gauge>,
}

/// The process-wide serve metrics handles.
pub fn global() -> &'static ServeMetrics {
    static METRICS: OnceLock<ServeMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = Registry::global();
        ServeMetrics {
            registry,
            queue_wait_ns: registry.histogram(
                "voltctl_serve_queue_wait_ns",
                "Nanoseconds jobs spent queued before a worker claimed them",
                &[],
            ),
            workers: registry.gauge(
                "voltctl_serve_workers",
                "Configured job worker threads",
                &[],
            ),
            workers_busy: registry.gauge(
                "voltctl_serve_workers_busy",
                "Worker threads currently executing a job",
                &[],
            ),
        }
    })
}

impl ServeMetrics {
    /// Records one served HTTP request: count by (route, status) and
    /// latency by route. Called once per connection, after the response
    /// is written.
    pub fn record_request(&self, route: &'static str, status: u16, elapsed: Duration) {
        let status = format!("{status}");
        self.registry
            .counter(
                "voltctl_http_requests_total",
                "HTTP requests served, by normalized route and status",
                &[("route", route), ("status", &status)],
            )
            .inc();
        self.registry
            .histogram(
                "voltctl_http_request_duration_ns",
                "HTTP request service time in nanoseconds, by normalized route",
                &[("route", route)],
            )
            .observe(elapsed.as_nanos() as u64);
    }

    /// Records a job reaching a terminal state: outcome counter plus
    /// run-duration histogram (claim to terminal).
    pub fn record_job_finished(&self, state: &'static str, ran_for: Duration) {
        self.registry
            .counter(
                "voltctl_serve_jobs_finished_total",
                "Jobs that reached a terminal state, by outcome",
                &[("state", state)],
            )
            .inc();
        self.registry
            .histogram(
                "voltctl_serve_job_run_ns",
                "Nanoseconds from claim to terminal state, by outcome",
                &[("state", state)],
            )
            .observe(ran_for.as_nanos() as u64);
    }
}

/// One scrape-derived exposition line with a single `cache` label.
fn cache_line(out: &mut String, family: &str, cache: &str, value: u64) {
    out.push_str(&format!("{family}{{cache=\"{cache}\"}} {value}\n"));
}

/// Renders the scrape-derived families: queue/job-state gauges from the
/// job table's [`Stats`] and hit/miss/eviction counters for both
/// process-wide caches.
pub fn render_scrape_derived(stats: &Stats) -> String {
    let mut out = String::new();
    out.push_str("# HELP voltctl_serve_queue_depth Jobs currently queued\n");
    out.push_str("# TYPE voltctl_serve_queue_depth gauge\n");
    out.push_str(&format!("voltctl_serve_queue_depth {}\n", stats.queued));
    out.push_str("# HELP voltctl_serve_queue_depth_max High-water mark of queue depth\n");
    out.push_str("# TYPE voltctl_serve_queue_depth_max gauge\n");
    out.push_str(&format!(
        "voltctl_serve_queue_depth_max {}\n",
        stats.queue_depth_max
    ));
    out.push_str("# HELP voltctl_serve_queue_bound Queued-job admission bound\n");
    out.push_str("# TYPE voltctl_serve_queue_bound gauge\n");
    out.push_str(&format!(
        "voltctl_serve_queue_bound {}\n",
        stats.queue_bound
    ));
    out.push_str("# HELP voltctl_serve_jobs_submitted_total Jobs admitted since startup\n");
    out.push_str("# TYPE voltctl_serve_jobs_submitted_total counter\n");
    out.push_str(&format!(
        "voltctl_serve_jobs_submitted_total {}\n",
        stats.submitted
    ));
    out.push_str("# HELP voltctl_serve_jobs Jobs currently in each lifecycle state\n");
    out.push_str("# TYPE voltctl_serve_jobs gauge\n");
    for (state, count) in [
        ("queued", stats.queued),
        ("running", stats.running),
        ("done", stats.done),
        ("failed", stats.failed),
        ("cancelled", stats.cancelled),
    ] {
        out.push_str(&format!(
            "voltctl_serve_jobs{{state=\"{state}\"}} {count}\n"
        ));
    }

    let caches: [(&str, CacheStats); 2] = [
        ("kernel", voltctl_pdn::kernel_cache_stats()),
        ("solve", voltctl_exp::solve_cache_stats()),
    ];
    for (family, kind, help, pick) in [
        (
            "voltctl_cache_hits_total",
            "counter",
            "Cache lookups that found a resident entry",
            0usize,
        ),
        (
            "voltctl_cache_misses_total",
            "counter",
            "Cache lookups that had to derive",
            1,
        ),
        (
            "voltctl_cache_evictions_total",
            "counter",
            "Entries dropped at the shard bound",
            2,
        ),
        ("voltctl_cache_entries", "gauge", "Resident entries", 3),
        (
            "voltctl_cache_capacity",
            "gauge",
            "Maximum resident entries",
            4,
        ),
    ] {
        out.push_str(&format!("# HELP {family} {help}\n# TYPE {family} {kind}\n"));
        for (name, stats) in &caches {
            let value = match pick {
                0 => stats.hits,
                1 => stats.misses,
                2 => stats.evictions,
                3 => stats.len as u64,
                _ => stats.capacity as u64,
            };
            cache_line(&mut out, family, name, value);
        }
    }
    out
}

/// Assembles the full `GET /metrics` body: registry families first
/// (sorted by name), then the scrape-derived block.
pub fn render_metrics(stats: &Stats) -> String {
    // Touch the pre-registered handles so every declared accumulated
    // family exists even before the first request/job lands on it.
    let _ = global();
    let mut body = Registry::global().render_prometheus();
    body.push_str(&render_scrape_derived(stats));
    body
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobTable;

    #[test]
    fn route_labels_are_a_fixed_set() {
        assert_eq!(route_label("/healthz"), "/healthz");
        assert_eq!(route_label("/stats?verbose=1"), "/stats");
        assert_eq!(route_label("/jobs"), "/jobs");
        assert_eq!(route_label("/jobs/17"), "/jobs/{id}");
        assert_eq!(route_label("/jobs/17/report"), "/jobs/{id}/report");
        assert_eq!(route_label("/jobs/17/stream"), "/jobs/{id}/stream");
        assert_eq!(route_label("/jobs/17/artifacts"), "/jobs/{id}/artifacts");
        assert_eq!(
            route_label("/jobs/17/artifacts/report.txt"),
            "/jobs/{id}/artifacts/{name}"
        );
        assert_eq!(route_label("/jobs/17/bogus"), "other");
        assert_eq!(route_label("/anything-else"), "other");
        assert_eq!(route_label("/shutdown"), "/shutdown");
    }

    #[test]
    fn metrics_body_declares_every_family() {
        global().record_request("/healthz", 200, Duration::from_micros(5));
        global().record_job_finished("done", Duration::from_millis(1));
        global().queue_wait_ns.observe(100);
        let table = JobTable::new(4);
        let body = render_metrics(&table.stats());
        for family in DECLARED_FAMILIES {
            assert!(
                body.contains(&format!("# TYPE {family} ")),
                "family {family} missing from exposition:\n{body}"
            );
        }
    }
}
