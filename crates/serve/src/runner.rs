//! Worker-pool job execution over the `voltctl-exp` engine.
//!
//! Each worker thread loops on [`JobTable::claim`] and executes jobs
//! through the *same* primitives the CLI's sharded path uses —
//! [`plan_shards`] → [`run_cells`] per shard → [`assemble_run`] — so a
//! job's rendered report is byte-identical to the equivalent
//! `voltctl-exp run` invocation (the engine's merge is grid-ordered and
//! jobs/shards-invariant).
//!
//! # Crash safety and cancellation
//!
//! Between shards the runner consults the job's cooperative cancel
//! flag and, when checkpointing is enabled, persists each completed
//! shard through the PR 7 checkpoint container (`encode_checkpoint` +
//! the atomic never-overwrite writer). A daemon that crashes — or a job
//! that is cancelled — leaves valid shard checkpoints behind; a
//! resubmitted identical job revalidates them via [`try_load_shard`]
//! (geometry + context fingerprint) and resumes where the work stopped.
//!
//! # Panic isolation
//!
//! Scenario code asserts paper-shape claims and can panic on
//! pathological inputs. Workers run each job under `catch_unwind`: a
//! panicking job lands in `Failed` with the panic message; the worker
//! thread and the daemon live on.

use crate::event::{EventLevel, F};
use crate::job::{Claimed, JobOutcome, JobSpec, JobTable};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use voltctl_exp::telemetry::Mode;
use voltctl_exp::{
    assemble_run, checkpoint_file, ctx_fingerprint, encode_checkpoint, find, plan_shards,
    run_cells, try_load_shard, Scenario, ShardMeta,
};
use voltctl_telemetry::export::{create_dir_fresh, write_bytes_fresh};

/// Runner-relevant daemon configuration (a subset of the server's).
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// State root: `<root>/jobs/` holds per-job artifact directories,
    /// `<root>/checkpoints/` the shared checkpoint store.
    pub root: PathBuf,
    /// Shard count used when a spec leaves `shards` at 0. Also the
    /// cancellation granularity.
    pub default_shards: usize,
}

/// The stable key for a job's checkpoint directory: scenario id plus
/// the context fingerprint and shard count that determine checkpoint
/// compatibility. Identical requests — across daemon restarts — map to
/// the same directory and can resume each other's shards.
pub fn work_key(spec: &JobSpec, ctx: &voltctl_exp::Ctx, shards: usize) -> String {
    format!(
        "{}-{:016x}-s{}",
        spec.scenario,
        ctx_fingerprint(ctx),
        shards
    )
}

/// Runs the worker loop until the table shuts down. Spawn one thread
/// per worker. The busy-worker gauge brackets each job so `/metrics`
/// shows live occupancy.
pub fn worker_loop(table: Arc<JobTable>, cfg: Arc<RunnerConfig>) {
    while let Some(claimed) = table.claim() {
        let busy = crate::metrics::global();
        busy.workers_busy.add(1);
        let outcome = catch_unwind(AssertUnwindSafe(|| execute(&table, &cfg, &claimed)))
            .unwrap_or_else(|panic| {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "job panicked".to_string());
                JobOutcome::Failed(format!("panic: {msg}"))
            });
        table.finish(claimed.id, outcome);
        busy.workers_busy.add(-1);
    }
}

fn execute(table: &JobTable, cfg: &RunnerConfig, claimed: &Claimed) -> JobOutcome {
    let Claimed {
        id, spec, cancel, ..
    } = claimed;
    let id = *id;
    let cancel: &AtomicBool = cancel;
    let Some(scenario) = find(&spec.scenario) else {
        // The server validates at submit; this covers direct table use.
        return JobOutcome::Failed(format!("unknown scenario {:?}", spec.scenario));
    };

    let jobs_dir = cfg.root.join("jobs");
    let artifact_dir = match create_dir_fresh(&jobs_dir, &format!("job{id}")) {
        Ok(dir) => dir,
        Err(e) => return JobOutcome::Failed(format!("cannot create artifact dir: {e}")),
    };
    table.set_artifact_dir(id, artifact_dir.clone());

    let ctx = spec.ctx(artifact_dir.clone());
    let total = scenario.cells(&ctx).len();
    let shards = if spec.shards == 0 {
        cfg.default_shards
    } else {
        spec.shards
    };
    let plan = plan_shards(total, shards);
    let shard_count = plan.len();
    let ckpt_dir = cfg
        .root
        .join("checkpoints")
        .join(work_key(spec, &ctx, shard_count));
    if spec.checkpoints {
        if let Err(e) = std::fs::create_dir_all(&ckpt_dir) {
            return JobOutcome::Failed(format!("cannot create checkpoint dir: {e}"));
        }
    }

    let mut results = Vec::with_capacity(total);
    for (i, range) in plan.into_iter().enumerate() {
        if cancel.load(Ordering::Relaxed) {
            return JobOutcome::Cancelled(results.len());
        }
        let meta = ShardMeta::new(scenario.id(), &ctx, i, shard_count, &range, total);
        let (cells, resumed) = match spec
            .checkpoints
            .then(|| try_load_shard(&ckpt_dir, &meta))
            .flatten()
        {
            Some(cells) => (cells, true),
            None => {
                let cells = run_cells(scenario, &ctx, 1, range);
                if spec.checkpoints {
                    persist_shard(table, &ckpt_dir, scenario, i, shard_count, &meta, &cells);
                }
                (cells, false)
            }
        };
        results.extend(cells);
        table.progress(
            id,
            format!(
                "{{\"job\":{id},\"event\":\"shard\",\"shard\":{i},\"shards\":{shard_count},\
                 \"cells_done\":{},\"cells_total\":{total},\"resumed\":{resumed},\"req\":{}}}",
                results.len(),
                voltctl_check::json::escape(&claimed.request_id)
            ),
            results.len(),
        );
        table.log().emit(
            EventLevel::Debug,
            "job.shard",
            &[
                ("req", F::s(&claimed.request_id)),
                ("job", F::U(id)),
                ("shard", F::U(i as u64)),
                ("shards", F::U(shard_count as u64)),
                ("cells_done", F::U(results.len() as u64)),
                ("cells_total", F::U(total as u64)),
                ("resumed", F::B(resumed)),
            ],
        );
    }
    if cancel.load(Ordering::Relaxed) {
        return JobOutcome::Cancelled(results.len());
    }

    let out = assemble_run(scenario, &ctx, results, 1);
    write_artifacts(table, &artifact_dir, scenario, spec, &out);
    JobOutcome::Done(out.report.into_bytes(), out.cells)
}

fn persist_shard(
    table: &JobTable,
    dir: &Path,
    scenario: &dyn Scenario,
    shard: usize,
    shards: usize,
    meta: &ShardMeta,
    cells: &[voltctl_exp::CellResult],
) {
    let bytes = encode_checkpoint(meta, cells);
    let name = checkpoint_file(scenario.id(), shard, shards);
    if let Err(e) = write_bytes_fresh(dir, &name, &bytes) {
        // Checkpoints are an optimization; a failed write degrades
        // resume, never the job itself.
        table.log().emit(
            EventLevel::Warn,
            "runner.checkpoint_write_failed",
            &[
                ("shard", F::U(shard as u64)),
                ("error", F::s(e.to_string())),
            ],
        );
    }
}

fn write_artifacts(
    table: &JobTable,
    dir: &Path,
    scenario: &dyn Scenario,
    spec: &JobSpec,
    out: &voltctl_exp::RunOutput,
) {
    if let Err(e) = write_bytes_fresh(dir, "report.txt", out.report.as_bytes()) {
        table.log().emit(
            EventLevel::Warn,
            "runner.report_write_failed",
            &[("error", F::s(e.to_string()))],
        );
    }
    if spec.telemetry != Mode::Off {
        voltctl_exp::telemetry::export_run(scenario.id(), &out.telemetry, spec.telemetry, dir);
    }
    if spec.trace {
        if let Err(e) = voltctl_exp::trace::export(dir, scenario.id(), &out.trace) {
            table.log().emit(
                EventLevel::Warn,
                "runner.trace_export_failed",
                &[("error", F::s(e.to_string()))],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltctl_exp::{run_scenario, Ctx};

    fn smoke_spec(scenario: &str) -> JobSpec {
        JobSpec {
            scenario: scenario.to_string(),
            smoke: true,
            ..JobSpec::default()
        }
    }

    fn temp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("voltctl-serve-runner-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn run_one(table: &Arc<JobTable>, cfg: &Arc<RunnerConfig>) {
        let claimed = table.claim().unwrap();
        let outcome = execute(table, cfg, &claimed);
        table.finish(claimed.id, outcome);
    }

    #[test]
    fn report_bytes_match_cli_render() {
        let root = temp_root("render");
        let table = Arc::new(JobTable::new(4));
        let cfg = Arc::new(RunnerConfig {
            root: root.clone(),
            default_shards: 2,
        });
        let id = table.submit(smoke_spec("fig01_itrs")).unwrap();
        run_one(&table, &cfg);
        let served = table.report(id).expect("job must complete with a report");

        let scenario = find("fig01_itrs").unwrap();
        let ctx = Ctx {
            smoke: true,
            ..Ctx::default()
        };
        let cli = run_scenario(scenario, &ctx, 1).report;
        assert_eq!(
            served,
            cli.into_bytes(),
            "served report must be byte-identical"
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn identical_resubmission_resumes_from_checkpoints() {
        let root = temp_root("resume");
        let table = Arc::new(JobTable::new(4));
        let cfg = Arc::new(RunnerConfig {
            root: root.clone(),
            default_shards: 2,
        });
        let first = table.submit(smoke_spec("fig02_response")).unwrap();
        run_one(&table, &cfg);
        let second = table.submit(smoke_spec("fig02_response")).unwrap();
        run_one(&table, &cfg);
        assert_eq!(table.report(first), table.report(second));
        // The second run must have loaded every shard from checkpoint.
        let snap = table.snapshot(second).unwrap();
        let (events, _) = table
            .wait_events(second, 0, std::time::Duration::from_millis(10))
            .unwrap();
        let shards = events
            .iter()
            .filter(|e| e.contains("\"event\":\"shard\""))
            .count();
        let resumed = events
            .iter()
            .filter(|e| e.contains("\"resumed\":true"))
            .count();
        assert!(shards >= 1);
        assert_eq!(resumed, shards, "every shard should resume: {events:?}");
        assert_eq!(snap.state, crate::job::JobState::Done);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn pre_raised_cancel_flag_cancels_before_any_shard() {
        let root = temp_root("cancel");
        let table = Arc::new(JobTable::new(4));
        let cfg = Arc::new(RunnerConfig {
            root: root.clone(),
            default_shards: 2,
        });
        let id = table.submit(smoke_spec("fig03_narrow_spike")).unwrap();
        let claimed = table.claim().unwrap();
        assert_eq!(claimed.id, id);
        claimed.cancel.store(true, Ordering::Relaxed);
        let outcome = execute(&table, &cfg, &claimed);
        assert!(matches!(outcome, JobOutcome::Cancelled(0)));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn unknown_scenario_fails_cleanly() {
        let root = temp_root("unknown");
        let table = Arc::new(JobTable::new(4));
        let cfg = Arc::new(RunnerConfig {
            root: root.clone(),
            default_shards: 2,
        });
        table.submit(smoke_spec("no_such_scenario")).unwrap();
        run_one(&table, &cfg);
        let snap = table.snapshot(1).unwrap();
        assert_eq!(snap.state, crate::job::JobState::Failed);
        assert!(snap.error.unwrap().contains("no_such_scenario"));
        let _ = std::fs::remove_dir_all(&root);
    }
}
