//! `voltctl-serve` CLI: `serve` runs the daemon, `bench` drives it with
//! the closed-loop load generator.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;
use voltctl_serve::{run_bench, run_top, spawn, BenchOpts, ServeConfig, TopOpts};

const USAGE: &str = "voltctl-serve: the simulation engine as a service

USAGE:
    voltctl-serve serve [OPTIONS]      run the daemon until POST /shutdown
    voltctl-serve bench [OPTIONS]      closed-loop load generator -> BENCH_serve.json
    voltctl-serve top [OPTIONS]        live dashboard over GET /metrics

SERVE OPTIONS:
    --addr ADDR            bind address (default 127.0.0.1:7643; port 0 = auto)
    --workers N            job worker threads (default 2)
    --queue-depth N        queued-job bound before 429 (default 64)
    --root DIR             artifact + checkpoint root (default <tmp>/voltctl-serve)
    --shards K             default checkpoint shards per job (default 4)
    --read-timeout-ms T    per-connection read timeout (default 5000)

BENCH OPTIONS:
    --addr ADDR            drive a live daemon (default: spawn one in-process)
    --smoke                tiny budgets; gate only on failures + percentiles
    --out DIR              artifact directory (default results/perf)
    --requests N           total requests (default 24)
    --connections N        concurrent closed-loop clients (default 4)
    --seed S               request-mix seed (default 0x5EEDC0DE)

TOP OPTIONS:
    --addr ADDR            daemon to scrape (default 127.0.0.1:7643)
    --interval-ms T        refresh interval (default 1000)
    --frames N             stop after N frames (default: until the daemon exits)
    --no-clear             don't clear the terminal between frames
";

fn fail(msg: &str) -> ExitCode {
    eprintln!("voltctl-serve: {msg}");
    eprintln!("{USAGE}");
    ExitCode::FAILURE
}

/// Pulls `--flag VALUE` out of `args`, returning the value.
fn flag_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) if i + 1 < args.len() => {
            let value = args.remove(i + 1);
            args.remove(i);
            Ok(Some(value))
        }
        Some(_) => Err(format!("{flag} needs a value")),
    }
}

fn flag_present(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

fn parse_num<T: std::str::FromStr>(raw: &str, what: &str) -> Result<T, String> {
    raw.parse()
        .map_err(|_| format!("{what} {raw:?} is not valid"))
}

fn cmd_serve(mut args: Vec<String>) -> Result<ExitCode, String> {
    let mut cfg = ServeConfig::default();
    if let Some(addr) = flag_value(&mut args, "--addr")? {
        cfg.addr = addr;
    }
    if let Some(raw) = flag_value(&mut args, "--workers")? {
        cfg.workers = parse_num::<usize>(&raw, "--workers")?.max(1);
    }
    if let Some(raw) = flag_value(&mut args, "--queue-depth")? {
        cfg.queue_bound = parse_num::<usize>(&raw, "--queue-depth")?.max(1);
    }
    if let Some(raw) = flag_value(&mut args, "--root")? {
        cfg.root = PathBuf::from(raw);
    }
    if let Some(raw) = flag_value(&mut args, "--shards")? {
        cfg.default_shards = parse_num::<usize>(&raw, "--shards")?.max(1);
    }
    if let Some(raw) = flag_value(&mut args, "--read-timeout-ms")? {
        cfg.read_timeout = Duration::from_millis(parse_num(&raw, "--read-timeout-ms")?);
    }
    if let Some(extra) = args.first() {
        return Err(format!("unknown argument {extra:?}"));
    }

    // Startup/shutdown lines reach stderr through the structured event
    // log (`daemon.listening` / `daemon.stopped`), not ad-hoc printlns.
    let handle = spawn(cfg).map_err(|e| format!("cannot start daemon: {e}"))?;
    while !handle.is_stopping() {
        std::thread::sleep(Duration::from_millis(50));
    }
    handle.join();
    Ok(ExitCode::SUCCESS)
}

fn cmd_bench(mut args: Vec<String>) -> Result<ExitCode, String> {
    let mut opts = BenchOpts::default();
    if let Some(raw) = flag_value(&mut args, "--addr")? {
        let addr: SocketAddr = raw
            .parse()
            .map_err(|_| format!("--addr {raw:?} is not host:port"))?;
        opts.addr = Some(addr);
    }
    opts.smoke = flag_present(&mut args, "--smoke");
    if let Some(raw) = flag_value(&mut args, "--out")? {
        opts.out = PathBuf::from(raw);
    }
    if let Some(raw) = flag_value(&mut args, "--requests")? {
        opts.requests = parse_num::<usize>(&raw, "--requests")?.max(1);
    }
    if let Some(raw) = flag_value(&mut args, "--connections")? {
        opts.connections = parse_num::<usize>(&raw, "--connections")?.max(1);
    }
    if let Some(raw) = flag_value(&mut args, "--seed")? {
        opts.seed = parse_num(&raw, "--seed")?;
    }
    if let Some(extra) = args.first() {
        return Err(format!("unknown argument {extra:?}"));
    }

    match run_bench(&opts) {
        Ok(report) => {
            let summary: Vec<String> = report
                .suite
                .summary
                .iter()
                .map(|(name, value)| format!("{name}={value:.3}"))
                .collect();
            println!("serve bench ok: {}", summary.join(" "));
            for path in &report.paths {
                println!("  wrote {}", path.display());
            }
            Ok(ExitCode::SUCCESS)
        }
        Err(reason) => Err(reason),
    }
}

fn cmd_top(mut args: Vec<String>) -> Result<ExitCode, String> {
    let mut opts = TopOpts::default();
    if let Some(raw) = flag_value(&mut args, "--addr")? {
        opts.addr = raw
            .parse()
            .map_err(|_| format!("--addr {raw:?} is not host:port"))?;
    }
    if let Some(raw) = flag_value(&mut args, "--interval-ms")? {
        opts.interval = Duration::from_millis(parse_num(&raw, "--interval-ms")?);
    }
    if let Some(raw) = flag_value(&mut args, "--frames")? {
        opts.frames = parse_num(&raw, "--frames")?;
    }
    if flag_present(&mut args, "--no-clear") {
        opts.clear = false;
    }
    if let Some(extra) = args.first() {
        return Err(format!("unknown argument {extra:?}"));
    }
    run_top(&opts).map(|()| ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return fail("missing command");
    }
    let command = args.remove(0);
    let result = match command.as_str() {
        "serve" => cmd_serve(args),
        "bench" => cmd_bench(args),
        "top" => cmd_top(args),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command {other:?}")),
    };
    result.unwrap_or_else(|msg| fail(&msg))
}
