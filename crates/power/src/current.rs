//! Current conversion and energy accounting.
//!
//! The paper translates per-cycle power directly into current at the
//! nominal supply (`I = P / V`), then feeds the current trace to the PDN
//! model. [`EnergyAccumulator`] integrates power over cycles to report the
//! total-energy overhead of control policies (Figures 15, 16, 18).

/// Converts watts to amps at the given supply voltage.
///
/// # Panics
///
/// Panics if `vdd` is not a positive finite number.
pub fn current_amps(power_watts: f64, vdd: f64) -> f64 {
    assert!(vdd.is_finite() && vdd > 0.0, "vdd must be positive");
    power_watts / vdd
}

/// Integrates per-cycle power into total energy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyAccumulator {
    cycle_seconds: f64,
    joules: f64,
    cycles: u64,
}

impl EnergyAccumulator {
    /// Creates an accumulator for a machine clocked at `clock_hz`.
    ///
    /// # Panics
    ///
    /// Panics if `clock_hz` is not positive and finite.
    pub fn new(clock_hz: f64) -> EnergyAccumulator {
        assert!(
            clock_hz.is_finite() && clock_hz > 0.0,
            "clock must be positive"
        );
        EnergyAccumulator {
            cycle_seconds: 1.0 / clock_hz,
            joules: 0.0,
            cycles: 0,
        }
    }

    /// Adds one cycle at `power_watts`.
    pub fn add_cycle(&mut self, power_watts: f64) {
        self.joules += power_watts * self.cycle_seconds;
        self.cycles += 1;
    }

    /// Total accumulated energy in joules.
    pub fn joules(&self) -> f64 {
        self.joules
    }

    /// Dumps the accumulated energy into a telemetry recorder under
    /// `power.*` names.
    pub fn record_telemetry(&self, rec: &mut impl voltctl_telemetry::Recorder) {
        rec.counter("power.cycles", self.cycles);
        rec.value("power.energy_joules", self.joules);
        rec.value("power.avg_watts", self.average_power());
    }

    /// Number of accumulated cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Average power in watts (0 with no cycles).
    pub fn average_power(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.joules / (self.cycles as f64 * self.cycle_seconds)
        }
    }
}

impl voltctl_snap::Pack for EnergyAccumulator {
    fn pack(&self, w: &mut voltctl_snap::ByteWriter) {
        w.put_f64(self.cycle_seconds);
        w.put_f64(self.joules);
        w.put_u64(self.cycles);
    }
}

impl voltctl_snap::Unpack for EnergyAccumulator {
    fn unpack(r: &mut voltctl_snap::ByteReader<'_>) -> Result<Self, voltctl_snap::SnapError> {
        let cycle_seconds = r.get_f64()?;
        let joules = r.get_f64()?;
        let cycles = r.get_u64()?;
        if !(cycle_seconds.is_finite() && cycle_seconds > 0.0) {
            return Err(voltctl_snap::SnapError::Corrupt(format!(
                "energy accumulator cycle time {cycle_seconds} is not positive"
            )));
        }
        Ok(EnergyAccumulator {
            cycle_seconds,
            joules,
            cycles,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn current_conversion() {
        assert_eq!(current_amps(60.0, 1.0), 60.0);
        assert_eq!(current_amps(60.0, 1.2), 50.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_vdd_rejected() {
        let _ = current_amps(1.0, 0.0);
    }

    #[test]
    fn energy_integration() {
        let mut e = EnergyAccumulator::new(1.0e9); // 1 ns cycles
        e.add_cycle(50.0);
        e.add_cycle(30.0);
        assert_eq!(e.cycles(), 2);
        assert!((e.joules() - 80.0e-9).abs() < 1e-18);
        assert!((e.average_power() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn empty_accumulator() {
        let e = EnergyAccumulator::new(3.0e9);
        assert_eq!(e.joules(), 0.0);
        assert_eq!(e.average_power(), 0.0);
    }
}
