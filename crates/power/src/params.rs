//! Per-structure peak-power budget.
//!
//! Values are a Wattch-class structural budget for an 8-wide, 3 GHz,
//! 1.0 V processor (the paper's Table 1 machine scaled with the ITRS-2001
//! factors the authors applied). Absolute watts are our calibration — the
//! paper's controller only depends on the *range* (minimum to maximum
//! current) and on which structures move when activity changes, both of
//! which this budget preserves:
//!
//! * peak (everything busy) ≈ 67 W → ≈ 67 A at 1.0 V,
//! * floor (everything idle and clock-gated, cc3 style) ≈ 12 W,
//!
//! giving the tens-of-amps swing at mid-frequency time constants that
//! drives the paper's voltage emergencies.

/// The modeled power structures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Unit {
    /// Fetch/decode logic (excluding the I-cache array).
    Fetch,
    /// Branch predictor tables and BTB.
    Bpred,
    /// L1 instruction cache array.
    Il1,
    /// Rename/dispatch logic.
    Dispatch,
    /// RUU: wakeup/select and window storage.
    Window,
    /// Load/store queue.
    Lsq,
    /// Architectural register files.
    Regfile,
    /// Integer ALUs (all of them).
    IntAlu,
    /// Integer multiply/divide units.
    IntMult,
    /// FP adders.
    FpAlu,
    /// FP multiply/divide units.
    FpMult,
    /// L1 data cache array.
    Dl1,
    /// Unified L2 array.
    L2,
    /// Result/writeback buses.
    ResultBus,
    /// Global clock tree (never gated).
    Clock,
}

impl Unit {
    /// Number of units.
    pub const COUNT: usize = 15;

    /// Dense index.
    pub fn index(self) -> usize {
        use Unit::*;
        match self {
            Fetch => 0,
            Bpred => 1,
            Il1 => 2,
            Dispatch => 3,
            Window => 4,
            Lsq => 5,
            Regfile => 6,
            IntAlu => 7,
            IntMult => 8,
            FpAlu => 9,
            FpMult => 10,
            Dl1 => 11,
            L2 => 12,
            ResultBus => 13,
            Clock => 14,
        }
    }

    /// All units in index order.
    pub fn all() -> [Unit; Unit::COUNT] {
        use Unit::*;
        [
            Fetch, Bpred, Il1, Dispatch, Window, Lsq, Regfile, IntAlu, IntMult, FpAlu, FpMult, Dl1,
            L2, ResultBus, Clock,
        ]
    }

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        use Unit::*;
        match self {
            Fetch => "fetch",
            Bpred => "bpred",
            Il1 => "il1",
            Dispatch => "dispatch",
            Window => "window",
            Lsq => "lsq",
            Regfile => "regfile",
            IntAlu => "int_alu",
            IntMult => "int_mult",
            FpAlu => "fp_alu",
            FpMult => "fp_mult",
            Dl1 => "dl1",
            L2 => "l2",
            ResultBus => "resultbus",
            Clock => "clock",
        }
    }
}

/// The power budget: per-unit peak watts plus gating behavior.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerParams {
    peak: [f64; Unit::COUNT],
    /// Fraction of peak drawn by an idle, clock-gated unit (Wattch "cc3").
    pub gating_floor: f64,
    /// Nominal supply voltage in volts.
    pub vdd: f64,
}

impl PowerParams {
    /// The calibrated budget for the paper's 3 GHz / 1.0 V machine.
    pub fn paper_3ghz() -> PowerParams {
        let mut peak = [0.0; Unit::COUNT];
        peak[Unit::Fetch.index()] = 3.0;
        peak[Unit::Bpred.index()] = 1.5;
        peak[Unit::Il1.index()] = 5.0;
        peak[Unit::Dispatch.index()] = 2.5;
        peak[Unit::Window.index()] = 6.0;
        peak[Unit::Lsq.index()] = 2.5;
        peak[Unit::Regfile.index()] = 4.0;
        peak[Unit::IntAlu.index()] = 8.0; // 8 x 1.0 W
        peak[Unit::IntMult.index()] = 3.0; // 2 x 1.5 W
        peak[Unit::FpAlu.index()] = 8.0; // 4 x 2.0 W
        peak[Unit::FpMult.index()] = 5.0; // 2 x 2.5 W
        peak[Unit::Dl1.index()] = 6.0;
        peak[Unit::L2.index()] = 4.0;
        peak[Unit::ResultBus.index()] = 2.5;
        peak[Unit::Clock.index()] = 6.0;
        PowerParams {
            peak,
            gating_floor: 0.10,
            vdd: 1.0,
        }
    }

    /// Peak watts for one unit.
    pub fn peak(&self, unit: Unit) -> f64 {
        self.peak[unit.index()]
    }

    /// Overrides one unit's peak (for ablations).
    ///
    /// # Panics
    ///
    /// Panics if `watts` is negative or not finite.
    pub fn set_peak(&mut self, unit: Unit, watts: f64) {
        assert!(
            watts.is_finite() && watts >= 0.0,
            "peak power must be non-negative"
        );
        self.peak[unit.index()] = watts;
    }

    /// Total peak watts across all units.
    pub fn total_peak(&self) -> f64 {
        self.peak.iter().sum()
    }

    /// Total floor watts: every gateable unit at the gating floor, the
    /// clock at full power.
    pub fn total_floor(&self) -> f64 {
        let clock = self.peak[Unit::Clock.index()];
        (self.total_peak() - clock) * self.gating_floor + clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_unique() {
        let mut seen = [false; Unit::COUNT];
        for u in Unit::all() {
            assert!(!seen[u.index()], "duplicate index for {u:?}");
            seen[u.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn paper_budget_magnitudes() {
        let p = PowerParams::paper_3ghz();
        let peak = p.total_peak();
        let floor = p.total_floor();
        assert!((60.0..80.0).contains(&peak), "peak {peak}");
        assert!((8.0..20.0).contains(&floor), "floor {floor}");
        assert!(floor < 0.3 * peak, "dynamic range must be wide");
    }

    #[test]
    fn floor_includes_full_clock() {
        let p = PowerParams::paper_3ghz();
        assert!(p.total_floor() > p.peak(Unit::Clock));
    }

    #[test]
    fn set_peak_overrides() {
        let mut p = PowerParams::paper_3ghz();
        let before = p.total_peak();
        p.set_peak(Unit::L2, 10.0);
        assert!((p.total_peak() - (before - 4.0 + 10.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_peak_rejected() {
        PowerParams::paper_3ghz().set_peak(Unit::L2, -1.0);
    }

    #[test]
    fn names_are_nonempty_and_unique() {
        let mut names: Vec<&str> = Unit::all().iter().map(|u| u.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Unit::COUNT);
    }
}
