//! The per-cycle activity → power mapping.
//!
//! Each structure's power interpolates linearly between the clock-gating
//! floor (idle) and its peak (fully busy), driven by the activity fractions
//! in a [`CycleActivity`]. Three paper-specific behaviors:
//!
//! * **Multi-cycle spreading** — functional-unit power follows the number
//!   of units with an operation *in flight* (`executing_per_fu`), not the
//!   number of issues, so a 18-cycle FP divide draws power for 18 cycles
//!   instead of dumping all its energy into one (the authors' Wattch fix).
//! * **Gating** — a domain gated by the actuator drops to the floor even
//!   when the pipeline had wanted to use it.
//! * **Phantom firing** — a phantom-fired domain is charged at full peak
//!   regardless of architectural activity.

use crate::params::{PowerParams, Unit};
use voltctl_cpu::{CpuConfig, CycleActivity, FuKind, GatingState};

/// Per-unit power for one cycle, in watts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerBreakdown {
    watts: [f64; Unit::COUNT],
}

impl PowerBreakdown {
    /// Watts drawn by one unit.
    pub fn unit(&self, unit: Unit) -> f64 {
        self.watts[unit.index()]
    }

    /// Total watts this cycle.
    pub fn total(&self) -> f64 {
        self.watts.iter().sum()
    }

    /// `(unit, watts)` pairs for reporting.
    pub fn iter(&self) -> impl Iterator<Item = (Unit, f64)> + '_ {
        Unit::all().into_iter().map(|u| (u, self.watts[u.index()]))
    }
}

/// The activity → watts model.
#[derive(Debug, Clone)]
pub struct PowerModel {
    params: PowerParams,
    fetch_width: f64,
    decode_width: f64,
    issue_width: f64,
    mem_ports: f64,
    fu_counts: [f64; FuKind::COUNT],
}

impl PowerModel {
    /// Builds the model for the paper's Table 1 machine widths.
    pub fn new(params: PowerParams) -> PowerModel {
        PowerModel::for_config(params, &CpuConfig::table1())
    }

    /// Builds the model for an arbitrary machine configuration.
    pub fn for_config(params: PowerParams, config: &CpuConfig) -> PowerModel {
        PowerModel {
            params,
            fetch_width: config.fetch_width as f64,
            decode_width: config.decode_width as f64,
            issue_width: config.issue_width as f64,
            mem_ports: config.fu.mem_ports as f64,
            fu_counts: [
                config.fu.int_alu as f64,
                config.fu.int_mult as f64,
                config.fu.fp_alu as f64,
                config.fu.fp_mult as f64,
                config.fu.mem_ports as f64,
            ],
        }
    }

    /// The underlying budget.
    pub fn params(&self) -> &PowerParams {
        &self.params
    }

    /// Maximum possible per-cycle power (everything busy), watts.
    pub fn peak_power(&self) -> f64 {
        self.params.total_peak()
    }

    /// Minimum possible per-cycle power (everything idle/gated), watts.
    pub fn min_power(&self) -> f64 {
        self.params.total_floor()
    }

    /// Maximum possible current at the nominal supply, amps.
    pub fn peak_current(&self) -> f64 {
        self.peak_power() / self.params.vdd
    }

    /// Minimum possible current at the nominal supply, amps.
    pub fn min_current(&self) -> f64 {
        self.min_power() / self.params.vdd
    }

    /// The most power-hungry *sustainable* cycle: the structural peak
    /// ([`peak_power`](Self::peak_power)) assumes every unit busy at once,
    /// which no instruction mix can achieve through an 8-wide issue stage.
    /// This activity vector is the highest-power mix the pipeline can
    /// actually sustain — full front end, saturated issue split across the
    /// memory ports and both FP pipes (whose multi-cycle latencies keep
    /// all their units in flight), and the remaining slots on the integer
    /// ALUs. Workload current envelopes (and therefore target-impedance
    /// calibration, §3.3) should use this, not the structural sum.
    pub fn saturated_activity(&self) -> CycleActivity {
        let issue = self.issue_width as u32;
        let mem = (self.mem_ports as u32).min(issue);
        // One FP-multiply and one FP-add issue per cycle keep every FP
        // unit executing (4-cycle pipelined latency); the rest go to the
        // integer ALUs.
        let fp = 2u32.min(issue.saturating_sub(mem));
        let int = issue.saturating_sub(mem + fp);
        CycleActivity {
            fetched: self.fetch_width as u32,
            dispatched: self.decode_width as u32,
            issued: issue,
            completed: issue,
            committed: issue,
            bpred_lookups: 1,
            il1_accesses: 1,
            dl1_accesses: mem,
            regfile_reads: 2 * issue,
            regfile_writes: issue,
            issued_per_fu: [int, 0, 1.min(fp), 1.min(fp), mem],
            executing_per_fu: [
                int,
                self.fu_counts[FuKind::IntMult.index()] as u32,
                self.fu_counts[FuKind::FpAlu.index()] as u32,
                self.fu_counts[FuKind::FpMult.index()] as u32,
                mem,
            ],
            ruu_occupancy: 256,
            lsq_occupancy: 128,
            ..CycleActivity::default()
        }
    }

    /// Power of the saturated cycle, watts.
    pub fn achievable_peak_power(&self) -> f64 {
        self.cycle_power(&self.saturated_activity(), &GatingState::default())
            .total()
    }

    /// Current of the saturated cycle at the nominal supply, amps.
    pub fn achievable_peak_current(&self) -> f64 {
        self.achievable_peak_power() / self.params.vdd
    }

    fn scaled(&self, unit: Unit, fraction: f64) -> f64 {
        let peak = self.params.peak(unit);
        let floor = peak * self.params.gating_floor;
        floor + (peak - floor) * fraction.clamp(0.0, 1.0)
    }

    fn domain(&self, unit: Unit, fraction: f64, gated: bool, phantom: bool) -> f64 {
        if phantom {
            self.params.peak(unit)
        } else if gated {
            self.params.peak(unit) * self.params.gating_floor
        } else {
            self.scaled(unit, fraction)
        }
    }

    /// Computes the power drawn during one cycle.
    pub fn cycle_power(&self, act: &CycleActivity, gating: &GatingState) -> PowerBreakdown {
        let mut w = [0.0; Unit::COUNT];
        let p = &self.params;

        // --- IL1 domain: fetch logic, predictor, I-cache -----------------
        let fetch_frac = f64::from(act.fetched) / self.fetch_width;
        let il1_frac = f64::from(act.il1_accesses).min(1.0);
        let bpred_frac = f64::from(act.bpred_lookups) / self.fetch_width;
        w[Unit::Fetch.index()] =
            self.domain(Unit::Fetch, fetch_frac, gating.gate_il1, gating.phantom_il1);
        w[Unit::Bpred.index()] =
            self.domain(Unit::Bpred, bpred_frac, gating.gate_il1, gating.phantom_il1);
        w[Unit::Il1.index()] =
            self.domain(Unit::Il1, il1_frac, gating.gate_il1, gating.phantom_il1);

        // --- Window / rename / regfile: follow pipeline activity ---------
        w[Unit::Dispatch.index()] = self.scaled(
            Unit::Dispatch,
            f64::from(act.dispatched) / self.decode_width,
        );
        let window_frac =
            f64::from(act.dispatched + act.issued + act.completed) / (3.0 * self.issue_width);
        w[Unit::Window.index()] = self.scaled(Unit::Window, window_frac);
        let lsq_frac = (f64::from(act.issued_per_fu[FuKind::MemPort.index()] + act.lsq_forwards))
            / self.mem_ports;
        w[Unit::Lsq.index()] =
            self.domain(Unit::Lsq, lsq_frac, gating.gate_dl1, gating.phantom_dl1);
        let regfile_frac =
            f64::from(act.regfile_reads + act.regfile_writes) / (3.0 * self.issue_width);
        w[Unit::Regfile.index()] = self.scaled(Unit::Regfile, regfile_frac);

        // --- FU domain: spread multi-cycle work over busy units ----------
        let fu_units = [
            (FuKind::IntAlu, Unit::IntAlu),
            (FuKind::IntMult, Unit::IntMult),
            (FuKind::FpAlu, Unit::FpAlu),
            (FuKind::FpMult, Unit::FpMult),
        ];
        for (kind, unit) in fu_units {
            let busy = f64::from(act.executing_per_fu[kind.index()]);
            let frac = busy / self.fu_counts[kind.index()].max(1.0);
            w[unit.index()] = self.domain(unit, frac, gating.gate_fu, gating.phantom_fu);
        }

        // --- DL1 domain and L2 --------------------------------------------
        let dl1_frac = f64::from(act.dl1_accesses) / self.mem_ports;
        w[Unit::Dl1.index()] =
            self.domain(Unit::Dl1, dl1_frac, gating.gate_dl1, gating.phantom_dl1);
        let l2_frac = f64::from(act.l2_accesses).min(1.0);
        w[Unit::L2.index()] = self.scaled(Unit::L2, l2_frac);

        // --- Result bus and clock ------------------------------------------
        let bus_frac = f64::from(act.completed) / self.issue_width;
        w[Unit::ResultBus.index()] = self.scaled(Unit::ResultBus, bus_frac);
        w[Unit::Clock.index()] = p.peak(Unit::Clock);

        PowerBreakdown { watts: w }
    }

    /// Convenience: the cycle's current draw at the nominal supply, amps.
    pub fn cycle_current(&self, act: &CycleActivity, gating: &GatingState) -> f64 {
        self.cycle_power(act, gating).total() / self.params.vdd
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PowerModel {
        PowerModel::new(PowerParams::paper_3ghz())
    }

    fn busy_activity() -> CycleActivity {
        CycleActivity {
            fetched: 8,
            dispatched: 8,
            issued: 8,
            completed: 8,
            committed: 8,
            bpred_lookups: 2,
            il1_accesses: 1,
            dl1_accesses: 4,
            l2_accesses: 1,
            regfile_reads: 16,
            regfile_writes: 8,
            executing_per_fu: [8, 2, 4, 2, 4],
            issued_per_fu: [4, 0, 0, 0, 4],
            ..Default::default()
        }
    }

    #[test]
    fn idle_is_near_floor_and_busy_near_peak() {
        let m = model();
        let idle = m.cycle_power(&CycleActivity::default(), &GatingState::default());
        let busy = m.cycle_power(&busy_activity(), &GatingState::default());
        assert!(idle.total() >= m.min_power() - 1e-9);
        assert!(idle.total() < 0.35 * m.peak_power());
        assert!(busy.total() > 0.8 * m.peak_power());
        assert!(busy.total() <= m.peak_power() + 1e-9);
    }

    #[test]
    fn power_is_monotone_in_activity() {
        let m = model();
        let mut some = CycleActivity::default();
        some.executing_per_fu[FuKind::IntAlu.index()] = 4;
        let more = {
            let mut a = some;
            a.executing_per_fu[FuKind::IntAlu.index()] = 8;
            a
        };
        let g = GatingState::default();
        assert!(m.cycle_power(&more, &g).total() > m.cycle_power(&some, &g).total());
    }

    #[test]
    fn gated_fu_domain_drops_to_floor_despite_activity() {
        let m = model();
        let act = busy_activity();
        let g = GatingState {
            gate_fu: true,
            ..Default::default()
        };
        let gated = m.cycle_power(&act, &g);
        let free = m.cycle_power(&act, &GatingState::default());
        let floor = m.params().peak(Unit::IntAlu) * m.params().gating_floor;
        assert!((gated.unit(Unit::IntAlu) - floor).abs() < 1e-12);
        assert!(gated.total() < free.total());
        // Non-FU domains unaffected.
        assert_eq!(gated.unit(Unit::Dl1), free.unit(Unit::Dl1));
    }

    #[test]
    fn phantom_fire_charges_full_peak_when_idle() {
        let m = model();
        let idle = CycleActivity::default();
        let g = GatingState {
            phantom_fu: true,
            phantom_dl1: true,
            ..Default::default()
        };
        let fired = m.cycle_power(&idle, &g);
        assert_eq!(fired.unit(Unit::IntAlu), m.params().peak(Unit::IntAlu));
        assert_eq!(fired.unit(Unit::FpMult), m.params().peak(Unit::FpMult));
        assert_eq!(fired.unit(Unit::Dl1), m.params().peak(Unit::Dl1));
        let plain = m.cycle_power(&idle, &GatingState::default());
        assert!(fired.total() > plain.total() + 15.0);
    }

    #[test]
    fn il1_gating_covers_front_end() {
        let m = model();
        let act = busy_activity();
        let g = GatingState {
            gate_il1: true,
            ..Default::default()
        };
        let p = m.cycle_power(&act, &g);
        let floor = m.params().gating_floor;
        assert!((p.unit(Unit::Il1) - m.params().peak(Unit::Il1) * floor).abs() < 1e-12);
        assert!((p.unit(Unit::Fetch) - m.params().peak(Unit::Fetch) * floor).abs() < 1e-12);
        assert!((p.unit(Unit::Bpred) - m.params().peak(Unit::Bpred) * floor).abs() < 1e-12);
    }

    #[test]
    fn multicycle_spreading_keeps_divider_power_up() {
        // An in-flight divide (executing, no new issues) must hold FpMult
        // above its floor.
        let m = model();
        let mut act = CycleActivity::default();
        act.executing_per_fu[FuKind::FpMult.index()] = 1;
        let p = m.cycle_power(&act, &GatingState::default());
        let floor = m.params().peak(Unit::FpMult) * m.params().gating_floor;
        assert!(p.unit(Unit::FpMult) > floor + 1.0);
    }

    #[test]
    fn clock_is_never_gated() {
        let m = model();
        let g = GatingState {
            gate_fu: true,
            gate_dl1: true,
            gate_il1: true,
            ..Default::default()
        };
        let p = m.cycle_power(&CycleActivity::default(), &g);
        assert_eq!(p.unit(Unit::Clock), m.params().peak(Unit::Clock));
        // Fully gated machine sits at the analytic floor.
        assert!((p.total() - m.min_power()).abs() < 0.7);
    }

    #[test]
    fn current_is_power_over_vdd() {
        let m = model();
        let act = busy_activity();
        let g = GatingState::default();
        let p = m.cycle_power(&act, &g).total();
        assert!((m.cycle_current(&act, &g) - p / 1.0).abs() < 1e-12);
    }

    #[test]
    fn breakdown_iter_sums_to_total() {
        let m = model();
        let p = m.cycle_power(&busy_activity(), &GatingState::default());
        let sum: f64 = p.iter().map(|(_, w)| w).sum();
        assert!((sum - p.total()).abs() < 1e-12);
    }

    #[test]
    fn achievable_peak_is_between_busy_and_structural() {
        let m = model();
        let achievable = m.achievable_peak_power();
        assert!(achievable < m.peak_power(), "issue width limits the mix");
        assert!(
            achievable > 0.6 * m.peak_power(),
            "but a saturated machine is still hot: {achievable} vs {}",
            m.peak_power()
        );
        assert!(m.achievable_peak_current() > m.min_current() + 30.0);
    }

    #[test]
    fn activity_fractions_clamp() {
        // Absurd over-unity activity must not exceed peak.
        let m = model();
        let mut act = busy_activity();
        act.fetched = 100;
        act.dl1_accesses = 100;
        act.regfile_reads = 1000;
        let p = m.cycle_power(&act, &GatingState::default());
        assert!(p.total() <= m.peak_power() + 1e-9);
    }
}
