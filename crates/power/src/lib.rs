//! Structural, activity-based power and current modeling (Wattch-style).
//!
//! The paper's methodology converts per-cycle microarchitectural activity
//! into per-cycle processor power with Wattch, then directly into current
//! at the nominal supply voltage. This crate reproduces that layer:
//!
//! * [`params`] — per-structure peak power budget for the paper's 3 GHz /
//!   1.0 V machine, with the conditional-clock-gating floor ("cc3" style:
//!   idle gated units still draw a fraction of peak).
//! * [`model`] — [`model::PowerModel`]: maps a
//!   [`voltctl_cpu::CycleActivity`] plus the actuator's
//!   [`voltctl_cpu::GatingState`] to watts, spreading multi-cycle
//!   operation energy over their execution (the paper's fix against
//!   overestimating current swings), and charging phantom-fired domains at
//!   full activity.
//! * [`current`] — watts → amps at the supply voltage, plus energy
//!   accounting over a run.
//!
//! # Example
//!
//! ```
//! use voltctl_power::{PowerModel, PowerParams};
//! use voltctl_cpu::{CycleActivity, GatingState};
//!
//! let model = PowerModel::new(PowerParams::paper_3ghz());
//! let idle = model.cycle_power(&CycleActivity::default(), &GatingState::default());
//! // An idle, clock-gated machine sits near the floor, far below peak.
//! assert!(idle.total() < 0.35 * model.peak_power());
//! assert!((idle.total() - model.min_power()).abs() < 1e-6);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod current;
pub mod model;
pub mod params;

pub use current::{current_amps, EnergyAccumulator};
pub use model::{PowerBreakdown, PowerModel};
pub use params::{PowerParams, Unit};
