; A small dI/dt-style pulse loop: a dependent FP divide (low phase)
; followed by a burst of independent work (high phase), closed through
; memory so iterations cannot overlap. Assemble and run with:
;
;   cargo run --release --example run_asm -- examples/programs/pulse.s
;
top:
    ldt  f1, 0(r4)
    divt f3, f1, f2
    stt  f3, 8(r4)
    ldq  r7, 8(r4)
    cmoveq r3, r31, r7
    xor  r8, r3, r3
    addq r9, r3, r3
    stq  r3, 64(r4)
    or   r10, r3, r3
    xor  r11, r3, r3
    addq r12, r3, r3
    stq  r3, 72(r4)
    xor  r13, r3, r3
    addq r14, r3, r3
    stq  r3, 80(r4)
    xor  r3, r3, r8
    stq  r3, 0(r4)
    bne  r1, top
