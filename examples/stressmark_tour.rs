//! A tour of the dI/dt stressmark generator.
//!
//! Shows how the generator's two knobs shape the current waveform, how the
//! spectrum-guided tuner locks the loop onto the package resonance, and
//! what the resulting assembly looks like (the paper's Figure 8).
//!
//! Run with: `cargo run --release --example stressmark_tour`

use voltctl::cpu::CpuConfig;
use voltctl::isa::asm;
use voltctl::pdn::{spectrum, PdnModel};
use voltctl::power::{PowerModel, PowerParams};
use voltctl::workloads::{stressmark, trace};

fn describe(label: &str, t: &[f64]) {
    let min = t.iter().cloned().fold(f64::MAX, f64::min);
    let max = t.iter().cloned().fold(f64::MIN, f64::max);
    let period = stressmark::measured_period(t).map_or("n/a".to_string(), |p| format!("{p:.0}"));
    println!("{label:<28} swing {min:5.1}..{max:5.1} A   period {period:>4} cycles");
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = CpuConfig::table1();
    let power = PowerModel::new(PowerParams::paper_3ghz());
    let pdn = PdnModel::paper_default()?;
    let target = pdn.resonant_period_cycles();
    println!("package resonant period: {target} cycles\n");

    // Knob exploration: burst size stretches the loop period.
    for burst_ops in [60, 150, 300, 600] {
        let wl = stressmark::build(&stressmark::StressmarkParams {
            divide_chain: 1,
            burst_ops,
            iterations: None,
        });
        let t = trace::record_current(&wl, &config, &power, 8192);
        describe(&format!("divide 1, burst {burst_ops}:"), &t);
    }

    // The tuner picks the knobs that put the most energy on the resonance.
    println!("\ntuning to {target} cycles...");
    let (params, wl) = stressmark::tune(target, &config, &power);
    let t = trace::record_current(&wl, &config, &power, 8192);
    describe(
        &format!(
            "tuned (divide {}, burst {}):",
            params.divide_chain, params.burst_ops
        ),
        &t,
    );
    let energy = spectrum::goertzel(&t, 1.0 / target as f64);
    println!("current energy at the resonant bin: {energy:.0}\n");

    // The Figure 8 listing.
    println!("loop head (compare the paper's Figure 8):");
    for line in asm::disassemble(&wl.program).lines().take(12) {
        println!("  {line}");
    }
    Ok(())
}
