//! Design-space exploration: which (impedance, actuator, sensor-delay)
//! points admit a guaranteed-safe controller, and how wide their operating
//! windows are.
//!
//! This is the methodology the paper advocates: instead of buying ever
//! lower package impedance, pick a cheaper network and check — by
//! worst-case analysis, not trial and error — whether a microarchitectural
//! controller can close the gap.
//!
//! Run with: `cargo run --release --example design_space`

use voltctl::control::prelude::*;
use voltctl::pdn::PdnModel;
use voltctl::power::{PowerModel, PowerParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let power = PowerModel::new(PowerParams::paper_3ghz());
    let base = PdnModel::paper_default()?;

    println!("guaranteed-safe operating window (mV) by design point");
    println!("(.... = no safe thresholds exist: scope cannot arrest the worst case)\n");
    println!("{:>10} {:>6}  sensor delay 0..6", "impedance", "scope");

    for percent in [1.5, 2.0, 3.0, 4.0] {
        let pdn = calibrated_pdn(&base, &power, percent)?;
        for scope in [
            ActuationScope::Fu,
            ActuationScope::FuDl1,
            ActuationScope::FuDl1Il1,
        ] {
            print!("{:>9}% {:>10}  ", (percent * 100.0) as u32, scope.name());
            for delay in 0..=6u32 {
                let setup = SolveSetup::new(
                    &pdn,
                    power.min_current(),
                    power.achievable_peak_current(),
                    scope.leverage(&power),
                    delay,
                );
                match solve_thresholds(&setup) {
                    Ok(t) => print!("{:>6.0}", t.window_mv()),
                    Err(ControlError::Unstable { .. }) => print!("{:>6}", "...."),
                    Err(e) => print!("{:>6}", format!("{e:.4}")),
                }
            }
            println!();
        }
        println!();
    }

    println!("reading: wider windows = cheaper sensors suffice; dotted cells need");
    println!("a coarser actuator or a faster sensor (or a better package).");
    Ok(())
}
