//! Quickstart: close a dI/dt control loop around a program in ~40 lines.
//!
//! Builds the paper's reference machine (Table 1 CPU + Wattch-style power
//! model + 200%-of-target-impedance supply network), solves safe voltage
//! thresholds for a 2-cycle sensor, and runs the auto-tuned dI/dt
//! stressmark with and without the controller.
//!
//! Run with: `cargo run --release --example quickstart`

use voltctl::control::prelude::*;
use voltctl::cpu::CpuConfig;
use voltctl::pdn::PdnModel;
use voltctl::power::{PowerModel, PowerParams};
use voltctl::workloads::stressmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The machine: power model and calibrated supply network.
    let power = PowerModel::new(PowerParams::paper_3ghz());
    let pdn = calibrated_pdn(&PdnModel::paper_default()?, &power, 2.0)?;
    println!(
        "package: {:.0} MHz resonance, {:.2} mOhm peak (200% of target impedance)",
        pdn.resonant_freq_hz() / 1e6,
        pdn.peak_impedance() * 1e3
    );

    // 2. Solve guaranteed-safe thresholds for a 2-cycle sensor driving the
    //    FU/DL1/IL1 actuator.
    let scope = ActuationScope::FuDl1Il1;
    let setup = SolveSetup::new(
        &pdn,
        power.min_current(),
        power.achievable_peak_current(),
        scope.leverage(&power),
        2,
    );
    let thresholds = solve_thresholds(&setup)?;
    println!(
        "thresholds: gate below {:.3} V, fire above {:.3} V ({:.0} mV window)",
        thresholds.v_low,
        thresholds.v_high,
        thresholds.window_mv()
    );

    // 3. The victim: a dI/dt stressmark tuned to the package resonance.
    let (params, workload) =
        stressmark::tune(pdn.resonant_period_cycles(), &CpuConfig::table1(), &power);
    println!(
        "stressmark: divide chain {}, burst {} ops\n",
        params.divide_chain, params.burst_ops
    );

    // 4. Uncontrolled baseline vs controlled run.
    let mut baseline = ControlLoop::builder(workload.program.clone())
        .power(power.clone())
        .pdn(pdn.clone())
        .build()?;
    baseline.run(workload.warmup_cycles + 100_000);
    let base = baseline.report();

    let mut controlled = ControlLoop::builder(workload.program.clone())
        .power(power)
        .pdn(pdn)
        .thresholds(thresholds)
        .scope(scope)
        .sensor(SensorConfig {
            delay_cycles: 2,
            noise_mv: 0.0,
            seed: 42,
        })
        .build()?;
    controlled.run(workload.warmup_cycles + 100_000);
    let ctrl = controlled.report();

    println!(
        "uncontrolled: {:>7} emergency cycles, IPC {:.2}",
        base.emergencies.emergency_cycles, base.ipc
    );
    println!(
        "controlled:   {:>7} emergency cycles, IPC {:.2} ({} interventions)",
        ctrl.emergencies.emergency_cycles, ctrl.ipc, ctrl.interventions
    );
    println!(
        "performance cost of safety: {:.1}%",
        (1.0 - ctrl.ipc / base.ipc) * 100.0
    );
    Ok(())
}
