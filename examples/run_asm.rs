//! Run any assembly program through the full dI/dt stack.
//!
//! Loads a text assembly file (see `voltctl::isa::asm` for the syntax),
//! sets up the standard environment (`r4` points at a seeded data buffer,
//! `f2` = 1.0, `r1` = 1 for `bne r1, <label>` infinite loops), and runs it
//! closed-loop with and without the voltage controller.
//!
//! ```text
//! cargo run --release --example run_asm -- examples/programs/pulse.s [impedance%] [cycles]
//! ```

use voltctl::control::prelude::*;
use voltctl::isa::{asm, FpReg, IntReg, Program, ProgramBuilder};
use voltctl::pdn::PdnModel;
use voltctl::power::{PowerModel, PowerParams};

/// Wraps the user program with the standard environment preamble.
fn with_preamble(user: &Program) -> Program {
    let mut b = ProgramBuilder::new(user.name());
    const BUF: i64 = 0x20_0000;
    b.data_f64(BUF as u64, &[1.0]);
    b.data_f64(BUF as u64 + 16, &[1.0]);
    b.lda(IntReg::R4, IntReg::R31, BUF);
    b.ldt(FpReg::F2, 16, IntReg::R4);
    b.lda(IntReg::R1, IntReg::R31, 1);
    let offset = b.len() as u32;
    for inst in user.insts() {
        let mut inst = *inst;
        if let Some(t) = inst.target {
            inst.target = Some(t + offset);
        }
        b.raw(inst);
    }
    b.build().expect("preamble wrapping preserves validity")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let path = args
        .get(1)
        .map(String::as_str)
        .unwrap_or("examples/programs/pulse.s");
    let impedance: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(200.0) / 100.0;
    let cycles: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(100_000);

    let text = std::fs::read_to_string(path)?;
    let user = asm::assemble(path, &text)?;
    let program = with_preamble(&user);
    println!(
        "loaded `{path}`: {} instructions (+5 preamble), {} cycles at {:.0}% impedance\n",
        user.len(),
        cycles,
        impedance * 100.0
    );

    let power = PowerModel::new(PowerParams::paper_3ghz());
    let pdn = calibrated_pdn(&PdnModel::paper_default()?, &power, impedance)?;

    let mut baseline = ControlLoop::builder(program.clone())
        .power(power.clone())
        .pdn(pdn.clone())
        .build()?;
    baseline.run(cycles);
    let base = baseline.report();
    println!(
        "uncontrolled: IPC {:.2}, min voltage {:.4} V, emergencies {} cycles ({} events)",
        base.ipc,
        base.emergencies.min_v,
        base.emergencies.emergency_cycles,
        base.emergencies.events()
    );

    let scope = ActuationScope::FuDl1Il1;
    let setup = SolveSetup::new(
        &pdn,
        power.min_current(),
        power.achievable_peak_current(),
        scope.leverage(&power),
        2,
    );
    match solve_thresholds(&setup) {
        Ok(thresholds) => {
            let mut controlled = ControlLoop::builder(program)
                .power(power)
                .pdn(pdn)
                .thresholds(thresholds)
                .scope(scope)
                .sensor(SensorConfig {
                    delay_cycles: 2,
                    noise_mv: 0.0,
                    seed: 1,
                })
                .build()?;
            controlled.run(cycles);
            let ctrl = controlled.report();
            println!(
                "controlled:   IPC {:.2}, min voltage {:.4} V, emergencies {} cycles, {} interventions",
                ctrl.ipc,
                ctrl.emergencies.min_v,
                ctrl.emergencies.emergency_cycles,
                ctrl.interventions
            );
            println!(
                "\nthresholds [{:.3}, {:.3}] V; performance cost {:.2}%",
                thresholds.v_low,
                thresholds.v_high,
                (1.0 - ctrl.ipc / base.ipc) * 100.0
            );
        }
        Err(e) => println!("controller infeasible at this design point: {e}"),
    }
    Ok(())
}
